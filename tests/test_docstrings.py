"""Documentation meta-test: every public item carries a docstring.

The deliverables require doc comments on every public item; this test
walks the entire package and enforces it, so documentation debt cannot
creep in silently.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition
        yield name, member


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__ for module in _public_modules() if not module.__doc__
    ]
    assert undocumented == []


def test_every_public_class_and_function_has_a_docstring():
    undocumented = []
    for module in _public_modules():
        for name, member in _public_members(module):
            if not inspect.getdoc(member):
                undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == []


def test_every_public_method_has_a_docstring():
    undocumented = []
    for module in _public_modules():
        for class_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(member) or isinstance(member, property)
                ):
                    continue
                target = member.fget if isinstance(member, property) else member
                if target is not None and not inspect.getdoc(target):
                    undocumented.append(f"{module.__name__}.{class_name}.{name}")
    assert undocumented == []
