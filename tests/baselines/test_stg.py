"""Tests for the Scene Transition Graph method."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.stg import (
    build_transition_graph,
    stg_detect_scenes,
    story_units_from_graph,
    time_constrained_clusters,
)
from repro.core.features import Shot
from repro.errors import MiningError
from repro.video.frame import blank_frame


def _shot(shot_id: int, bin_index: int, length: int = 30) -> Shot:
    histogram = np.zeros(256)
    histogram[bin_index] = 0.85
    histogram[(bin_index + 5) % 256] = 0.15
    return Shot(
        shot_id=shot_id,
        start=shot_id * length,
        stop=(shot_id + 1) * length,
        fps=10.0,
        representative_frame=blank_frame(4, 4),
        histogram=histogram,
        texture=np.full(10, 0.5),
    )


def _pattern(pattern: str) -> list[Shot]:
    return [
        _shot(i, (40 * (ord(c) - ord("A"))) % 250) for i, c in enumerate(pattern)
    ]


class TestTimeConstrainedClustering:
    def test_clusters_similar_nearby_shots(self):
        shots = _pattern("AABB")
        clusters = time_constrained_clusters(shots, similarity_threshold=0.5)
        memberships = sorted(sorted(s.shot_id for s in c) for c in clusters)
        assert memberships == [[0, 1], [2, 3]]

    def test_time_constraint_splits_far_repeats(self):
        # Same content far apart in time must form separate clusters.
        shots = _pattern("A" + "B" * 20 + "A")
        clusters = time_constrained_clusters(
            shots, similarity_threshold=0.5, time_window=30.0
        )
        a_clusters = [
            c for c in clusters if any(s.shot_id in (0, 21) for s in c)
        ]
        assert len(a_clusters) == 2

    def test_rejects_empty(self):
        with pytest.raises(MiningError):
            time_constrained_clusters([])


class TestTransitionGraph:
    def test_dialog_creates_cycle(self):
        shots = _pattern("ABABAB")
        clusters = time_constrained_clusters(shots, similarity_threshold=0.5)
        graph = build_transition_graph(shots, clusters)
        assert graph.number_of_nodes() == 2
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert graph[0][1]["weight"] >= 2

    def test_linear_sequence_creates_chain(self):
        shots = _pattern("AABBCC")
        clusters = time_constrained_clusters(shots, similarity_threshold=0.5)
        graph = build_transition_graph(shots, clusters)
        assert graph.number_of_edges() == 2


class TestStoryUnits:
    def test_bridge_separates_units(self):
        graph = nx.DiGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)  # dialog cycle
        graph.add_edge(1, 2)  # one-way bridge to new content
        units = story_units_from_graph(graph)
        assert {frozenset(u) for u in units} == {frozenset({0, 1}), frozenset({2})}

    def test_empty_graph(self):
        graph = nx.DiGraph()
        graph.add_nodes_from([0, 1])
        units = story_units_from_graph(graph)
        assert len(units) == 2


class TestStgScenes:
    def test_dialog_plus_new_location(self):
        shots = _pattern("ABABAB" + "CCCC")
        result = stg_detect_scenes(shots, similarity_threshold=0.5)
        assert result.method == "STG"
        assert result.scenes[0] == [0, 1, 2, 3, 4, 5]
        assert result.scenes[1] == [6, 7, 8, 9]

    def test_scenes_partition_shots(self):
        shots = _pattern("AABBABCCDD")
        result = stg_detect_scenes(shots)
        covered = sorted(s for scene in result.scenes for s in scene)
        assert covered == list(range(len(shots)))

    def test_on_demo_structure(self, demo_structure, demo_video):
        from repro.evaluation import evaluate_scene_partition

        result = stg_detect_scenes(demo_structure.shots)
        evaluation = evaluate_scene_partition(
            demo_video.truth, demo_structure.shots, result.scenes, "STG"
        )
        assert 0.0 <= evaluation.precision <= 1.0
        assert evaluation.detected >= 2
