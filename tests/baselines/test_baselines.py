"""Tests for the reimplemented comparison methods (B, C, visual)."""

import numpy as np
import pytest

from repro.baselines.lin_grouping import coherence_signal, lin_detect_scenes
from repro.baselines.rui_toc import rui_detect_scenes, rui_group_shots
from repro.baselines.visual_clustering import (
    visual_cluster_shots,
    visual_clustering_scenes,
)
from repro.core.features import Shot
from repro.errors import MiningError
from repro.video.frame import blank_frame


def _shot(shot_id: int, bin_index: int, length: int = 30) -> Shot:
    histogram = np.zeros(256)
    histogram[bin_index] = 0.85
    histogram[(bin_index + 3) % 256] = 0.15
    return Shot(
        shot_id=shot_id,
        start=shot_id * length,
        stop=(shot_id + 1) * length,
        fps=10.0,
        representative_frame=blank_frame(4, 4),
        histogram=histogram,
        texture=np.full(10, 0.5),
    )


def _pattern(pattern: str) -> list[Shot]:
    return [
        _shot(i, (40 * (ord(c) - ord("A"))) % 250) for i, c in enumerate(pattern)
    ]


class TestRuiMethod:
    def test_groups_similar_shots(self):
        shots = _pattern("AAAA" + "BBBB")
        groups = rui_group_shots(shots)
        memberships = sorted(sorted(s.shot_id for s in g) for g in groups)
        assert memberships == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_time_attenuation_blocks_far_matches(self):
        # A shots separated by a long B block: attenuation keeps the
        # far A shots from re-joining the first A group.
        shots = _pattern("AA" + "B" * 20 + "AA")
        groups = rui_group_shots(shots, tau=6.0)
        first_group = next(g for g in groups if g[0].shot_id == 0)
        assert all(s.shot_id < 10 for s in first_group)

    def test_scene_construction(self):
        shots = _pattern("AAAA" + "BBBB")
        result = rui_detect_scenes(shots, scene_threshold=0.5)
        assert result.method == "B"
        assert result.scenes == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_rejects_empty(self):
        with pytest.raises(MiningError):
            rui_group_shots([])


class TestLinMethod:
    def test_coherence_dips_at_boundary(self):
        shots = _pattern("AAAA" + "BBBB")
        coherence = coherence_signal(shots)
        assert np.argmin(coherence) == 3  # boundary between shots 3 and 4

    def test_detects_two_scenes(self):
        shots = _pattern("AAAA" + "BBBB")
        result = lin_detect_scenes(shots, threshold=0.5)
        assert result.scenes == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_window_bridges_alternation(self):
        shots = _pattern("ABABAB")
        coherence = coherence_signal(shots, window=3)
        # With a window of 3 every boundary sees a same-content shot.
        assert coherence.min() > 0.9

    def test_single_shot(self):
        result = lin_detect_scenes(_pattern("A"))
        assert result.scenes == [[0]]

    def test_rejects_empty(self):
        with pytest.raises(MiningError):
            lin_detect_scenes([])


class TestVisualClustering:
    def test_clusters_ignore_time(self):
        shots = _pattern("AABBAA")
        clusters = visual_cluster_shots(shots, threshold=0.5)
        memberships = sorted(sorted(s.shot_id for s in c) for c in clusters)
        assert memberships == [[0, 1, 4, 5], [2, 3]]

    def test_scene_wrapper(self):
        result = visual_clustering_scenes(_pattern("AABB"), threshold=0.5)
        assert result.method == "visual"
        assert len(result.scenes) == 2

    def test_rejects_empty(self):
        with pytest.raises(MiningError):
            visual_cluster_shots([])


class TestPaperOrderingOnDemo:
    def test_method_c_merges_most(self, demo_structure, demo_video):
        """Method C should produce the fewest scenes (best compression)."""
        shots = demo_structure.shots
        from repro.evaluation import evaluate_scene_partition

        a = evaluate_scene_partition(
            demo_video.truth, shots,
            [s.shot_ids for s in demo_structure.scenes], "A",
        )
        c = evaluate_scene_partition(
            demo_video.truth, shots, lin_detect_scenes(shots).scenes, "C"
        )
        assert c.crf <= a.crf + 0.05
