"""Generational reopen: a catalog rewritten on disk is actually served.

``SnapshotManager(reopen=...)`` must build each refreshed generation
against freshly opened handles (new SQLite connection, new mmaps) —
not against the stale views of the superseded files.  This is the
``classminer migrate``/external-reingest scenario.
"""

from __future__ import annotations

import pytest

from repro.serving.server import QueryRequest, QueryServer, ServerConfig
from repro.serving.snapshot import SnapshotManager
from repro.storage import SQLVideoDatabase, build_synthetic_database, save_database


@pytest.fixture()
def stored(tmp_path):
    db_dir = tmp_path / "db"
    save_database(
        build_synthetic_database(
            videos=8, shots_per_video=4, scenes_per_video=2, seed=21
        ),
        db_dir,
    )
    return db_dir


@pytest.fixture()
def reopening_server(stored):
    manager = SnapshotManager(
        SQLVideoDatabase.open(stored),
        reopen=lambda: SQLVideoDatabase.open(stored),
    )
    with QueryServer(
        manager=manager, config=ServerConfig(workers=2)
    ) as server:
        yield server


class TestGenerationalReopen:
    def test_rebuild_after_external_rewrite_serves_new_corpus(
        self, stored, reopening_server
    ):
        server = reopening_server
        old = server.manager.current()
        old_titles = set(old.records)

        # An external writer replaces the catalog on disk: a bigger
        # corpus with entirely different titles.
        bigger = build_synthetic_database(
            videos=12, shots_per_video=4, scenes_per_video=2, seed=22
        )
        save_database(bigger, stored)

        fresh = server.refresh()
        assert fresh.generation > old.generation
        assert set(fresh.records) == set(bigger.videos)
        assert set(fresh.records) != old_titles or len(fresh.records) != len(
            old_titles
        )

        # Queries answer from the new generation's data.
        probe = bigger.flat_index.entries[0].features
        result = server.query(QueryRequest(kind="shot", features=probe, k=3))
        assert result.generation == fresh.generation
        assert result.hits
        assert all(
            hit.entry.video_title in bigger.videos for hit in result.hits
        )

    def test_refresh_without_rewrite_is_equivalent(self, reopening_server):
        server = reopening_server
        before = server.manager.current()
        probe = before.flat.entries[0].features
        baseline = server.query(QueryRequest(kind="shot", features=probe, k=5))
        server.refresh()
        again = server.query(QueryRequest(kind="shot", features=probe, k=5))
        assert again.generation > baseline.generation
        assert [
            (h.entry.video_title, h.entry.shot_id, h.score) for h in again.hits
        ] == [
            (h.entry.video_title, h.entry.shot_id, h.score)
            for h in baseline.hits
        ]
