"""Shared serving fixtures: a demo-backed database and cheap clones.

The serving tests reuse the session-mined demo result; re-titled clones
stand in for "newly ingested" videos so generation-bump tests never pay
for a second mining run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.database.catalog import VideoDatabase
from repro.database.index import combine_features


@pytest.fixture()
def serving_db(demo_result) -> VideoDatabase:
    """A fresh database with the demo video registered."""
    db = VideoDatabase()
    db.register(demo_result)
    return db


@pytest.fixture()
def retitle(demo_result):
    """Clone the demo result under a new title (identical features)."""

    def _clone(title: str):
        structure = dataclasses.replace(demo_result.structure, title=title)
        return dataclasses.replace(demo_result, structure=structure)

    return _clone


@pytest.fixture()
def demo_features(demo_result):
    """Combined feature vector of demo shot ``index``."""

    def _at(index: int = 0):
        shot = demo_result.structure.shots[index]
        return combine_features(shot.histogram, shot.texture)

    return _at


@pytest.fixture()
def features_by_event(demo_result):
    """Map event value -> feature vector of one shot of that event."""
    events = demo_result.scene_events()
    mapping = {}
    for scene in demo_result.structure.scenes:
        kind = events[scene.scene_id].value
        if kind not in mapping:
            shot = scene.shots[0]
            mapping[kind] = combine_features(shot.histogram, shot.texture)
    return mapping
