"""Cache/access-control interplay — the acceptance-critical invariants.

A cached result produced for a high-clearance principal must never be
returned to a lower-clearance one, and a generation bump after an
ingest run must invalidate every prior cache entry.
"""

from __future__ import annotations

import pytest

from repro.database.access import FilterRule, Permission, User
from repro.database.events_query import event_concept
from repro.serving.server import QueryRequest, QueryServer, ServerConfig
from repro.types import EventKind


@pytest.fixture()
def server(serving_db):
    with QueryServer(serving_db, ServerConfig(workers=2, queue_depth=16)) as srv:
        yield srv


def _hit_concepts(server, result):
    """Leaf concept of every shot hit, via the snapshot's scene events."""
    snapshot = server.manager.current()
    concepts = set()
    for hit in result.hits:
        entry = hit.entry
        event = EventKind(snapshot.event_of(entry.video_title, entry.scene_id))
        concepts.add(event_concept(entry.video_title, event))
    return concepts


class TestClearanceIsolation:
    def test_high_clearance_cache_entry_never_leaks_down(
        self, server, serving_db, demo_features
    ):
        features = demo_features(0)
        surgeon = User("surgeon", clearance=3)
        student = User("student", clearance=0)

        # Warm the cache with the unrestricted answer.
        full = server.query(QueryRequest(kind="shot", features=features, k=16, user=surgeon))
        assert server.query(
            QueryRequest(kind="shot", features=features, k=16, user=surgeon)
        ).cache_hit

        # Identical query from a public principal: must NOT hit the
        # surgeon's entry, and must only contain public concepts.
        restricted = server.query(
            QueryRequest(kind="shot", features=features, k=16, user=student)
        )
        assert not restricted.cache_hit
        allowed = server.manager.current().permitted_leaves(student)
        assert _hit_concepts(server, restricted) <= allowed
        assert len(restricted.hits) < len(full.hits)
        forbidden = _hit_concepts(server, full) - allowed
        assert forbidden, "demo corpus must contain non-public footage"

    def test_anonymous_never_hits_a_user_entry(self, server, demo_features):
        features = demo_features(0)
        surgeon = User("surgeon", clearance=3)
        server.query(QueryRequest(kind="shot", features=features, k=8, user=surgeon))
        anonymous = server.query(QueryRequest(kind="shot", features=features, k=8))
        assert not anonymous.cache_hit

    def test_same_permissions_share_one_entry(self, server, demo_features):
        features = demo_features(1)
        alice = User("alice", clearance=3)
        bob = User("bob", clearance=3)
        cold = server.query(QueryRequest(kind="shot", features=features, k=8, user=alice))
        shared = server.query(QueryRequest(kind="shot", features=features, k=8, user=bob))
        assert not cold.cache_hit
        assert shared.cache_hit  # identity is not part of the key, scope is
        assert [h.entry.key for h in shared.hits] == [h.entry.key for h in cold.hits]

    def test_explicit_deny_rule_changes_the_scope(self, server, demo_features):
        features = demo_features(1)
        plain = User("plain", clearance=3)
        redacted = User(
            "redacted",
            clearance=3,
            rules=(
                FilterRule(
                    concept=EventKind.DIALOG.value,
                    permission=Permission.DENY,
                    reason="privacy study",
                ),
            ),
        )
        server.query(QueryRequest(kind="shot", features=features, k=16, user=plain))
        filtered = server.query(
            QueryRequest(kind="shot", features=features, k=16, user=redacted)
        )
        assert not filtered.cache_hit
        concepts = _hit_concepts(server, filtered)
        assert not any(c.endswith("/" + EventKind.DIALOG.value) for c in concepts)

    def test_scene_hits_respect_clearance(self, server, demo_features):
        features = demo_features(0)
        student = User("student", clearance=0)
        public = server.query(
            QueryRequest(kind="scene", features=features, k=8, user=student)
        )
        assert public.hits, "the demo has public presentation scenes"
        events = {hit.entry.event for hit in public.hits}
        assert events == {EventKind.PRESENTATION}

    def test_event_queries_filter_uncleared_principals(self, server):
        student = User("student", clearance=0)
        surgeon = User("surgeon", clearance=3)
        request = QueryRequest(
            kind="event", event=EventKind.CLINICAL_OPERATION, user=surgeon
        )
        assert server.query(request).hits  # the footage exists...
        denied = server.query(
            QueryRequest(kind="event", event=EventKind.CLINICAL_OPERATION, user=student)
        )
        assert denied.hits == ()  # ...but is silently filtered (and audited)
        assert not denied.cache_hit  # distinct scope, distinct cache entry


class TestIngestInvalidation:
    def test_generation_bump_after_ingest_invalidates_cache(
        self, serving_db, demo_result, demo_features, tmp_path
    ):
        from repro.ingest import IngestJob, ingest_corpus, store_for, unregister_corpus_hook

        db_dir = tmp_path / "db"
        store_for(db_dir).save(IngestJob.for_title("demo").key, demo_result)

        with QueryServer(serving_db) as server:
            hook = server.attach_ingest()
            try:
                request = QueryRequest(kind="shot", features=demo_features(0), k=5)
                cold = server.query(request)
                assert server.query(request).cache_hit
                assert len(server.cache) > 0

                report = ingest_corpus(["demo"], db_dir, workers=1)
                assert [o.state for o in report.outcomes] == ["cached"]

                fresh = server.query(request)
                assert not fresh.cache_hit  # prior entry is gone, not stale-served
                assert fresh.generation == cold.generation + 1
                assert server.cache.stats().stale_evictions >= 1
                assert [h.entry.key for h in fresh.hits] == [
                    h.entry.key for h in cold.hits
                ]
            finally:
                unregister_corpus_hook(hook)

    def test_scope_memo_is_pruned_on_swap(self, serving_db, demo_features, retitle):
        surgeon = User("surgeon", clearance=3)
        with QueryServer(serving_db) as server:
            server.query(
                QueryRequest(kind="shot", features=demo_features(0), k=5, user=surgeon)
            )
            assert (surgeon, 1) in server._scopes
            serving_db.register(retitle("demo2"))
            server.refresh()
            assert (surgeon, 1) not in server._scopes
            # The new generation resolves the scope afresh and still serves.
            result = server.query(
                QueryRequest(kind="shot", features=demo_features(0), k=5, user=surgeon)
            )
            assert result.generation == 2
            assert (surgeon, 2) in server._scopes
