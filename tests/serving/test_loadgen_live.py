"""Load generation against a live server, including a mid-run ingest.

The acceptance scenario: concurrent loadgen clients keep querying while
an ingest run bumps the snapshot generation.  No client may ever see a
stale result (a new-generation result missing the new video, or an
old-generation result containing it) or a cross-clearance hit.
"""

from __future__ import annotations

import threading

from repro.database.access import User
from repro.database.events_query import event_concept
from repro.serving.loadgen import LoadgenConfig, build_query_pool, run_load
from repro.serving.server import QueryServer, ServerConfig
from repro.types import EventKind


class TestPool:
    def test_pool_is_deterministic_and_mixed(self, serving_db):
        with QueryServer(serving_db) as server:
            snapshot = server.manager.current()
            config = LoadgenConfig(pool_size=64, seed=7)
            first = build_query_pool(snapshot, config)
            second = build_query_pool(snapshot, config)
            assert [r.kind for r in first] == [r.kind for r in second]
            kinds = {r.kind for r in first}
            assert {"shot", "scene"} <= kinds

    def test_flat_requests_are_always_anonymous(self, serving_db):
        surgeon = User("surgeon", clearance=3)
        with QueryServer(serving_db) as server:
            pool = build_query_pool(
                server.manager.current(),
                LoadgenConfig(pool_size=64, seed=3),
                users=(surgeon,),
            )
            flats = [r for r in pool if r.kind == "shot_flat"]
            assert flats and all(r.user is None for r in flats)
            assert any(r.user is surgeon for r in pool if r.kind != "shot_flat")


class TestSteadyState:
    def test_short_run_completes_cleanly(self, serving_db):
        with QueryServer(serving_db, ServerConfig(workers=2, queue_depth=32)) as server:
            report = run_load(
                server, LoadgenConfig(clients=2, duration=0.3, timeout=5.0)
            )
            assert report.failures == []
            assert report.errors == 0
            assert report.completed > 0
            assert report.generations == {1}
            assert 0.0 <= report.cache_hit_rate <= 1.0
            assert report.percentile(99) >= report.percentile(50) >= 0.0
            assert "qps sustained" in report.render()

    def test_requests_per_client_bounds_the_run(self, serving_db):
        with QueryServer(serving_db) as server:
            report = run_load(
                server,
                LoadgenConfig(
                    clients=2, duration=30.0, requests_per_client=5, timeout=5.0
                ),
            )
            assert report.issued == 10


class TestLiveGenerationBump:
    def test_no_stale_and_no_cross_clearance_during_ingest_bump(
        self, serving_db, demo_result, retitle, tmp_path
    ):
        """The ISSUE acceptance run: loadgen + concurrent ingest."""
        from repro.ingest import IngestJob, ingest_corpus, store_for, unregister_corpus_hook

        # Pre-seed artifacts so the mid-run ingest is fast and rebuilds a
        # two-video corpus ("demo" + re-titled clone "face_repair").
        db_dir = tmp_path / "db"
        store = store_for(db_dir)
        store.save(IngestJob.for_title("demo").key, demo_result)
        store.save(IngestJob.for_title("face_repair").key, retitle("face_repair"))

        student = User("student", clearance=0)
        config = ServerConfig(workers=4, queue_depth=64)
        with QueryServer(serving_db, config) as server:
            hook = server.attach_ingest()

            def validate(request, result):
                # Stale-read check: a result must be self-consistent with
                # the generation it claims.  Generation 1 predates the
                # ingest; generation >= 2 is the rebuilt two-video corpus.
                if request.kind in ("shot", "scene"):
                    titles = {hit.entry.video_title for hit in result.hits}
                    if result.generation == 1:
                        assert "face_repair" not in titles, "stale gen tag on new corpus"
                # Cross-clearance check: a clearance-0 principal may only
                # ever see presentation footage (the sole sensitivity-0
                # scene concept), cached or not, before or after the swap.
                if request.user is student:
                    if request.kind == "shot":
                        snap = server.manager.current()
                        for hit in result.hits:
                            entry = hit.entry
                            event = EventKind(
                                snap.event_of(entry.video_title, entry.scene_id)
                            )
                            concept = event_concept(entry.video_title, event)
                            assert event is EventKind.PRESENTATION, (
                                f"clearance leak: {concept} served to student"
                            )
                    elif request.kind == "scene":
                        for hit in result.hits:
                            assert hit.entry.event is EventKind.PRESENTATION

            bump = threading.Timer(
                0.25, lambda: ingest_corpus(["demo", "face_repair"], db_dir, workers=1)
            )
            bump.start()
            try:
                report = run_load(
                    server,
                    LoadgenConfig(
                        clients=4,
                        duration=1.2,
                        timeout=5.0,
                        unique_fraction=0.0,
                        k=12,
                        seed=11,
                    ),
                    users=(None, student),
                    on_result=validate,
                )
            finally:
                bump.join()
                unregister_corpus_hook(hook)

            assert report.failures == [], "\n".join(report.failures)
            assert report.errors == 0
            assert report.completed > 0
            # The run straddled the swap: both generations were observed,
            # and post-swap queries really served the rebuilt corpus.
            assert report.generations == {1, 2}, report.generations
            assert server.generation == 2
            assert "face_repair" in server.manager.current().videos

    def test_post_bump_queries_serve_the_new_corpus(
        self, serving_db, demo_result, retitle, tmp_path
    ):
        from repro.database.index import combine_features
        from repro.ingest import IngestJob, ingest_corpus, store_for, unregister_corpus_hook
        from repro.serving.server import QueryRequest

        db_dir = tmp_path / "db"
        store = store_for(db_dir)
        store.save(IngestJob.for_title("demo").key, demo_result)
        store.save(IngestJob.for_title("face_repair").key, retitle("face_repair"))

        shot = demo_result.structure.shots[0]
        features = combine_features(shot.histogram, shot.texture)
        with QueryServer(serving_db) as server:
            hook = server.attach_ingest()
            try:
                before = server.query(QueryRequest(kind="shot", features=features, k=32))
                assert {h.entry.video_title for h in before.hits} == {"demo"}
                ingest_corpus(["demo", "face_repair"], db_dir, workers=1)
                after = server.query(QueryRequest(kind="shot", features=features, k=32))
                assert not after.cache_hit
                assert after.generation == before.generation + 1
                assert {h.entry.video_title for h in after.hits} == {"demo", "face_repair"}
            finally:
                unregister_corpus_hook(hook)
