"""Snapshot immutability, generation swaps, and the ingest hook."""

from __future__ import annotations

import pytest

from repro.database.catalog import VideoDatabase
from repro.database.events_query import query_events
from repro.errors import ServingError
from repro.serving.snapshot import SnapshotManager, build_snapshot
from repro.types import EventKind


class TestSnapshot:
    def test_empty_database_cannot_snapshot(self):
        with pytest.raises(ServingError):
            build_snapshot(VideoDatabase(), generation=1)

    def test_snapshot_answers_like_the_database(self, serving_db, demo_features):
        snapshot = build_snapshot(serving_db, generation=1)
        features = demo_features(2)
        direct = serving_db.search(features, k=3)
        snapped = snapshot.search(features, k=3)
        assert [h.entry.key for h in snapped.hits] == [
            h.entry.key for h in direct.hits
        ]
        flat = snapshot.search_flat(features, k=3)
        assert flat.stats.comparisons == serving_db.shot_count

    def test_scene_index_is_derived_from_entries(self, serving_db, demo_result):
        snapshot = build_snapshot(serving_db, generation=1)
        assert len(snapshot.scenes) == demo_result.structure.scene_count
        events = {entry.event for entry in snapshot.scenes.entries}
        assert events == set(demo_result.scene_events().values())

    def test_event_queries_match_the_database(self, serving_db):
        snapshot = build_snapshot(serving_db, generation=1)
        for kind in EventKind:
            assert snapshot.query_events(kind) == query_events(serving_db, kind)

    def test_event_of_falls_back_to_unknown(self, serving_db):
        snapshot = build_snapshot(serving_db, generation=1)
        assert snapshot.event_of("demo", -1) == "unknown"
        assert snapshot.event_of("nope", 0) == "unknown"


class TestSnapshotManager:
    def test_generations_increase(self, serving_db):
        manager = SnapshotManager(serving_db)
        assert manager.generation == 0
        first = manager.current()
        assert first.generation == 1
        assert manager.refresh().generation == 2
        assert manager.current().generation == 2

    def test_old_snapshot_survives_new_registrations(
        self, serving_db, retitle, demo_features
    ):
        manager = SnapshotManager(serving_db)
        before = manager.current()
        serving_db.register(retitle("demo2"))
        # The frozen generation still only knows the original video...
        assert before.videos == ("demo",)
        hits = before.search(demo_features(0), k=16).hits
        assert {h.entry.video_title for h in hits} == {"demo"}
        # ...while a refresh exposes the new corpus.
        after = manager.refresh()
        assert after.videos == ("demo", "demo2")
        assert after.generation == before.generation + 1
        hits = after.search(demo_features(0), k=32).hits
        assert {h.entry.video_title for h in hits} == {"demo", "demo2"}

    def test_listeners_see_every_swap(self, serving_db):
        manager = SnapshotManager(serving_db)
        seen: list[int] = []
        manager.subscribe(lambda snapshot: seen.append(snapshot.generation))
        manager.current()
        manager.refresh()
        assert seen == [1, 2]

    def test_install_replaces_the_backing_database(self, serving_db, retitle):
        manager = SnapshotManager(serving_db)
        manager.current()
        other = VideoDatabase()
        other.register(retitle("other"))
        snapshot = manager.install(other)
        assert manager.database is other
        assert snapshot.videos == ("other",)
        assert snapshot.generation == 2


class TestIngestHook:
    def test_cached_ingest_bumps_the_generation(
        self, serving_db, demo_result, tmp_path
    ):
        from repro.ingest import (
            IngestJob,
            ingest_corpus,
            register_corpus_hook,
            store_for,
            unregister_corpus_hook,
        )

        # Pre-seed the artifact store so the ingest run is pure cache.
        db_dir = tmp_path / "db"
        store_for(db_dir).save(IngestJob.for_title("demo").key, demo_result)

        manager = SnapshotManager(serving_db)
        manager.current()
        hook = register_corpus_hook(manager.ingest_hook())
        try:
            report = ingest_corpus(["demo"], db_dir, workers=1)
        finally:
            unregister_corpus_hook(hook)
        assert [o.state for o in report.outcomes] == ["cached"]
        assert manager.generation == 2
        # The manager now serves the freshly rebuilt ingest database.
        assert manager.database is not serving_db
        assert manager.current().videos == ("demo",)

    def test_unregistered_hook_stays_silent(self, serving_db, demo_result, tmp_path):
        from repro.ingest import (
            IngestJob,
            ingest_corpus,
            register_corpus_hook,
            store_for,
            unregister_corpus_hook,
        )

        db_dir = tmp_path / "db"
        store_for(db_dir).save(IngestJob.for_title("demo").key, demo_result)
        manager = SnapshotManager(serving_db)
        manager.current()
        hook = register_corpus_hook(manager.ingest_hook())
        unregister_corpus_hook(hook)
        unregister_corpus_hook(hook)  # double-removal is a no-op
        ingest_corpus(["demo"], db_dir, workers=1)
        assert manager.generation == 1
