"""QueryServer: correctness, admission control, deadlines, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import OverloadedError, ServingError
from repro.serving.server import QueryRequest, QueryServer, ServerConfig
from repro.types import EventKind


@pytest.fixture()
def server(serving_db):
    with QueryServer(serving_db, ServerConfig(workers=2, queue_depth=8)) as srv:
        yield srv


class TestCorrectness:
    def test_shot_results_match_direct_search(self, server, serving_db, demo_features):
        features = demo_features(2)
        served = server.query(QueryRequest(kind="shot", features=features, k=3))
        direct = serving_db.search(features, k=3)
        assert [h.entry.key for h in served.hits] == [
            h.entry.key for h in direct.hits
        ]
        assert served.generation == 1
        assert not served.cache_hit
        assert served.comparisons == direct.stats.comparisons

    def test_flat_results_match_direct_scan(self, server, serving_db, demo_features):
        features = demo_features(2)
        served = server.query(QueryRequest(kind="shot_flat", features=features, k=3))
        direct = serving_db.search_flat(features, k=3)
        assert [h.entry.key for h in served.hits] == [
            h.entry.key for h in direct.hits
        ]

    def test_scene_and_event_kinds(self, server, demo_features):
        scenes = server.query(QueryRequest(kind="scene", features=demo_features(0), k=2))
        assert scenes.hits
        events = server.query(QueryRequest(kind="event", event=EventKind.DIALOG))
        assert all(hit.event is EventKind.DIALOG for hit in events.hits)

    def test_repeat_is_a_cache_hit_with_identical_hits(self, server, demo_features):
        request = QueryRequest(kind="shot", features=demo_features(1), k=5)
        cold = server.query(request)
        warm = server.query(request)
        assert not cold.cache_hit and warm.cache_hit
        assert [h.entry.key for h in warm.hits] == [h.entry.key for h in cold.hits]
        assert server.metrics.counter("cache_hits") == 1

    def test_submit_returns_a_future(self, server, demo_features):
        future = server.submit(QueryRequest(kind="shot", features=demo_features(0)))
        result = future.result(timeout=5)
        assert result.hits


class TestValidation:
    def test_unknown_kind(self, server, demo_features):
        with pytest.raises(ServingError, match="unknown query kind"):
            server.query(QueryRequest(kind="nope", features=demo_features(0)))

    def test_missing_features(self, server):
        with pytest.raises(ServingError, match="feature vector"):
            server.query(QueryRequest(kind="shot"))

    def test_event_needs_kind(self, server):
        with pytest.raises(ServingError, match="EventKind"):
            server.query(QueryRequest(kind="event"))

    def test_flat_refuses_access_filtering(self, server, demo_features):
        from repro.database.access import User

        with pytest.raises(ServingError, match="flat baseline"):
            server.query(
                QueryRequest(
                    kind="shot_flat",
                    features=demo_features(0),
                    user=User("u", clearance=3),
                )
            )

    def test_bad_k(self, server, demo_features):
        with pytest.raises(ServingError, match="k must be"):
            server.query(QueryRequest(kind="shot", features=demo_features(0), k=0))

    def test_constructor_needs_exactly_one_source(self, serving_db):
        from repro.serving.snapshot import SnapshotManager

        with pytest.raises(ServingError):
            QueryServer()
        with pytest.raises(ServingError):
            QueryServer(serving_db, manager=SnapshotManager(serving_db))

    def test_bad_config(self):
        with pytest.raises(ServingError):
            ServerConfig(workers=0)
        with pytest.raises(ServingError):
            ServerConfig(queue_depth=0)


class TestLifecycle:
    def test_stopped_server_rejects(self, serving_db, demo_features):
        server = QueryServer(serving_db)
        with pytest.raises(ServingError, match="not running"):
            server.query(QueryRequest(kind="shot", features=demo_features(0)))

    def test_stop_drains_and_is_idempotent(self, serving_db, demo_features):
        server = QueryServer(serving_db).start()
        future = server.submit(QueryRequest(kind="shot", features=demo_features(0)))
        server.stop()
        server.stop()
        assert future.result(timeout=1).hits
        assert not server.running


def _block_execution(server):
    """Patch the server so every query blocks until the gate opens."""
    gate = threading.Event()
    entered = threading.Event()
    original = server._execute

    def blocked(request):
        entered.set()
        assert gate.wait(timeout=10), "test gate never opened"
        return original(request)

    server._execute = blocked
    return gate, entered


class TestAdmissionControl:
    def test_full_queue_raises_overloaded(self, serving_db, demo_features):
        with QueryServer(
            serving_db, ServerConfig(workers=1, queue_depth=1, default_timeout=None)
        ) as server:
            gate, entered = _block_execution(server)
            request = QueryRequest(kind="shot", features=demo_features(0))
            in_flight = server.submit(request)
            assert entered.wait(timeout=5)  # worker holds request 1
            queued = server.submit(request)  # fills the only queue slot
            with pytest.raises(OverloadedError):
                server.submit(request)
            assert server.metrics.counter("rejected_overload") == 1
            gate.set()
            assert in_flight.result(timeout=5).hits
            assert queued.result(timeout=5).hits

    def test_wait_deadline_raises_serving_error(self, serving_db, demo_features):
        with QueryServer(
            serving_db, ServerConfig(workers=1, queue_depth=4, default_timeout=None)
        ) as server:
            gate, entered = _block_execution(server)
            blocker = server.submit(QueryRequest(kind="shot", features=demo_features(0)))
            assert entered.wait(timeout=5)
            with pytest.raises(ServingError, match="deadline"):
                server.query(
                    QueryRequest(kind="shot", features=demo_features(1), timeout=0.05)
                )
            assert server.metrics.counter("deadline_timeouts") >= 1
            gate.set()
            assert blocker.result(timeout=5).hits

    def test_queued_request_expires_without_executing(self, serving_db, demo_features):
        with QueryServer(
            serving_db, ServerConfig(workers=1, queue_depth=4, default_timeout=None)
        ) as server:
            gate, entered = _block_execution(server)
            blocker = server.submit(QueryRequest(kind="shot", features=demo_features(0)))
            assert entered.wait(timeout=5)
            doomed = server.submit(
                QueryRequest(kind="shot", features=demo_features(1), timeout=0.02)
            )
            time.sleep(0.1)  # let the deadline lapse while still queued
            gate.set()
            with pytest.raises(ServingError, match="queued"):
                doomed.result(timeout=5)
            assert blocker.result(timeout=5).hits


class TestGenerationSwap:
    def test_refresh_evicts_stale_cache_and_bumps_generation(
        self, server, serving_db, retitle, demo_features
    ):
        request = QueryRequest(kind="shot", features=demo_features(0), k=5)
        first = server.query(request)
        assert server.query(request).cache_hit
        serving_db.register(retitle("demo2"))
        server.refresh()
        again = server.query(request)
        assert not again.cache_hit  # prior entry is unreachable and evicted
        assert again.generation == first.generation + 1
        assert server.cache.stats().stale_evictions >= 1
        assert server.metrics.counter("generation_swaps") >= 1
