"""Latency histograms and the serving metrics aggregator."""

from __future__ import annotations

import pytest

from repro.serving.metrics import LatencyHistogram, ServingMetrics, format_seconds


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0

    def test_quantiles_bracket_observations(self):
        hist = LatencyHistogram()
        for _ in range(90):
            hist.record(100e-6)  # 100 us
        for _ in range(10):
            hist.record(50e-3)  # 50 ms
        p50 = hist.quantile(0.5)
        p99 = hist.quantile(0.99)
        # Geometric buckets report the upper bound: within 2x of truth.
        assert 100e-6 <= p50 <= 200e-6
        assert 50e-3 <= p99 <= 100e-3
        assert p50 <= p99 <= hist.max

    def test_quantiles_are_monotone(self):
        hist = LatencyHistogram()
        for value in (1e-5, 2e-4, 3e-3, 4e-2, 0.5):
            hist.record(value)
        quantiles = [hist.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert quantiles == sorted(quantiles)

    def test_negative_clamped_and_bad_quantile_rejected(self):
        hist = LatencyHistogram()
        hist.record(-1.0)
        assert hist.count == 1
        assert hist.max == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(1e-4)
        b.record(1e-2)
        a.merge(b)
        assert a.count == 2
        assert a.max == pytest.approx(1e-2)


class TestServingMetrics:
    def test_query_accounting(self):
        metrics = ServingMetrics()
        metrics.record_query("shot", 1e-3, comparisons=40, cache_hit=False)
        metrics.record_query("shot", 1e-5, cache_hit=True)
        metrics.record_query("event", 2e-4, comparisons=0, cache_hit=False)
        view = metrics.snapshot()
        assert view["queries_total"] == 3
        assert view["queries_shot"] == 2
        assert view["cache_hits"] == 1
        assert view["cache_hit_rate"] == pytest.approx(1 / 3)
        # Comparisons average over executed (non-cached) queries only.
        assert view["comparisons_per_query"] == pytest.approx(20.0)
        assert view["qps"] > 0

    def test_rejections_timeouts_errors(self):
        metrics = ServingMetrics()
        metrics.record_rejection()
        metrics.record_timeout()
        metrics.record_timeout()
        metrics.record_error()
        assert metrics.counter("rejected_overload") == 1
        assert metrics.counter("deadline_timeouts") == 2
        assert metrics.counter("errors") == 1

    def test_reset(self):
        metrics = ServingMetrics()
        metrics.record_query("shot", 1e-3)
        metrics.reset()
        assert metrics.counter("queries_total") == 0

    def test_render_is_a_plain_text_dump(self):
        metrics = ServingMetrics()
        metrics.record_query("shot", 1.5e-3, comparisons=12)
        metrics.record_query("scene", 4e-4, cache_hit=True)
        metrics.record_generation_swap()
        text = metrics.render()
        assert "serving metrics" in text
        assert "p50" in text and "p95" in text and "p99" in text
        assert "shot" in text and "scene" in text
        assert "generation swaps 1" in text


class TestFormatSeconds:
    def test_units(self):
        assert format_seconds(5e-6) == "5us"
        assert format_seconds(2.5e-3) == "2.50ms"
        assert format_seconds(1.2) == "1.20s"

    def test_minutes_beyond_sixty_seconds(self):
        assert format_seconds(75.0) == "1m15.0s"
        assert format_seconds(312.4) == "5m12.4s"


class TestRegistryIntegration:
    def test_metrics_publish_through_a_shared_registry(self):
        from repro.obs import MetricsRegistry, render_prometheus

        registry = MetricsRegistry()
        metrics = ServingMetrics(registry=registry)
        metrics.record_query("shot", 1e-3, comparisons=10)
        view = registry.snapshot()
        assert view["serving_events_total{event=queries_total}"] == 1.0
        assert view["serving_latency_seconds_count"] == 1.0
        assert view["serving_kind_latency_seconds_count{kind=shot}"] == 1.0
        text = render_prometheus(registry)
        assert 'serving_events_total{event="queries_total"} 1.0' in text

    def test_independent_servers_do_not_share_counts(self):
        a, b = ServingMetrics(), ServingMetrics()
        a.record_query("shot", 1e-3)
        assert b.counter("queries_total") == 0
