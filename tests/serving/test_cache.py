"""Result-cache mechanics: LRU bounds, scoped keys, generation eviction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.database.access import User
from repro.serving.cache import (
    ANONYMOUS_SCOPE,
    CacheKey,
    ResultCache,
    feature_digest,
    scope_token,
)


def _key(n: int, scope: str = ANONYMOUS_SCOPE, generation: int = 1) -> CacheKey:
    return CacheKey(kind="shot", digest=f"d{n}", k=5, scope=scope, generation=generation)


class TestLRU:
    def test_capacity_is_enforced_lru(self):
        cache = ResultCache(capacity=2)
        cache.put(_key(1), "one")
        cache.put(_key(2), "two")
        assert cache.get(_key(1)) == "one"  # 1 is now most-recent
        cache.put(_key(3), "three")  # evicts 2, the LRU tail
        assert cache.get(_key(2)) is None
        assert cache.get(_key(1)) == "one"
        assert cache.get(_key(3)) == "three"
        assert len(cache) == 2
        assert cache.stats().evictions == 1

    def test_stats_track_hits_and_misses(self):
        cache = ResultCache(capacity=4)
        assert cache.get(_key(1)) is None
        cache.put(_key(1), "one")
        assert cache.get(_key(1)) == "one"
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.lookups) == (1, 1, 2)
        assert stats.hit_rate == 0.5

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_clear(self):
        cache = ResultCache(capacity=4)
        cache.put(_key(1), "one")
        assert cache.clear() == 1
        assert len(cache) == 0


class TestGenerations:
    def test_old_generation_keys_cannot_hit(self):
        cache = ResultCache(capacity=8)
        cache.put(_key(1, generation=1), "old")
        assert cache.get(_key(1, generation=2)) is None

    def test_evict_other_generations(self):
        cache = ResultCache(capacity=8)
        cache.put(_key(1, generation=1), "old")
        cache.put(_key(2, generation=1), "old2")
        cache.put(_key(3, generation=2), "new")
        assert cache.evict_other_generations(2) == 2
        assert len(cache) == 1
        assert cache.get(_key(3, generation=2)) == "new"
        assert cache.stats().stale_evictions == 2


class TestScopeTokens:
    def test_anonymous_token(self):
        assert scope_token(None, None) == ANONYMOUS_SCOPE

    def test_user_scope_requires_leaves(self):
        with pytest.raises(ValueError):
            scope_token(User("u", clearance=1), None)

    def test_same_permissions_share_a_token(self):
        leaves = frozenset({"general/presentation", "surgery/presentation"})
        alice = scope_token(User("alice", clearance=1), leaves)
        bob = scope_token(User("bob", clearance=1), leaves)
        assert alice == bob

    def test_different_leaf_sets_differ(self):
        user = User("u", clearance=1)
        a = scope_token(user, frozenset({"general/presentation"}))
        b = scope_token(user, frozenset({"general/dialog"}))
        assert a != b

    def test_different_clearance_differs_even_with_same_leaves(self):
        leaves = frozenset({"general/presentation"})
        assert scope_token(User("u", clearance=0), leaves) != scope_token(
            User("u", clearance=3), leaves
        )


class TestFeatureDigest:
    def test_deterministic(self):
        rng = np.random.default_rng(0)
        features = rng.random(266)
        assert feature_digest(features) == feature_digest(features.copy())

    def test_sensitive_to_content(self):
        rng = np.random.default_rng(0)
        features = rng.random(266)
        nudged = features.copy()
        nudged[0] += 1e-9
        assert feature_digest(features) != feature_digest(nudged)

    def test_dtype_normalised(self):
        features = np.arange(10, dtype=np.float32)
        assert feature_digest(features) == feature_digest(
            np.arange(10, dtype=np.float64)
        )
