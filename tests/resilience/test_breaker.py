"""Circuit-breaker state machine: trips, probes, recovery, metrics."""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError
from repro.obs.registry import MetricsRegistry
from repro.resilience.breaker import BreakerState, CircuitBreaker


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(
        name="test", failure_threshold=2, reset_timeout=10.0, clock=clock
    )


class TestTransitions:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()
        assert breaker.trips == 0

    def test_consecutive_failures_trip_open(self, breaker):
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # streak broken

    def test_open_advances_to_half_open_after_timeout(self, breaker, clock):
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(9.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self, breaker, clock):
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent caller refused
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self, breaker, clock):
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self, breaker, clock):
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        clock.advance(9.0)  # cooldown restarted at the re-trip
        assert breaker.state is BreakerState.OPEN
        clock.advance(1.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_reset_forces_closed(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.reset()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()


class TestCall:
    def test_call_passes_through_when_closed(self, breaker):
        assert breaker.call(lambda: 42) == 42

    def test_call_records_failures_and_reraises(self, breaker):
        def boom():
            raise RuntimeError("organic failure")

        with pytest.raises(RuntimeError):
            breaker.call(boom)
        with pytest.raises(RuntimeError):
            breaker.call(boom)
        assert breaker.state is BreakerState.OPEN

    def test_call_raises_circuit_open_without_running(self, breaker, clock):
        breaker.record_failure()
        breaker.record_failure()
        calls = []
        with pytest.raises(CircuitOpenError, match="retry in"):
            breaker.call(calls.append, "never")
        assert calls == []
        clock.advance(10.0)
        assert breaker.call(lambda: "healed") == "healed"
        assert breaker.state is BreakerState.CLOSED


class TestValidationAndIntrospection:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)

    def test_describe_names_state_and_counters(self, breaker):
        assert "test: closed" in breaker.describe()
        breaker.record_failure()
        breaker.record_failure()
        description = breaker.describe()
        assert "open" in description
        assert "1 trips" in description

    def test_registry_gauge_tracks_state(self, clock):
        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            name="gauged", failure_threshold=1, reset_timeout=5.0,
            clock=clock, registry=registry,
        )
        key = 'circuit_breaker_state{breaker=gauged}'
        assert registry.snapshot()[key] == 0.0
        breaker.record_failure()
        assert registry.snapshot()[key] == 1.0
        assert registry.snapshot()['circuit_breaker_trips_total{breaker=gauged}'] == 1.0
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert registry.snapshot()[key] == 2.0
        breaker.record_success()
        assert registry.snapshot()[key] == 0.0


class TestConcurrentHalfOpenProbes:
    def test_exactly_one_probe_admitted_under_contention(self, clock):
        # 16 shard-call threads hit a half-open breaker at once: one
        # wins the probe slot, every loser is refused without mutating
        # state, and the breaker stays half-open until the probe
        # reports back.
        import threading

        breaker = CircuitBreaker(
            name="race", failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN

        admitted = []
        barrier = threading.Barrier(16)

        def _contender():
            barrier.wait()
            if breaker.allow():
                admitted.append(threading.get_ident())

        threads = [threading.Thread(target=_contender) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(admitted) == 1, "half-open must admit exactly one probe"
        assert breaker.state is BreakerState.HALF_OPEN
        # Losers short-circuited: no failure was recorded, so the
        # winning probe's success closes the breaker for everyone.
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert all(breaker.allow() for _ in range(4))

    def test_probe_slot_reopens_after_each_cooldown(self, clock):
        breaker = CircuitBreaker(
            name="slot", failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()        # probe admitted
        assert not breaker.allow()    # slot held while in flight
        breaker.record_failure()      # probe failed: reopen + new cooldown
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow(), "next cooldown must free the probe slot"
