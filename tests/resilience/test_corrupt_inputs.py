"""Failure-injection tests: corrupted inputs must degrade, not crash.

A production pipeline sees broken material — dropped frames, sensor
garbage, silent or clipped audio, truncated files.  These tests inject
each fault and assert the system either recovers gracefully or raises
its own typed error (never an unhandled numpy/KeyError surprise).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.audio.speaker import SpeakerAnalyzer, default_speech_classifier
from repro.audio.waveform import Waveform
from repro.core.structure import mine_content_structure
from repro.database.catalog import VideoDatabase
from repro.errors import DatabaseError, ReproError
from repro.video.frame import Frame
from repro.video.stream import VideoStream


@pytest.fixture(scope="module")
def analyzer():
    return SpeakerAnalyzer(classifier=default_speech_classifier())


class TestCorruptedFrames:
    def _with_garbage_frame(self, stream: VideoStream, position: int) -> VideoStream:
        rng = np.random.default_rng(99)
        frames = list(stream.frames)
        garbage = rng.integers(0, 256, frames[0].shape, dtype=np.uint8)
        frames[position] = Frame(pixels=garbage)
        return VideoStream(frames=frames, fps=stream.fps, title="corrupted")

    def test_garbage_frame_does_not_crash_mining(self, demo_stream):
        corrupted = self._with_garbage_frame(demo_stream, 40)
        structure = mine_content_structure(corrupted)
        assert structure.shot_count >= 1

    def test_garbage_frame_adds_limited_boundaries(self, demo_stream, demo_structure):
        corrupted = self._with_garbage_frame(demo_stream, 40)
        structure = mine_content_structure(corrupted)
        # One noise frame can add at most two spurious cuts around it.
        assert abs(structure.shot_count - demo_structure.shot_count) <= 3

    def test_all_black_video_yields_single_scene_layer(self):
        frames = [
            Frame(pixels=np.zeros((16, 20, 3), dtype=np.uint8)) for _ in range(60)
        ]
        structure = mine_content_structure(VideoStream(frames=frames, fps=10))
        assert structure.shot_count == 1
        assert structure.scene_count <= 1

    def test_constant_flicker_video(self):
        rng = np.random.default_rng(3)
        frames = []
        for i in range(80):
            base = np.full((16, 20, 3), 100 + (i % 2) * 4, dtype=np.uint8)
            noise = rng.integers(-3, 4, base.shape)
            frames.append(
                Frame(pixels=np.clip(base.astype(int) + noise, 0, 255).astype(np.uint8))
            )
        structure = mine_content_structure(VideoStream(frames=frames, fps=10))
        # Flicker must not explode into dozens of shots.
        assert structure.shot_count <= 5


class TestDegenerateAudio:
    def test_pure_silence_shot(self, analyzer):
        silence = Waveform.silence(6.0)
        shot = analyzer.analyze_shot(silence, 0, 0.0, 6.0)
        assert not shot.has_speech

    def test_clipped_audio_does_not_crash(self, analyzer):
        square = np.sign(np.sin(np.linspace(0, 800 * np.pi, 24000)))
        wave = Waveform(samples=square * 1.0)
        shot = analyzer.analyze_shot(wave, 0, 0.0, 3.0)
        assert shot.mfcc_vectors.shape[1] == 14

    def test_dc_offset_audio(self, analyzer):
        wave = Waveform(samples=np.full(24000, 0.8))
        shot = analyzer.analyze_shot(wave, 0, 0.0, 3.0)
        assert not shot.has_speech

    def test_events_survive_missing_audio(self, demo_structure):
        from repro.events.miner import EventMiner

        events = EventMiner().mine(demo_structure.scenes, audio=None)
        assert len(events.events) == len(demo_structure.scenes)


class TestCorruptPersistence:
    def test_database_load_missing_keys(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"leaves": {"x/unknown": [{"shot_id": 1}]}}))
        with pytest.raises((DatabaseError, KeyError)) as excinfo:
            VideoDatabase.load(path)
        # The error must be typed (our hierarchy) or clearly about data.
        assert excinfo.type is not Exception

    def test_database_load_wrong_types(self, tmp_path):
        path = tmp_path / "types.json"
        path.write_text(json.dumps({"leaves": "not-a-dict", "videos": {}}))
        with pytest.raises((DatabaseError, AttributeError, TypeError)):
            VideoDatabase.load(path)

    def test_repro_error_is_catchable_base(self, demo_stream):
        from repro.errors import MiningError

        with pytest.raises(ReproError):
            raise MiningError("typed errors share one base")
