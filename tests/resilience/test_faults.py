"""FaultPlan semantics: determinism, firing rules, corruption, arming."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import FaultInjectedError, ReproError
from repro.resilience.faults import (
    NULL_PLAN,
    FaultPlan,
    FaultSpec,
    active_plan,
    corrupt_payload,
    fault_point,
    inject,
    install_plan,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ReproError):
            FaultSpec(point="x", kind="explosion")

    def test_rejects_bad_probability(self):
        with pytest.raises(ReproError):
            FaultSpec(point="x", probability=1.5)

    def test_rejects_bad_every_nth(self):
        with pytest.raises(ReproError):
            FaultSpec(point="x", every_nth=0)

    def test_exact_and_glob_matching(self):
        exact = FaultSpec(point="mine.audio")
        glob = FaultSpec(point="mine.*")
        assert exact.matches("mine.audio")
        assert not exact.matches("mine.cues")
        assert glob.matches("mine.cues")
        assert glob.matches("mine.audio")
        assert not glob.matches("serve.query")


class TestFaultPlan:
    def test_certain_error_fires_every_hit(self):
        plan = FaultPlan([FaultSpec(point="p")])
        for _ in range(3):
            with pytest.raises(FaultInjectedError):
                plan.hit("p")
        assert plan.hits("p") == 3
        assert plan.fired("p", "error") == 3

    def test_limit_caps_firings(self):
        plan = FaultPlan([FaultSpec(point="p", limit=2)])
        with pytest.raises(FaultInjectedError):
            plan.hit("p")
        with pytest.raises(FaultInjectedError):
            plan.hit("p")
        plan.hit("p")  # limit exhausted: no fault
        assert plan.fired("p") == 2

    def test_every_nth_is_deterministic(self):
        plan = FaultPlan([FaultSpec(point="p", every_nth=3)])
        outcomes = []
        for _ in range(9):
            try:
                plan.hit("p")
                outcomes.append(False)
            except FaultInjectedError:
                outcomes.append(True)
        assert outcomes == [False, False, True] * 3

    def test_probability_stream_is_seed_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan([FaultSpec(point="p", probability=0.5)], seed=seed)
            pattern = []
            for _ in range(32):
                try:
                    plan.hit("p")
                    pattern.append(0)
                except FaultInjectedError:
                    pattern.append(1)
            return pattern

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)
        assert 0 < sum(firing_pattern(7)) < 32

    def test_latency_fault_sleeps(self):
        plan = FaultPlan([FaultSpec(point="p", kind="latency", delay=0.05)])
        start = time.perf_counter()
        plan.hit("p")  # must not raise
        assert time.perf_counter() - start >= 0.04
        assert plan.fired("p", "latency") == 1

    def test_error_message_names_the_point(self):
        plan = FaultPlan([FaultSpec(point="p", message="boom")])
        with pytest.raises(FaultInjectedError, match="p: boom"):
            plan.hit("p")

    def test_corruption_mutates_payload_deterministically(self):
        payload = bytes(range(256))
        mutated_a = FaultPlan(
            [FaultSpec(point="p", kind="corruption")], seed=3
        ).corrupt("p", payload)
        mutated_b = FaultPlan(
            [FaultSpec(point="p", kind="corruption")], seed=3
        ).corrupt("p", payload)
        assert mutated_a != payload
        assert len(mutated_a) == len(payload)
        assert mutated_a == mutated_b  # same seed, same flips

    def test_corruption_spec_does_not_fire_on_hit(self):
        plan = FaultPlan([FaultSpec(point="p", kind="corruption")])
        plan.hit("p")  # corruption specs only act through corrupt()
        assert plan.fired("p") == 0

    def test_error_spec_does_not_corrupt(self):
        plan = FaultPlan([FaultSpec(point="p", kind="error")])
        payload = b"intact"
        assert plan.corrupt("p", payload) is payload

    def test_report_lists_points(self):
        plan = FaultPlan([FaultSpec(point="p", limit=1)])
        with pytest.raises(FaultInjectedError):
            plan.hit("p")
        assert "p" in plan.report()
        assert "1 faults fired" in plan.report()

    def test_thread_safety_of_counters(self):
        plan = FaultPlan([FaultSpec(point="p", every_nth=2)])

        def worker():
            for _ in range(100):
                try:
                    plan.hit("p")
                except FaultInjectedError:
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert plan.hits("p") == 400
        assert plan.fired("p") == 200


class TestArming:
    def test_default_is_null_plan(self):
        assert active_plan() is NULL_PLAN
        fault_point("anything")  # must be a silent no-op
        assert corrupt_payload("anything", b"x") == b"x"

    def test_inject_scopes_the_plan(self):
        plan = FaultPlan([FaultSpec(point="p")])
        with inject(plan):
            assert active_plan() is plan
            with pytest.raises(FaultInjectedError):
                fault_point("p")
        assert active_plan() is NULL_PLAN

    def test_install_returns_previous(self):
        plan = FaultPlan()
        previous = install_plan(plan)
        assert previous is NULL_PLAN
        assert install_plan(None) is plan
        assert active_plan() is NULL_PLAN

    def test_null_plan_introspection(self):
        assert NULL_PLAN.hits("p") == 0
        assert NULL_PLAN.fired() == 0
        assert NULL_PLAN.events() == []
        assert "disarmed" in NULL_PLAN.report()
