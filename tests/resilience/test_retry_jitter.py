"""RetryPolicy backoff: decorrelated jitter plus the deterministic path."""

from __future__ import annotations

import random

import pytest

from repro.ingest.executor import RetryPolicy


class TestDeterministicDelay:
    def test_exponential_schedule_is_unchanged(self):
        policy = RetryPolicy(retries=3, backoff=0.1, backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_delay_is_capped(self):
        policy = RetryPolicy(backoff=1.0, backoff_factor=10.0, max_delay=5.0)
        assert policy.delay(4) == 5.0

    def test_jitter_disabled_falls_back_to_delay(self):
        policy = RetryPolicy(jitter=False)
        rng = random.Random(0)
        for attempt in range(1, 4):
            assert policy.next_delay(attempt, previous=1.0, rng=rng) == policy.delay(
                attempt
            )

    def test_no_rng_falls_back_to_delay(self):
        policy = RetryPolicy(jitter=True)
        assert policy.next_delay(2, previous=1.0, rng=None) == policy.delay(2)


class TestDecorrelatedJitter:
    def test_delays_stay_within_bounds(self):
        policy = RetryPolicy(backoff=0.1, max_delay=2.0)
        rng = random.Random(42)
        previous = 0.0
        for attempt in range(1, 50):
            upper = min(policy.max_delay, max(policy.backoff, 3.0 * previous))
            delay = policy.next_delay(attempt, previous, rng)
            assert policy.backoff <= delay <= upper + 1e-12
            previous = delay

    def test_delays_never_exceed_the_cap(self):
        policy = RetryPolicy(backoff=1.0, max_delay=3.0)
        rng = random.Random(7)
        previous = 100.0  # pathological caller state
        for attempt in range(1, 20):
            previous = policy.next_delay(attempt, previous, rng)
            assert previous <= 3.0

    def test_same_seed_reproduces_the_schedule(self):
        policy = RetryPolicy(backoff=0.1)

        def schedule(seed):
            rng = random.Random(seed)
            previous, out = 0.0, []
            for attempt in range(1, 8):
                previous = policy.next_delay(attempt, previous, rng)
                out.append(previous)
            return out

        assert schedule("job-a") == schedule("job-a")

    def test_different_jobs_decorrelate(self):
        policy = RetryPolicy(backoff=0.1)

        def schedule(seed):
            rng = random.Random(seed)
            previous, out = 0.0, []
            for attempt in range(1, 8):
                previous = policy.next_delay(attempt, previous, rng)
                out.append(previous)
            return out

        assert schedule("job-a") != schedule("job-b")

    def test_jitter_spreads_a_lockstep_batch(self):
        policy = RetryPolicy(backoff=0.1)
        first_delays = {
            round(policy.next_delay(1, 0.5, random.Random(key)), 6)
            for key in ("a", "b", "c", "d", "e")
        }
        assert len(first_delays) > 1  # no longer retrying in lockstep

    def test_max_attempts_unchanged(self):
        assert RetryPolicy(retries=2).max_attempts == 3
        assert RetryPolicy(retries=0).max_attempts == 1
