"""Degraded-mode mining: stage failures become flags, not exceptions."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import ClassMiner
from repro.core.structure import mine_content_structure
from repro.database.catalog import VideoDatabase
from repro.errors import DegradedResultWarning, FaultInjectedError
from repro.ingest.artifacts import ArtifactStore
from repro.obs.registry import get_registry
from repro.resilience.faults import FaultPlan, FaultSpec, inject


def _mine(stream, point, mine_events=True):
    """Mine the demo stream with one fault point permanently failing."""
    plan = FaultPlan([FaultSpec(point=point, kind="error")])
    with inject(plan), pytest.warns(DegradedResultWarning):
        miner = ClassMiner()
        return miner.mine(stream, mine_events=mine_events)


class TestPipelineDegradation:
    def test_cues_failure_yields_structure_only(self, demo_stream):
        result = _mine(demo_stream, "mine.cues")
        assert result.degraded
        assert set(result.degraded_stages) == {"cues", "events"}
        assert result.cues == {}
        assert result.audio == {}
        assert result.events is None
        assert result.structure.shots  # the structure itself is intact
        assert not result.structure.degraded

    def test_audio_failure_falls_back_to_visual_rules(self, demo_stream):
        result = _mine(demo_stream, "mine.audio")
        assert result.degraded_stages == ("audio",)
        assert result.audio == {}
        assert result.cues  # cues survived
        assert result.events is not None  # visual-only rules still mined
        assert result.scene_events()

    def test_events_failure_keeps_cues_and_audio(self, demo_stream):
        result = _mine(demo_stream, "mine.events")
        assert result.degraded_stages == ("events",)
        assert result.cues
        assert result.audio
        assert result.events is None
        assert result.scene_events() == {}

    def test_shot_failure_stays_fatal(self, demo_stream):
        plan = FaultPlan([FaultSpec(point="mine.shots", kind="error")])
        with inject(plan), pytest.raises(FaultInjectedError):
            ClassMiner().mine(demo_stream, mine_events=False)


class TestStructureDegradation:
    def test_groups_failure_falls_back_to_one_group_per_shot(self, demo_stream):
        plan = FaultPlan([FaultSpec(point="mine.groups", kind="error")])
        with inject(plan), pytest.warns(DegradedResultWarning):
            structure = mine_content_structure(demo_stream)
        assert "groups" in structure.degraded_stages
        assert len(structure.groups) == len(structure.shots)
        assert all(len(g.shots) == 1 for g in structure.groups)

    def test_scenes_failure_yields_empty_scene_level(self, demo_stream):
        plan = FaultPlan([FaultSpec(point="mine.scenes", kind="error")])
        with inject(plan), pytest.warns(DegradedResultWarning):
            structure = mine_content_structure(demo_stream)
        assert structure.degraded_stages == ("scenes",)
        assert structure.scenes == []
        assert structure.clustered_scenes == []  # clustering skipped
        assert structure.groups  # lower levels untouched

    def test_clustering_failure_keeps_scenes(self, demo_stream):
        plan = FaultPlan([FaultSpec(point="mine.clustering", kind="error")])
        with inject(plan), pytest.warns(DegradedResultWarning):
            structure = mine_content_structure(demo_stream)
        assert structure.degraded_stages == ("clustering",)
        assert structure.scenes
        assert structure.clustering is None
        assert structure.clustered_scenes == []

    def test_degradation_bumps_the_metrics_counter(self, demo_stream):
        before = get_registry().snapshot().get(
            "mining_degraded_stages_total{stage=clustering}", 0.0
        )
        plan = FaultPlan([FaultSpec(point="mine.clustering", kind="error")])
        with inject(plan), pytest.warns(DegradedResultWarning):
            mine_content_structure(demo_stream)
        after = get_registry().snapshot()[
            "mining_degraded_stages_total{stage=clustering}"
        ]
        assert after == before + 1.0


class TestFlagPersistence:
    def test_artifact_roundtrip_preserves_flags(self, tmp_path, demo_result):
        flagged = replace(demo_result, degraded_stages=("audio", "events"))
        store = ArtifactStore(tmp_path / "artifacts")
        store.save("ab" * 32, flagged)
        loaded = store.load("ab" * 32)
        assert loaded.degraded_stages == ("audio", "events")
        assert loaded.degraded

    def test_catalog_roundtrip_preserves_flags(self, tmp_path, demo_result):
        flagged = replace(demo_result, degraded_stages=("audio",))
        db = VideoDatabase()
        record = db.register(flagged)
        assert record.degraded_stages == ("audio",)
        assert record.degraded
        db.save(tmp_path / "database.json")
        restored = VideoDatabase.load(tmp_path / "database.json")
        reloaded = restored.videos[record.title]
        assert reloaded.degraded_stages == ("audio",)

    def test_clean_result_has_no_flags(self, demo_result):
        assert demo_result.degraded_stages == ()
        assert not demo_result.degraded
