"""Self-healing serving: fault survival, stale snapshots, watchdog, health."""

from __future__ import annotations

import time

import pytest

from repro.cli import main
from repro.errors import CircuitOpenError, FaultInjectedError, ReproError
from repro.resilience import server_health
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.serving.server import _SENTINEL, QueryRequest, QueryServer, ServerConfig
from repro.serving.snapshot import SnapshotManager
from repro.resilience.faults import FaultPlan, FaultSpec, inject

_CONFIG = ServerConfig(workers=2, default_timeout=10.0)


def _request(server, k=3) -> QueryRequest:
    features = server.manager.current().flat.entries[0].features
    return QueryRequest(kind="shot", features=features, k=k)


class TestQueryFaults:
    def test_injected_query_error_is_typed_and_survivable(self, serving_db):
        with QueryServer(serving_db, _CONFIG) as server:
            request = _request(server)
            plan = FaultPlan([FaultSpec(point="serve.query", kind="error", limit=2)])
            with inject(plan):
                for _ in range(2):
                    with pytest.raises(FaultInjectedError):
                        server.query(request)
            clean = server.query(request)
            assert clean.hits
            assert server.alive_workers == _CONFIG.workers

    def test_injected_latency_only_slows_the_answer(self, serving_db):
        with QueryServer(serving_db, _CONFIG) as server:
            request = _request(server)
            plan = FaultPlan(
                [FaultSpec(point="serve.query", kind="latency", delay=0.02, limit=1)]
            )
            with inject(plan):
                result = server.query(request)
            assert result.hits
            assert result.elapsed_seconds >= 0.02
            assert plan.fired("serve.query", "latency") == 1


class TestRebuildResilience:
    def test_failed_rebuild_serves_stale_and_degraded(self, serving_db):
        with QueryServer(serving_db, _CONFIG) as server:
            request = _request(server)
            baseline = server.query(request)
            assert not baseline.degraded

            plan = FaultPlan([FaultSpec(point="serve.rebuild", kind="error", limit=1)])
            with inject(plan):
                with pytest.raises(FaultInjectedError):
                    server.refresh()
                during = server.query(request)
            assert during.generation == baseline.generation  # stale but serving
            assert during.degraded
            assert during.hits
            assert server.manager.degraded
            assert "FaultInjectedError" in server.manager.last_error

            healed = server.refresh()
            after = server.query(request)
            assert healed.generation > baseline.generation
            assert not after.degraded
            assert server.manager.last_error is None

    def test_breaker_opens_after_threshold_and_recovers(self, serving_db):
        clock = [0.0]
        breaker = CircuitBreaker(
            name="snapshot-rebuild",
            failure_threshold=2,
            reset_timeout=10.0,
            clock=lambda: clock[0],
        )
        manager = SnapshotManager(serving_db, breaker=breaker)
        with QueryServer(manager=manager, config=_CONFIG) as server:
            request = _request(server)
            plan = FaultPlan([FaultSpec(point="serve.rebuild", kind="error")])
            with inject(plan):
                errors = []
                for _ in range(3):
                    try:
                        server.refresh()
                    except ReproError as exc:
                        errors.append(type(exc))
            assert errors == [FaultInjectedError, FaultInjectedError, CircuitOpenError]
            assert breaker.state is BreakerState.OPEN
            assert breaker.trips == 1

            # While open, even a healthy rebuild is refused...
            with pytest.raises(CircuitOpenError):
                server.refresh()
            # ...but queries keep flowing from the last good generation.
            assert server.query(request).hits

            clock[0] += 10.0  # cooldown elapses; the probe heals it
            healed = server.refresh()
            assert breaker.state is BreakerState.CLOSED
            assert healed.generation >= 2
            assert not server.query(request).degraded


class TestCacheResilience:
    def test_cache_faults_bypass_the_cache_not_the_query(self, serving_db):
        with QueryServer(serving_db, _CONFIG) as server:
            request = _request(server)
            plan = FaultPlan([FaultSpec(point="serve.cache", kind="error")])
            with inject(plan):
                results = [server.query(request) for _ in range(4)]
            assert all(r.hits for r in results)
            assert not any(r.cache_hit for r in results)  # cache never engaged
            assert server.cache_breaker.state is BreakerState.OPEN
            assert server.cache_breaker.trips >= 1
            # Queries still answer fine with the breaker open.
            assert server.query(request).hits


class TestWatchdog:
    def test_watchdog_resurrects_a_killed_worker(self, serving_db):
        config = ServerConfig(workers=2, watchdog_interval=0.05)
        with QueryServer(serving_db, config) as server:
            server._queue.put(_SENTINEL)  # assassinate one worker
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if (
                    server.alive_workers == config.workers
                    and server.metrics.registry.snapshot().get(
                        "serving_worker_resurrections_total", 0.0
                    )
                    >= 1.0
                ):
                    break
                time.sleep(0.02)
            assert server.alive_workers == config.workers
            snapshot = server.metrics.registry.snapshot()
            assert snapshot["serving_worker_resurrections_total"] >= 1.0
            assert server.query(_request(server)).hits

    def test_watchdog_can_be_disabled(self, serving_db):
        config = ServerConfig(workers=1, watchdog_interval=None)
        with QueryServer(serving_db, config) as server:
            assert server.watchdog is None
            assert server.query(_request(server)).hits
        assert server.watchdog is None


class TestHealth:
    def test_healthy_server_reports_ok(self, serving_db):
        with QueryServer(serving_db, _CONFIG) as server:
            server.manager.current()
            report = server_health(server)
        assert report.status == "ok"
        assert report.exit_code == 0
        assert "health: OK" in report.render()
        assert all(check.ok for check in report.checks)

    def test_stale_snapshot_reports_degraded(self, serving_db):
        with QueryServer(serving_db, _CONFIG) as server:
            server.manager.current()
            plan = FaultPlan([FaultSpec(point="serve.rebuild", kind="error", limit=1)])
            with inject(plan), pytest.raises(FaultInjectedError):
                server.refresh()
            report = server_health(server)
        assert report.live
        assert report.ready
        assert report.degraded
        assert report.status == "degraded"
        assert report.exit_code == 1

    def test_stopped_server_reports_down(self, serving_db):
        server = QueryServer(serving_db, _CONFIG)
        server.manager.current()
        report = server_health(server)  # never started
        assert not report.live
        assert report.status == "down"
        assert report.exit_code == 2

    def test_health_cli_on_an_ingested_directory(self, tmp_path, serving_db, capsys):
        serving_db.save(tmp_path / "database.json")
        code = main(["health", "--db-dir", str(tmp_path), "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "health: OK" in out
        assert "snapshot" in out

    def test_health_cli_missing_database_fails_cleanly(self, tmp_path):
        code = main(["health", "--db-dir", str(tmp_path / "empty")])
        assert code != 0
