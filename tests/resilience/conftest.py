"""Shared resilience fixtures: demo-backed database and features.

Mirrors the serving conftest so resilience tests reuse the session-mined
demo result instead of paying for extra mining runs.
"""

from __future__ import annotations

import pytest

from repro.database.catalog import VideoDatabase
from repro.database.index import combine_features
from repro.resilience.faults import NULL_PLAN, install_plan


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Every test starts and ends with fault injection disarmed."""
    install_plan(NULL_PLAN)
    yield
    install_plan(NULL_PLAN)


@pytest.fixture()
def serving_db(demo_result) -> VideoDatabase:
    """A fresh database with the demo video registered."""
    db = VideoDatabase()
    db.register(demo_result)
    return db


@pytest.fixture()
def demo_features(demo_result):
    """Combined feature vector of the first demo shot."""
    shot = demo_result.structure.shots[0]
    return combine_features(shot.histogram, shot.texture)
