"""Artifact integrity: checksums, corruption detection, quarantine."""

from __future__ import annotations

import json

import pytest

from repro.errors import IngestError, IntegrityError
from repro.ingest.artifacts import ArtifactStore
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.resilience.integrity import (
    CHECKSUMS_NAME,
    QUARANTINE_DIR,
    file_digest,
    verify_checksums,
    write_checksums,
)

KEY = "feedc0de" * 8  # any 64-char hex key


@pytest.fixture()
def store(tmp_path, demo_result) -> ArtifactStore:
    """A store holding the demo artifact under KEY."""
    s = ArtifactStore(tmp_path / "artifacts")
    s.save(KEY, demo_result)
    return s


class TestManifest:
    def test_write_then_verify(self, tmp_path):
        (tmp_path / "a.bin").write_bytes(b"alpha")
        (tmp_path / "b.bin").write_bytes(b"beta")
        write_checksums(tmp_path, ("a.bin", "b.bin"))
        assert verify_checksums(tmp_path) is True

    def test_legacy_directory_without_manifest(self, tmp_path):
        (tmp_path / "a.bin").write_bytes(b"alpha")
        assert verify_checksums(tmp_path) is False

    def test_mismatch_names_the_file(self, tmp_path):
        (tmp_path / "a.bin").write_bytes(b"alpha")
        write_checksums(tmp_path, ("a.bin",))
        (tmp_path / "a.bin").write_bytes(b"tampered")
        with pytest.raises(IntegrityError, match="a.bin"):
            verify_checksums(tmp_path)

    def test_missing_checksummed_file(self, tmp_path):
        (tmp_path / "a.bin").write_bytes(b"alpha")
        write_checksums(tmp_path, ("a.bin",))
        (tmp_path / "a.bin").unlink()
        with pytest.raises(IntegrityError, match="missing"):
            verify_checksums(tmp_path)

    def test_garbled_manifest(self, tmp_path):
        (tmp_path / CHECKSUMS_NAME).write_bytes(b"\xff\xfenot json")
        with pytest.raises(IntegrityError, match="unreadable"):
            verify_checksums(tmp_path)

    def test_unknown_algorithm(self, tmp_path):
        (tmp_path / CHECKSUMS_NAME).write_text(
            json.dumps({"algorithm": "crc32", "files": {}})
        )
        with pytest.raises(IntegrityError, match="crc32"):
            verify_checksums(tmp_path)

    def test_file_digest_is_content_addressed(self, tmp_path):
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        a.write_bytes(b"same content")
        b.write_bytes(b"same content")
        assert file_digest(a) == file_digest(b)
        b.write_bytes(b"same content!")
        assert file_digest(a) != file_digest(b)


class TestStoreVerification:
    def test_save_writes_manifest_and_verifies(self, store):
        assert (store.path_for(KEY) / CHECKSUMS_NAME).exists()
        assert store.verify(KEY) is True
        assert store.has_valid(KEY)

    def test_truncated_meta_quarantines_on_load(self, store):
        meta = store.path_for(KEY) / "meta.json"
        meta.write_bytes(meta.read_bytes()[: len(meta.read_bytes()) // 2])
        with pytest.raises(IntegrityError):
            store.load(KEY)
        assert not store.has(KEY)
        assert store.quarantined() == [KEY]
        note = json.loads(
            (store.root / QUARANTINE_DIR / KEY / "quarantined.json").read_text()
        )
        assert note["key"] == KEY
        assert "meta.json" in note["reason"]

    def test_bitflipped_arrays_quarantine_on_load(self, store):
        arrays = store.path_for(KEY) / "arrays.npz"
        payload = bytearray(arrays.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        arrays.write_bytes(bytes(payload))
        with pytest.raises(IntegrityError, match="arrays.npz"):
            store.load(KEY)
        assert store.quarantined() == [KEY]

    def test_verify_reports_without_quarantining(self, store):
        (store.path_for(KEY) / "meta.json").write_bytes(b"{}")
        with pytest.raises(IntegrityError):
            store.verify(KEY)
        assert store.has(KEY)  # still in place
        assert store.quarantined() == []

    def test_has_valid_quarantines_as_side_effect(self, store):
        (store.path_for(KEY) / "meta.json").write_bytes(b"{}")
        assert not store.has_valid(KEY)
        assert not store.has(KEY)
        assert store.quarantined() == [KEY]

    def test_legacy_artifact_still_loads(self, store, demo_result):
        (store.path_for(KEY) / CHECKSUMS_NAME).unlink()
        assert store.verify(KEY) is False
        loaded = store.load(KEY)
        assert loaded.structure.title == demo_result.structure.title

    def test_verify_missing_artifact_is_typed(self, store):
        with pytest.raises(IngestError):
            store.verify("00" * 32)
        assert not store.has_valid("00" * 32)

    def test_quarantine_is_invisible_to_list(self, store):
        assert [info.key for info in store.list()] == [KEY]
        store.quarantine(KEY, reason="test")
        assert store.list() == []
        assert store.quarantined() == [KEY]


class TestInjectedCorruption:
    def test_corruption_fault_is_caught_by_checksums(self, tmp_path, demo_result):
        store = ArtifactStore(tmp_path / "artifacts")
        plan = FaultPlan(
            [FaultSpec(point="ingest.artifact.write", kind="corruption", limit=1)]
        )
        with inject(plan):
            store.save(KEY, demo_result)
        assert plan.fired("ingest.artifact.write", "corruption") == 1
        assert store.has(KEY)  # present on disk...
        assert not store.has_valid(KEY)  # ...but fails verification
        assert store.quarantined() == [KEY]

    def test_resave_after_quarantine_is_clean(self, tmp_path, demo_result):
        store = ArtifactStore(tmp_path / "artifacts")
        plan = FaultPlan(
            [FaultSpec(point="ingest.artifact.write", kind="corruption", limit=1)]
        )
        with inject(plan):
            store.save(KEY, demo_result)
            assert not store.has_valid(KEY)
            store.save(KEY, demo_result)  # the re-mine; fault exhausted
        assert store.has_valid(KEY)
        loaded = store.load(KEY)
        assert loaded.structure.title == demo_result.structure.title
        assert store.quarantined() == [KEY]  # post-mortem copy remains
