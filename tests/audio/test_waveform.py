"""Tests for the Waveform model."""

import numpy as np
import pytest

from repro.audio.waveform import Waveform
from repro.errors import AudioError


class TestWaveform:
    def test_duration(self):
        wave = Waveform(samples=np.zeros(8000), sample_rate=8000)
        assert wave.duration == pytest.approx(1.0)
        assert len(wave) == 8000

    def test_rejects_2d(self):
        with pytest.raises(AudioError):
            Waveform(samples=np.zeros((10, 2)))

    def test_rejects_bad_rate(self):
        with pytest.raises(AudioError):
            Waveform(samples=np.zeros(10), sample_rate=0)

    def test_rejects_clipping(self):
        with pytest.raises(AudioError):
            Waveform(samples=np.array([0.0, 1.5]))

    def test_rms(self):
        wave = Waveform(samples=np.full(100, 0.5))
        assert wave.rms() == pytest.approx(0.5)
        assert Waveform(samples=np.zeros(0)).rms() == 0.0

    def test_slice_seconds(self):
        samples = np.arange(8000) / 8000.0
        wave = Waveform(samples=samples, sample_rate=8000)
        part = wave.slice_seconds(0.25, 0.5)
        assert len(part) == 2000
        assert part.samples[0] == pytest.approx(0.25)

    def test_slice_clamps_end(self):
        wave = Waveform(samples=np.zeros(8000), sample_rate=8000)
        part = wave.slice_seconds(0.9, 5.0)
        assert len(part) == 800

    def test_slice_rejects_bad_window(self):
        wave = Waveform(samples=np.zeros(800), sample_rate=8000)
        with pytest.raises(AudioError):
            wave.slice_seconds(0.5, 0.5)
        with pytest.raises(AudioError):
            wave.slice_seconds(1.0, 2.0)  # starts past the end

    def test_concatenate(self):
        a = Waveform(samples=np.zeros(100))
        b = Waveform(samples=np.ones(50) * 0.5)
        joined = Waveform.concatenate([a, b])
        assert len(joined) == 150
        assert joined.samples[120] == 0.5

    def test_concatenate_rejects_mixed_rates(self):
        a = Waveform(samples=np.zeros(10), sample_rate=8000)
        b = Waveform(samples=np.zeros(10), sample_rate=16000)
        with pytest.raises(AudioError):
            Waveform.concatenate([a, b])

    def test_concatenate_rejects_empty_list(self):
        with pytest.raises(AudioError):
            Waveform.concatenate([])

    def test_silence(self):
        quiet = Waveform.silence(0.5, sample_rate=8000)
        assert len(quiet) == 4000
        assert quiet.rms() == 0.0
        with pytest.raises(AudioError):
            Waveform.silence(-1.0)
