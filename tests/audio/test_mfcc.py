"""Tests for the from-scratch MFCC pipeline."""

import numpy as np
import pytest

from repro.audio.mfcc import (
    frame_signal,
    hz_to_mel,
    mel_filterbank,
    mel_to_hz,
    mfcc,
)
from repro.audio.synthesis import VOICE_BANK, synthesize_speech
from repro.audio.waveform import Waveform
from repro.errors import AudioError


class TestMelScale:
    def test_round_trip(self):
        freqs = np.array([80.0, 440.0, 1000.0, 3999.0])
        assert np.allclose(mel_to_hz(hz_to_mel(freqs)), freqs)

    def test_1000hz_anchor(self):
        assert hz_to_mel(1000.0) == pytest.approx(1000.0, abs=1.0)

    def test_monotone(self):
        mels = hz_to_mel(np.linspace(0, 4000, 100))
        assert np.all(np.diff(mels) > 0)


class TestFilterbank:
    def test_shape_and_coverage(self):
        bank = mel_filterbank(24, 240, 8000)
        assert bank.shape == (24, 121)
        # Every filter has some mass; mid-range bins are covered.
        assert (bank.sum(axis=1) > 0).all()
        coverage = bank.sum(axis=0)
        mid = coverage[10:100]
        assert (mid > 0).all()

    def test_rejects_bad_params(self):
        with pytest.raises(AudioError):
            mel_filterbank(0, 240, 8000)
        with pytest.raises(AudioError):
            mel_filterbank(10, 240, 8000, fmin=5000.0)


class TestFrameSignal:
    def test_count_and_hop(self):
        samples = np.arange(8000, dtype=float)
        frames = frame_signal(samples, 8000, 0.030, 0.010)
        assert frames.shape == (98, 240)  # 1 + (8000 - 240) // 80
        assert frames[1, 0] == 80.0  # hop of 80 samples

    def test_short_signal_gives_empty(self):
        frames = frame_signal(np.zeros(100), 8000, 0.030, 0.010)
        assert frames.shape[0] == 0

    def test_rejects_tiny_window(self):
        with pytest.raises(AudioError):
            frame_signal(np.zeros(100), 8000, 0.0, 0.010)


class TestMfcc:
    def test_paper_dimensions(self):
        wave = synthesize_speech(VOICE_BANK["narrator"], 2.0)
        vectors = mfcc(wave)
        assert vectors.shape[1] == 14
        # 2 s at 10 ms hop with a 30 ms window -> ~198 frames.
        assert 190 <= vectors.shape[0] <= 200

    def test_empty_waveform(self):
        assert mfcc(Waveform(samples=np.zeros(0))).shape == (0, 14)

    def test_too_short_waveform(self):
        assert mfcc(Waveform(samples=np.zeros(100))).shape == (0, 14)

    def test_rejects_bad_coefficient_count(self):
        wave = Waveform(samples=np.zeros(8000))
        with pytest.raises(AudioError):
            mfcc(wave, num_coefficients=0)
        with pytest.raises(AudioError):
            mfcc(wave, num_coefficients=99)

    def test_distinct_voices_have_distinct_mfcc_means(self):
        a = mfcc(synthesize_speech(VOICE_BANK["dr_adams"], 2.0)).mean(axis=0)
        b = mfcc(synthesize_speech(VOICE_BANK["nurse_diaz"], 2.0)).mean(axis=0)
        assert np.linalg.norm(a - b) > 1.0

    def test_same_voice_is_stable_across_seeds(self):
        a = mfcc(synthesize_speech(VOICE_BANK["dr_adams"], 2.0, seed=1)).mean(axis=0)
        b = mfcc(synthesize_speech(VOICE_BANK["dr_adams"], 2.0, seed=2)).mean(axis=0)
        c = mfcc(synthesize_speech(VOICE_BANK["nurse_diaz"], 2.0, seed=1)).mean(axis=0)
        assert np.linalg.norm(a - b) < np.linalg.norm(a - c)
