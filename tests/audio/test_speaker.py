"""Tests for per-shot speaker analysis."""

import numpy as np
import pytest

from repro.audio.speaker import (
    NON_SPEECH_LABEL,
    SPEECH_LABEL,
    SpeakerAnalyzer,
    analyze_shots,
    default_speech_classifier,
)
from repro.audio.synthesis import (
    VOICE_BANK,
    synthesize_ambient,
    synthesize_music,
    synthesize_speech,
)
from repro.audio.features import clip_features
from repro.audio.waveform import Waveform
from repro.errors import AudioError


@pytest.fixture(scope="module")
def classifier():
    return default_speech_classifier()


@pytest.fixture(scope="module")
def analyzer(classifier):
    return SpeakerAnalyzer(classifier=classifier)


def _track(parts):
    return Waveform.concatenate(parts)


class TestDefaultClassifier:
    def test_speech_vs_nonspeech(self, classifier):
        for name, voice in VOICE_BANK.items():
            clip = synthesize_speech(voice, 2.0, seed=77)
            label = classifier.predict(clip_features(clip)[None, :])[0]
            assert label == SPEECH_LABEL, name
        for clip in (synthesize_music(2.0, seed=77), synthesize_ambient(2.0, seed=77)):
            label = classifier.predict(clip_features(clip)[None, :])[0]
            assert label == NON_SPEECH_LABEL

    def test_cached(self):
        assert default_speech_classifier() is default_speech_classifier()


class TestAnalyzeShot:
    def test_speech_shot(self, analyzer):
        audio = synthesize_speech(VOICE_BANK["dr_adams"], 4.0, seed=1)
        shot = analyzer.analyze_shot(audio, 0, 0.0, 4.0)
        assert shot.has_speech
        assert shot.representative_clip is not None
        assert shot.mfcc_vectors.shape[1] == 14

    def test_short_shot_discarded(self, analyzer):
        audio = synthesize_speech(VOICE_BANK["dr_adams"], 4.0, seed=1)
        shot = analyzer.analyze_shot(audio, 0, 0.0, 1.0)
        assert shot.representative_clip is None
        assert not shot.has_speech

    def test_ambient_shot_has_no_speech(self, analyzer):
        audio = synthesize_ambient(4.0, seed=1)
        shot = analyzer.analyze_shot(audio, 0, 0.0, 4.0)
        assert not shot.has_speech

    def test_representative_clip_prefers_speech(self, analyzer):
        # First 2 s music, last 2 s speech: the speech clip must win.
        track = _track(
            [
                synthesize_music(2.0, seed=2),
                synthesize_speech(VOICE_BANK["narrator"], 2.0, seed=2),
            ]
        )
        shot = analyzer.analyze_shot(track, 0, 0.0, 4.0)
        assert shot.has_speech
        assert shot.representative_clip.start == pytest.approx(2.0)


class TestSpeakerChange:
    def test_same_voice(self, analyzer):
        audio = synthesize_speech(VOICE_BANK["dr_adams"], 8.0, seed=3)
        a = analyzer.analyze_shot(audio, 0, 0.0, 4.0)
        b = analyzer.analyze_shot(audio, 1, 4.0, 8.0)
        assert analyzer.is_speaker_change(a, b) is False

    def test_different_voice(self, analyzer):
        track = _track(
            [
                synthesize_speech(VOICE_BANK["dr_adams"], 4.0, seed=3),
                synthesize_speech(VOICE_BANK["dr_baker"], 4.0, seed=3),
            ]
        )
        a = analyzer.analyze_shot(track, 0, 0.0, 4.0)
        b = analyzer.analyze_shot(track, 1, 4.0, 8.0)
        assert analyzer.is_speaker_change(a, b) is True

    def test_untestable_pair_returns_none(self, analyzer):
        audio = _track(
            [
                synthesize_speech(VOICE_BANK["dr_adams"], 4.0, seed=3),
                synthesize_ambient(4.0, seed=3),
            ]
        )
        a = analyzer.analyze_shot(audio, 0, 0.0, 4.0)
        b = analyzer.analyze_shot(audio, 1, 4.0, 8.0)
        assert analyzer.speaker_change(a, b) is None
        assert analyzer.is_speaker_change(a, b) is False


class TestAnalyzeShots:
    def test_batch(self, analyzer):
        audio = synthesize_speech(VOICE_BANK["narrator"], 6.0, seed=4)
        results = analyze_shots(audio, [(0.0, 3.0), (3.0, 6.0)], analyzer)
        assert [r.shot_id for r in results] == [0, 1]

    def test_rejects_empty_window(self, analyzer):
        audio = synthesize_ambient(4.0)
        with pytest.raises(AudioError):
            analyze_shots(audio, [(2.0, 2.0)], analyzer)
