"""Tests for the Delta-BIC speaker-change test."""

import numpy as np
import pytest

from repro.audio.bic import BicResult, bic_speaker_change
from repro.audio.mfcc import mfcc
from repro.audio.synthesis import VOICE_BANK, synthesize_speech
from repro.errors import AudioError


def _mfcc_of(voice_name: str, seed: int) -> np.ndarray:
    return mfcc(synthesize_speech(VOICE_BANK[voice_name], 2.0, seed=seed))


class TestBicOnSynthetic:
    def test_same_speaker_no_change(self):
        result = bic_speaker_change(_mfcc_of("dr_adams", 1), _mfcc_of("dr_adams", 2))
        assert not result.is_change
        assert result.delta_bic > 0

    def test_different_speakers_change(self):
        result = bic_speaker_change(_mfcc_of("dr_adams", 1), _mfcc_of("dr_baker", 1))
        assert result.is_change
        assert result.delta_bic < 0

    def test_margin_is_wide(self):
        same = bic_speaker_change(_mfcc_of("narrator", 1), _mfcc_of("narrator", 2))
        diff = bic_speaker_change(_mfcc_of("narrator", 1), _mfcc_of("nurse_diaz", 1))
        assert same.delta_bic - diff.delta_bic > 500.0

    def test_penalty_scales_with_lambda(self):
        a, b = _mfcc_of("dr_adams", 1), _mfcc_of("dr_baker", 1)
        low = bic_speaker_change(a, b, penalty_factor=1.0)
        high = bic_speaker_change(a, b, penalty_factor=3.0)
        assert high.penalty == pytest.approx(3.0 * low.penalty)
        assert high.delta_bic > low.delta_bic
        # The ratio term is independent of lambda.
        assert high.ratio == pytest.approx(low.ratio)


class TestBicOnGaussians:
    def test_identical_distributions(self, rng):
        a = rng.normal(0, 1, size=(300, 5))
        b = rng.normal(0, 1, size=(300, 5))
        assert not bic_speaker_change(a, b).is_change

    def test_shifted_distributions(self, rng):
        a = rng.normal(0, 1, size=(300, 5))
        b = rng.normal(5, 1, size=(300, 5))
        assert bic_speaker_change(a, b).is_change

    def test_rejects_dimension_mismatch(self, rng):
        with pytest.raises(AudioError):
            bic_speaker_change(rng.normal(size=(50, 4)), rng.normal(size=(50, 5)))

    def test_rejects_short_sequences(self, rng):
        with pytest.raises(AudioError):
            bic_speaker_change(rng.normal(size=(3, 5)), rng.normal(size=(50, 5)))


class TestBicResult:
    def test_is_change_property(self):
        assert BicResult(delta_bic=-1.0, ratio=0.0, penalty=0.0).is_change
        assert not BicResult(delta_bic=1.0, ratio=0.0, penalty=0.0).is_change
