"""Tests for clip segmentation."""

import numpy as np
import pytest

from repro.audio.clips import segment_clips
from repro.audio.waveform import Waveform
from repro.errors import AudioError


def _audio(seconds: float) -> Waveform:
    return Waveform(samples=np.zeros(int(seconds * 8000)), sample_rate=8000)


class TestSegmentClips:
    def test_exact_multiple(self):
        clips = segment_clips(_audio(10.0), 0.0, 6.0)
        assert len(clips) == 3
        assert all(clip.duration == pytest.approx(2.0) for clip in clips)

    def test_remainder_merged_into_last(self):
        clips = segment_clips(_audio(10.0), 0.0, 7.5)
        assert len(clips) == 3
        assert clips[-1].duration == pytest.approx(3.5)

    def test_short_shot_discarded(self):
        assert segment_clips(_audio(10.0), 0.0, 1.5) == []

    def test_clip_positions_are_absolute(self):
        clips = segment_clips(_audio(20.0), 5.0, 11.0)
        assert clips[0].start == pytest.approx(5.0)
        assert clips[-1].stop == pytest.approx(11.0)

    def test_samples_match_duration(self):
        clips = segment_clips(_audio(10.0), 0.0, 4.0)
        for clip in clips:
            assert len(clip.waveform) == pytest.approx(
                clip.duration * 8000, abs=1
            )

    def test_rejects_bad_window(self):
        with pytest.raises(AudioError):
            segment_clips(_audio(10.0), 5.0, 5.0)

    def test_rejects_bad_clip_length(self):
        with pytest.raises(AudioError):
            segment_clips(_audio(10.0), 0.0, 4.0, clip_seconds=0.0)
