"""Tests for the from-scratch GMM and classifier."""

import numpy as np
import pytest

from repro.audio.gmm import GaussianMixture, GmmClassifier
from repro.errors import AudioError


def _two_blob_data(rng, n=200):
    a = rng.normal([0.0, 0.0], 0.3, size=(n, 2))
    b = rng.normal([4.0, 4.0], 0.3, size=(n, 2))
    return a, b


class TestGaussianMixture:
    def test_validation(self):
        with pytest.raises(AudioError):
            GaussianMixture(
                weights=np.array([0.6, 0.6]),
                means=np.zeros((2, 2)),
                variances=np.ones((2, 2)),
            )
        with pytest.raises(AudioError):
            GaussianMixture(
                weights=np.array([1.0]),
                means=np.zeros((1, 2)),
                variances=np.zeros((1, 2)),
            )

    def test_fit_recovers_two_blobs(self, rng):
        a, b = _two_blob_data(rng)
        mixture = GaussianMixture.fit(np.vstack([a, b]), num_components=2, seed=0)
        means = sorted(mixture.means.tolist())
        assert means[0] == pytest.approx([0.0, 0.0], abs=0.15)
        assert means[1] == pytest.approx([4.0, 4.0], abs=0.15)
        assert mixture.weights == pytest.approx([0.5, 0.5], abs=0.05)

    def test_log_likelihood_orders_points(self, rng):
        a, b = _two_blob_data(rng)
        mixture = GaussianMixture.fit(a, num_components=1)
        inside = mixture.log_likelihood(np.array([[0.0, 0.0]]))[0]
        outside = mixture.log_likelihood(np.array([[8.0, 8.0]]))[0]
        assert inside > outside

    def test_responsibilities_sum_to_one(self, rng):
        a, b = _two_blob_data(rng)
        mixture = GaussianMixture.fit(np.vstack([a, b]), num_components=2)
        resp = mixture.responsibilities(np.vstack([a[:5], b[:5]]))
        assert np.allclose(resp.sum(axis=1), 1.0)

    def test_fit_rejects_too_few_samples(self):
        with pytest.raises(AudioError):
            GaussianMixture.fit(np.zeros((1, 3)), num_components=2)

    def test_em_improves_likelihood(self, rng):
        a, b = _two_blob_data(rng, n=100)
        data = np.vstack([a, b])
        short = GaussianMixture.fit(data, num_components=2, max_iterations=1, seed=3)
        long = GaussianMixture.fit(data, num_components=2, max_iterations=100, seed=3)
        assert long.log_likelihood(data).mean() >= short.log_likelihood(data).mean() - 1e-9


class TestGmmClassifier:
    def test_classifies_blobs(self, rng):
        a, b = _two_blob_data(rng)
        samples = np.vstack([a, b])
        labels = ["a"] * len(a) + ["b"] * len(b)
        classifier = GmmClassifier.fit(samples, labels, num_components=1)
        test_a = rng.normal([0.0, 0.0], 0.3, size=(20, 2))
        test_b = rng.normal([4.0, 4.0], 0.3, size=(20, 2))
        assert classifier.predict(test_a) == ["a"] * 20
        assert classifier.predict(test_b) == ["b"] * 20

    def test_score_margin_sign(self, rng):
        a, b = _two_blob_data(rng)
        classifier = GmmClassifier.fit(
            np.vstack([a, b]), ["a"] * len(a) + ["b"] * len(b), num_components=1
        )
        margins = classifier.score_margin(np.array([[0.0, 0.0], [4.0, 4.0]]), "a")
        assert margins[0] > 0
        assert margins[1] < 0

    def test_unknown_class_raises(self, rng):
        a, b = _two_blob_data(rng)
        classifier = GmmClassifier.fit(
            np.vstack([a, b]), ["a"] * len(a) + ["b"] * len(b)
        )
        with pytest.raises(AudioError):
            classifier.score_margin(a[:2], "nope")

    def test_mismatched_lengths_raise(self):
        with pytest.raises(AudioError):
            GmmClassifier.fit(np.zeros((3, 2)), ["a", "b"])

    def test_empty_classifier_raises(self):
        with pytest.raises(AudioError):
            GmmClassifier().predict(np.zeros((1, 2)))
