"""Tests for BIC-based speaker diarization."""

import pytest

from repro.audio.diarization import Diarization, diarize_shots
from repro.audio.speaker import SpeakerAnalyzer, default_speech_classifier
from repro.audio.synthesis import VOICE_BANK, synthesize_ambient, synthesize_speech
from repro.audio.waveform import Waveform
from repro.errors import AudioError


@pytest.fixture(scope="module")
def analyzer():
    return SpeakerAnalyzer(classifier=default_speech_classifier())


def _dialog_track(pattern, seconds=3.0):
    """Audio of alternating speakers; 'a'/'b' letters, '.' = ambience."""
    voices = {"a": VOICE_BANK["dr_adams"], "b": VOICE_BANK["dr_baker"]}
    parts = []
    for i, letter in enumerate(pattern):
        if letter == ".":
            parts.append(synthesize_ambient(seconds, seed=i))
        else:
            parts.append(synthesize_speech(voices[letter], seconds, seed=i))
    return Waveform.concatenate(parts)


def _analyses(analyzer, track, count, seconds=3.0):
    return [
        analyzer.analyze_shot(track, i, i * seconds, (i + 1) * seconds)
        for i in range(count)
    ]


class TestDiarizeShots:
    def test_alternating_dialog(self, analyzer):
        track = _dialog_track("abab")
        analyses = _analyses(analyzer, track, 4)
        result = diarize_shots(analyses, analyzer)
        assert result.num_speakers == 2
        assert result.labels[0] == result.labels[2]
        assert result.labels[1] == result.labels[3]
        assert result.labels[0] != result.labels[1]

    def test_recurring_speakers(self, analyzer):
        track = _dialog_track("aba")
        analyses = _analyses(analyzer, track, 3)
        result = diarize_shots(analyses, analyzer)
        recurring = result.recurring_speakers()
        assert result.labels[0] in recurring
        assert result.labels[1] not in recurring

    def test_monologue(self, analyzer):
        track = _dialog_track("aaa")
        analyses = _analyses(analyzer, track, 3)
        result = diarize_shots(analyses, analyzer)
        assert result.num_speakers == 1
        assert result.shots_of_speaker(0) == [0, 1, 2]

    def test_ambient_shots_unlabelled(self, analyzer):
        track = _dialog_track("a.b")
        analyses = _analyses(analyzer, track, 3)
        result = diarize_shots(analyses, analyzer)
        assert 1 in result.unlabelled
        assert 1 not in result.labels

    def test_empty_input(self, analyzer):
        result = diarize_shots([], analyzer)
        assert result.num_speakers == 0
        assert result.labels == {}

    def test_max_gap_limits_links(self, analyzer):
        # Same speaker in shots 0 and 3 with others between; a gap limit
        # of 1 prevents the long-range link.
        track = _dialog_track("abba")
        analyses = _analyses(analyzer, track, 4)
        unlimited = diarize_shots(analyses, analyzer)
        limited = diarize_shots(analyses, analyzer, max_gap=1)
        assert unlimited.num_speakers <= limited.num_speakers

    def test_speaker_index_bounds(self, analyzer):
        track = _dialog_track("ab")
        result = diarize_shots(_analyses(analyzer, track, 2), analyzer)
        with pytest.raises(AudioError):
            result.shots_of_speaker(result.num_speakers)


class TestAgainstGroundTruth:
    def test_demo_video_diarization(self, analyzer, demo_video, demo_result):
        """Labels must be consistent with the scripted speakers."""
        analyses = list(demo_result.audio.values())
        result = diarize_shots(analyses, analyzer)

        truth = demo_video.truth
        # Map each detected shot to the scripted speaker by midpoint.
        def scripted_speaker(shot_id):
            shot = next(s for s in demo_result.structure.shots if s.shot_id == shot_id)
            mid = (shot.start + shot.stop) // 2
            for span in truth.shots:
                if span.contains(mid):
                    return span.speaker
            return None

        by_label: dict[int, set] = {}
        for shot_id, label in result.labels.items():
            speaker = scripted_speaker(shot_id)
            if speaker is not None:
                by_label.setdefault(label, set()).add(speaker)
        # Each diarized cluster maps to exactly one scripted voice.
        assert by_label
        for voices in by_label.values():
            assert len(voices) == 1
