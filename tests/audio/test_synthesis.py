"""Tests for the formant speech synthesiser and non-speech sources."""

import numpy as np
import pytest

from repro.audio.synthesis import (
    VOICE_BANK,
    SpeakerVoice,
    synthesize_ambient,
    synthesize_music,
    synthesize_speech,
)
from repro.errors import AudioError


class TestSpeakerVoice:
    def test_bank_is_distinct(self):
        pitches = [voice.pitch_hz for voice in VOICE_BANK.values()]
        assert len(set(pitches)) == len(pitches)

    def test_validation(self):
        with pytest.raises(AudioError):
            SpeakerVoice(name="x", pitch_hz=0, formants_hz=(500,), bandwidths_hz=(80,))
        with pytest.raises(AudioError):
            SpeakerVoice(name="x", pitch_hz=100, formants_hz=(500,), bandwidths_hz=())
        with pytest.raises(AudioError):
            SpeakerVoice(name="x", pitch_hz=100, formants_hz=(), bandwidths_hz=())


class TestSynthesizeSpeech:
    def test_length_and_level(self):
        wave = synthesize_speech(VOICE_BANK["narrator"], 1.5, level=0.6)
        assert wave.duration == pytest.approx(1.5, abs=0.01)
        assert np.abs(wave.samples).max() == pytest.approx(0.6, abs=0.01)

    def test_deterministic_per_seed(self):
        a = synthesize_speech(VOICE_BANK["dr_adams"], 1.0, seed=5)
        b = synthesize_speech(VOICE_BANK["dr_adams"], 1.0, seed=5)
        assert np.array_equal(a.samples, b.samples)

    def test_different_seeds_differ(self):
        a = synthesize_speech(VOICE_BANK["dr_adams"], 1.0, seed=5)
        b = synthesize_speech(VOICE_BANK["dr_adams"], 1.0, seed=6)
        assert not np.array_equal(a.samples, b.samples)

    def test_pitch_appears_in_spectrum(self):
        voice = VOICE_BANK["dr_baker"]  # 205 Hz
        wave = synthesize_speech(voice, 2.0)
        spectrum = np.abs(np.fft.rfft(wave.samples))
        freqs = np.fft.rfftfreq(len(wave), 1.0 / wave.sample_rate)
        # Strongest low-frequency line should sit near a pitch harmonic.
        band = (freqs > 50) & (freqs < 450)
        peak = freqs[band][np.argmax(spectrum[band])]
        harmonic_offset = min(
            abs(peak - k * voice.pitch_hz) for k in (1, 2)
        )
        assert harmonic_offset < 12.0

    def test_rejects_bad_duration(self):
        with pytest.raises(AudioError):
            synthesize_speech(VOICE_BANK["narrator"], 0.0)


class TestNonSpeech:
    def test_music_is_periodic_not_noisy(self):
        music = synthesize_music(2.0, seed=1)
        # Autocorrelation at small lag stays high for sustained chords.
        x = music.samples - music.samples.mean()
        ac = np.correlate(x, x, "full")[len(x) - 1 :]
        # A chord has a strong periodic peak within one pitch period
        # (220-330 Hz root -> lag 24-36 samples at 8 kHz).
        assert ac[20:40].max() / ac[0] > 0.2

    def test_ambient_level_is_low(self):
        ambient = synthesize_ambient(2.0, seed=1, level=0.15)
        assert np.abs(ambient.samples).max() <= 0.15 + 1e-9

    def test_rejects_bad_duration(self):
        with pytest.raises(AudioError):
            synthesize_music(-1.0)
        with pytest.raises(AudioError):
            synthesize_ambient(0.0)
