"""Tests for the 14 clip-level audio features."""

import numpy as np
import pytest

from repro.audio.features import FEATURE_DIM, FEATURE_NAMES, clip_features
from repro.audio.synthesis import (
    VOICE_BANK,
    synthesize_ambient,
    synthesize_music,
    synthesize_speech,
)
from repro.audio.waveform import Waveform
from repro.errors import AudioError


def _index(name: str) -> int:
    return FEATURE_NAMES.index(name)


class TestClipFeatures:
    def test_dimension(self):
        wave = synthesize_speech(VOICE_BANK["narrator"], 2.0)
        features = clip_features(wave)
        assert features.shape == (FEATURE_DIM,)
        assert len(FEATURE_NAMES) == FEATURE_DIM

    def test_rejects_empty(self):
        with pytest.raises(AudioError):
            clip_features(Waveform(samples=np.zeros(0)))

    def test_rejects_sub_window(self):
        with pytest.raises(AudioError):
            clip_features(Waveform(samples=np.zeros(100)))

    def test_silence_features(self):
        quiet = Waveform.silence(2.0)
        features = clip_features(quiet)
        assert features[_index("volume_mean")] == 0.0
        assert features[_index("non_silence_ratio")] == 0.0

    def test_speech_has_strong_4hz_modulation(self):
        speech = clip_features(synthesize_speech(VOICE_BANK["narrator"], 2.0))
        music = clip_features(synthesize_music(2.0))
        idx = _index("four_hz_modulation")
        assert speech[idx] > music[idx]

    def test_speech_has_pitch(self):
        speech = clip_features(synthesize_speech(VOICE_BANK["dr_baker"], 2.0))
        ambient = clip_features(synthesize_ambient(2.0))
        idx = _index("pitch_strength")
        assert speech[idx] > ambient[idx]

    def test_music_volume_steadier_than_speech(self):
        speech = clip_features(synthesize_speech(VOICE_BANK["narrator"], 2.0))
        music = clip_features(synthesize_music(2.0))
        idx = _index("volume_std")
        assert music[idx] < speech[idx]

    def test_features_finite(self):
        for maker in (
            lambda: synthesize_speech(VOICE_BANK["patient_chen"], 2.0),
            lambda: synthesize_music(2.0),
            lambda: synthesize_ambient(2.0),
        ):
            features = clip_features(maker())
            assert np.all(np.isfinite(features))
