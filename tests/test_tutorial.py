"""The tutorial must stay executable.

Extracts every python block from docs/TUTORIAL.md and runs them in
order in one namespace — documentation that breaks with the code fails
the build.
"""

from __future__ import annotations

import re
from pathlib import Path

TUTORIAL = Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


def test_tutorial_snippets_run(capsys):
    source = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", source, re.S)
    assert len(blocks) >= 6
    code = "\n".join(blocks)
    exec(compile(code, str(TUTORIAL), "exec"), {})  # noqa: S102 - docs test
    out = capsys.readouterr().out
    assert "shots" in out
