"""Shared net fixtures: one corpus, served sharded and unsharded.

Workers run in-process (daemon threads over real localhost sockets) so
the equivalence and degradation tests pay no subprocess spawn cost; the
smoke and the cluster test cover the real-subprocess path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.coordinator import CoordinatorConfig, ShardedQueryService
from repro.net.protocol import ShardEndpoint
from repro.net.shard import build_shards
from repro.net.worker import ShardWorker
from repro.obs.registry import MetricsRegistry
from repro.serving.server import QueryServer, ServerConfig
from repro.storage.lazy import SQLVideoDatabase
from repro.storage.sqlcatalog import save_database
from repro.storage.synthetic import build_synthetic_database


@pytest.fixture(scope="module")
def net_db():
    """The in-RAM corpus every sharded answer is compared against."""
    return build_synthetic_database(
        videos=36, shots_per_video=6, scenes_per_video=3, seed=11
    )


@pytest.fixture(scope="module")
def single_dir(tmp_path_factory, net_db):
    """The unsharded stored form of the corpus."""
    db_dir = tmp_path_factory.mktemp("net-single")
    save_database(net_db, db_dir)
    return db_dir


@pytest.fixture(scope="module")
def reference(single_dir):
    """The single-process QueryServer the merge must match bit for bit."""
    database = SQLVideoDatabase.open(single_dir)
    server = QueryServer(
        database=database, config=ServerConfig(workers=2)
    ).start()
    yield server
    server.stop()
    database.close()


class NetHarness:
    """One sharded deployment: spec + in-process workers + coordinator."""

    def __init__(self, net_db, root, num_shards, **config_kwargs):
        self.spec = build_shards(net_db, root, num_shards)
        # Each in-process worker gets a private registry — subprocess
        # workers get this isolation for free, and the merged /metrics
        # tests need per-shard counters to stay distinguishable.
        self.workers = [
            ShardWorker(
                self.spec.shard_dir(root, info.shard_id),
                registry=MetricsRegistry(),
            ).start()
            for info in self.spec.shards
        ]
        self.endpoints = [
            ShardEndpoint(info.shard_id, "127.0.0.1", worker.port)
            for info, worker in zip(self.spec.shards, self.workers)
        ]
        self.service = ShardedQueryService(
            self.spec,
            self.endpoints,
            config=CoordinatorConfig(**config_kwargs),
        )

    def close(self):
        self.service.close()
        for worker in self.workers:
            worker.stop()
        for endpoint in self.endpoints:
            endpoint.close()


@pytest.fixture(scope="module")
def make_harness(tmp_path_factory, net_db):
    """Factory building (and tearing down) sharded deployments."""
    created = []

    def _make(num_shards: int, **config_kwargs) -> NetHarness:
        root = tmp_path_factory.mktemp(f"net-shards{num_shards}")
        harness = NetHarness(net_db, root, num_shards, **config_kwargs)
        created.append(harness)
        return harness

    yield _make
    for harness in created:
        harness.close()


@pytest.fixture(scope="module")
def probes(net_db):
    """Corpus-near probes (bucket hits) plus unseen ones (fallbacks)."""
    entries = net_db.flat_index.entries
    rng = np.random.default_rng(42)
    shape = entries[0].features.shape
    near = [
        entries[int(rng.integers(0, len(entries)))].features
        + rng.normal(0.0, 0.01, shape)
        for _ in range(6)
    ]
    unseen = [rng.random(shape) for _ in range(3)]
    return near + unseen
