"""Wire faults against live shard RPCs: retries, hedging, degradation.

Each test arms a seeded :class:`~repro.resilience.faults.FaultPlan` at
the ``net.*`` fault points and checks the coordinator's contract: a
transient fault is absorbed by the retry loop (answers bit-identical to
the single-process reference, retry counter charged), an exhausted
budget degrades honestly (``shards_missing`` set, never cached), and a
full outage raises the typed :class:`NoShardAnsweredError` — after one
fresh query-level re-execution.
"""

from __future__ import annotations

import pytest

from repro.errors import NoShardAnsweredError, ServingError
from repro.obs.registry import MetricsRegistry
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serving.server import QueryRequest
from tests.net.test_equivalence import keys


def _counter_total(registry: MetricsRegistry, name: str) -> float:
    for family in registry.families():
        if family.name == name:
            return sum(child.value for _, child in family.samples())
    return 0.0


def _retries(service) -> float:
    return _counter_total(service._metrics.registry, "net_rpc_retries_total")


def _hedges(service) -> float:
    return _counter_total(service._metrics.registry, "net_rpc_hedges_total")


class TestTransientFaultsAreAbsorbed:
    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(
                "net.frame_corrupt", kind="corruption", every_nth=1, limit=2
            ),
            FaultSpec("net.frame_truncated", every_nth=1, limit=2),
            FaultSpec("net.conn_reset", every_nth=1, limit=2),
            FaultSpec("net.connect_refused", every_nth=1, limit=2),
        ],
        ids=["corrupt", "truncated", "reset", "refused"],
    )
    def test_each_fault_kind_retries_to_bit_identical(
        self, make_harness, reference, probes, spec
    ):
        harness = make_harness(2, rpc_retries=3)
        request = QueryRequest(kind="shot", features=probes[0], k=10)
        expected = reference.query(request)
        # Drop pooled connections so connect-time faults have a connect
        # to fire at; the other kinds are indifferent to a fresh pool.
        for endpoint in harness.endpoints:
            endpoint.close()
        before = _retries(harness.service)
        with inject(FaultPlan([spec], seed=3)) as plan:
            result = harness.service.query(request)
        assert plan.fired() == 2, "both budgeted faults should have fired"
        assert keys(result) == keys(expected)
        assert result.comparisons == expected.comparisons
        assert not result.shards_missing and not result.degraded
        assert _retries(harness.service) > before

    def test_corruption_is_detected_not_decoded(
        self, make_harness, reference, probes
    ):
        # A flipped payload must surface as a checksum failure (then be
        # retried), never as a successfully parsed wrong answer.
        harness = make_harness(2, rpc_retries=3)
        request = QueryRequest(kind="scene", features=probes[1], k=10)
        expected = reference.query(request)
        plan = FaultPlan(
            [
                FaultSpec(
                    "net.frame_corrupt",
                    kind="corruption",
                    probability=0.25,
                )
            ],
            seed=5,
        )
        with inject(plan):
            for _ in range(6):
                result = harness.service.query(request)
                assert keys(result) == keys(expected)
                assert not result.shards_missing


class TestRetryExhaustion:
    def test_dead_shard_degrades_honestly_and_is_never_cached(
        self, make_harness, probes
    ):
        harness = make_harness(2, rpc_retries=2, breaker_threshold=100)
        harness.workers[0].stop()
        request = QueryRequest(kind="shot", features=probes[2], k=10)
        first = harness.service.query(request)
        assert first.shards_missing == (0,)
        assert first.degraded
        # Degraded answers never enter the cache: the repeat is computed
        # fresh so a recovered shard is reflected immediately.
        second = harness.service.query(request)
        assert second.shards_missing == (0,)
        assert not second.cache_hit

    def test_full_outage_raises_typed_error(self, make_harness, probes):
        harness = make_harness(2, rpc_retries=1, breaker_threshold=100)
        for worker in harness.workers:
            worker.stop()
        with pytest.raises(NoShardAnsweredError, match="no shard responded"):
            harness.service.query(
                QueryRequest(kind="shot_flat", features=probes[3], k=10)
            )

    def test_no_shard_answered_is_a_serving_error(self):
        # Gateways map ServingError to HTTP; the new type must stay
        # inside that contract.
        assert issubclass(NoShardAnsweredError, ServingError)


class TestHedging:
    def test_slow_shard_is_hedged_and_bit_identical(
        self, make_harness, reference, probes
    ):
        harness = make_harness(2, hedge_after_ms=30.0, rpc_retries=2)
        request = QueryRequest(kind="shot", features=probes[4], k=10)
        expected = reference.query(request)
        before = _hedges(harness.service)
        plan = FaultPlan(
            [
                FaultSpec(
                    "net.slow_shard", kind="latency", delay=0.25, limit=2
                )
            ],
            seed=7,
        )
        with inject(plan):
            result = harness.service.query(request)
        assert plan.fired() >= 1
        assert keys(result) == keys(expected)
        assert result.comparisons == expected.comparisons
        assert not result.shards_missing
        assert _hedges(harness.service) > before

    def test_hedging_disarmed_by_default(self, make_harness):
        harness = make_harness(1)
        assert harness.service.config.hedge_after_ms is None
        assert harness.service._hedge_pool is None
