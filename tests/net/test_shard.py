"""Shard layout: partitioning, the manifest, global ordinals."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import StorageError
from repro.net.shard import (
    GLOBAL_ORDS_NAME,
    MANIFEST_NAME,
    ShardSpec,
    build_shards,
    load_manifest,
    shard_of,
)
from repro.storage.lazy import SQLVideoDatabase
from repro.storage.synthetic import build_synthetic_database


@pytest.fixture(scope="module")
def shard_root(tmp_path_factory, net_db):
    root = tmp_path_factory.mktemp("layout")
    spec = build_shards(net_db, root, 3)
    return root, spec


class TestPartitioning:
    def test_shard_of_is_deterministic_and_in_range(self):
        for title in ("video-000", "video-001", "über-video"):
            first = shard_of(title, 5)
            assert first == shard_of(title, 5)
            assert 0 <= first < 5

    def test_every_video_lands_on_exactly_one_shard(self, shard_root, net_db):
        _, spec = shard_root
        placed = [title for info in spec.shards for title in info.titles]
        assert sorted(placed) == sorted(net_db.videos)
        for info in spec.shards:
            assert all(
                shard_of(title, spec.num_shards) == info.shard_id
                for title in info.titles
            )

    def test_counts_add_up(self, shard_root, net_db):
        _, spec = shard_root
        assert sum(i.entry_count for i in spec.shards) == spec.entry_count
        assert sum(i.video_count for i in spec.shards) == spec.video_count
        assert spec.entry_count == len(net_db.flat_index.entries)

    def test_too_many_shards_is_refused(self, tmp_path):
        tiny = build_synthetic_database(
            videos=2, shots_per_video=4, scenes_per_video=2, seed=1
        )
        with pytest.raises(StorageError, match="fewer shards"):
            build_shards(tiny, tmp_path / "t", 64)


class TestManifest:
    def test_round_trips_through_json(self, shard_root):
        _, spec = shard_root
        clone = ShardSpec.from_json(
            json.loads(json.dumps(spec.to_json()))
        )
        assert clone.num_shards == spec.num_shards
        assert clone.shards == spec.shards
        assert [leaf.name for leaf in clone.leaves] == [
            leaf.name for leaf in spec.leaves
        ]
        for mine, theirs in zip(spec.leaves, clone.leaves):
            assert np.array_equal(mine.centers, theirs.centers)
            assert np.array_equal(mine.dims, theirs.dims)

    def test_load_manifest_reads_what_build_saved(self, shard_root):
        root, spec = shard_root
        loaded = load_manifest(root)
        assert loaded.shards == spec.shards
        assert loaded.version == spec.version

    def test_missing_or_garbage_manifest_is_typed(self, tmp_path):
        with pytest.raises(StorageError, match="cannot load"):
            load_manifest(tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(StorageError, match="cannot load"):
            load_manifest(tmp_path)
        (tmp_path / MANIFEST_NAME).write_text('{"version": 1}')
        with pytest.raises(StorageError, match="malformed shard manifest"):
            load_manifest(tmp_path)


class TestShardDirectories:
    def test_each_shard_is_a_complete_database(self, shard_root):
        root, spec = shard_root
        for info in spec.shards:
            database = SQLVideoDatabase.open(spec.shard_dir(root, info.shard_id))
            try:
                assert sorted(database.videos) == sorted(info.titles)
                assert len(database.flat_index.entries) == info.entry_count
            finally:
                database.close()

    def test_global_ords_map_back_to_corpus_entries(self, shard_root, net_db):
        root, spec = shard_root
        corpus = net_db.flat_index.entries
        seen: set[int] = set()
        for info in spec.shards:
            ords = np.load(spec.shard_dir(root, info.shard_id) / GLOBAL_ORDS_NAME)
            assert len(ords) == info.entry_count
            database = SQLVideoDatabase.open(spec.shard_dir(root, info.shard_id))
            try:
                for local, entry in enumerate(database.flat_index.entries):
                    source = corpus[int(ords[local])]
                    assert (entry.video_title, entry.shot_id) == (
                        source.video_title,
                        source.shot_id,
                    )
                    assert np.array_equal(entry.features, source.features)
            finally:
                database.close()
            seen.update(int(o) for o in ords)
        assert seen == set(range(len(corpus)))

    def test_manifest_leaves_carry_full_corpus_routing(self, shard_root, net_db):
        _, spec = shard_root
        # Routing metadata in the manifest must describe the *whole*
        # corpus, not any one shard — that is what makes every shard's
        # descent identical to the unsharded one.
        leaf_names = {leaf.name for leaf in spec.leaves}
        assert leaf_names  # corpus has populated leaves
        for leaf in spec.leaves:
            assert leaf.centers.ndim == 2
            assert leaf.dims.ndim == 1
