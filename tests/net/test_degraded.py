"""Graceful degradation: shard loss, circuit breakers, recovery.

Killing a shard must yield flagged partial answers — never errors —
and the service must return to full-strength, bit-identical answers
once the shard is back, without being restarted itself.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import ServingError
from repro.net.worker import ShardWorker
from repro.serving.server import QueryRequest


@pytest.fixture()
def pair(make_harness):
    """A 2-shard harness with a fast breaker (fresh per test)."""
    return make_harness(2, breaker_threshold=2, breaker_reset=0.2)


def fresh_probe(harness, seed):
    rng = np.random.default_rng(seed)
    shape = harness.service.sample_features(1)[0].shape
    return rng.random(shape)


def keys(result):
    return [
        (hit.entry.video_title, hit.entry.shot_id, hit.score)
        for hit in result.hits
    ]


class TestShardLoss:
    def test_lost_shard_degrades_instead_of_failing(self, pair):
        victim = 0
        pair.workers[victim].stop()
        result = pair.service.query(
            QueryRequest(kind="shot", features=fresh_probe(pair, 1), k=10)
        )
        assert result.degraded
        assert victim in result.shards_missing
        assert result.hits  # the surviving shard still answers

    def test_surviving_hits_are_the_survivors_subset(self, pair, reference):
        victim, survivor = 0, 1
        survivor_titles = set(pair.spec.shards[survivor].titles)
        pair.workers[victim].stop()
        probe = fresh_probe(pair, 2)
        partial = pair.service.query(
            QueryRequest(kind="shot_flat", features=probe, k=1000)
        )
        full = reference.query(
            QueryRequest(kind="shot_flat", features=probe, k=1000)
        )
        expected = [
            key for key in keys(full) if key[0] in survivor_titles
        ]
        assert keys(partial) == expected

    def test_degraded_answers_are_not_cached(self, pair, reference):
        victim = 0
        probe = fresh_probe(pair, 3)
        request = QueryRequest(kind="shot", features=probe, k=10)
        pair.workers[victim].stop()
        partial = pair.service.query(request)
        assert partial.shards_missing
        self._revive(pair, victim)
        healed = self._query_until_full(pair, request)
        # A cached degraded answer would keep reporting partial hits
        # after recovery; instead the healed answer matches the
        # single-process reference exactly.
        assert keys(healed) == keys(reference.query(request))

    def test_breaker_open_skips_dead_shard_without_waiting(self, pair):
        victim = 0
        pair.workers[victim].stop()
        for seed in range(4, 8):  # trip the breaker past its threshold
            pair.service.query(
                QueryRequest(kind="shot", features=fresh_probe(pair, seed), k=5)
            )
        started = time.perf_counter()
        result = pair.service.query(
            QueryRequest(kind="shot", features=fresh_probe(pair, 99), k=5)
        )
        elapsed = time.perf_counter() - started
        assert victim in result.shards_missing
        assert elapsed < 1.0  # no connect timeout on the open breaker

    def test_all_shards_down_is_a_typed_error(self, pair):
        probe = fresh_probe(pair, 9)
        for worker in pair.workers:
            worker.stop()
        with pytest.raises(ServingError, match="no shard responded"):
            pair.service.query(QueryRequest(kind="shot", features=probe, k=5))

    def test_health_report_degrades_then_downs(self, pair):
        pair.workers[0].stop()
        report = pair.service.health_report()
        assert report.live and report.degraded
        assert report.exit_code == 1
        pair.workers[1].stop()
        report = pair.service.health_report()
        assert not report.ready
        assert report.exit_code == 2

    def test_recovery_restores_bit_identical_answers(self, pair, reference):
        victim = 0
        pair.workers[victim].stop()
        probe = fresh_probe(pair, 10)
        request = QueryRequest(kind="shot", features=probe, k=10)
        assert pair.service.query(request).shards_missing
        self._revive(pair, victim)
        healed = self._query_until_full(pair, request)
        full = reference.query(request)
        assert keys(healed) == keys(full)
        assert healed.comparisons == full.comparisons

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _revive(pair, shard_id):
        """Restart the shard's worker on a new port (what the cluster
        watchdog does for subprocess workers) and re-point its endpoint."""
        root = pair.spec.shard_dir(
            pair.workers[shard_id]._shard_dir.parent, shard_id
        )
        worker = ShardWorker(root).start()
        pair.workers[shard_id] = worker
        pair.endpoints[shard_id].reset("127.0.0.1", worker.port)

    @staticmethod
    def _query_until_full(pair, request, timeout=5.0):
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            result = pair.service.query(request)
            if not result.shards_missing:
                return result
            time.sleep(0.05)
        raise AssertionError("service never recovered full answers")
