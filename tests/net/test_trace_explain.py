"""Distributed tracing, per-query explain, slow log and access log."""

from __future__ import annotations

import pytest

from repro.net.gateway import GatewayConfig, HttpGateway
from repro.obs import Tracer, get_slow_log, install_tracer, render_spans
from repro.serving.server import QueryRequest

from .test_gateway import post_query, request


@pytest.fixture()
def tracer():
    """A fresh process tracer, restored after the test."""
    fresh = Tracer()
    previous = install_tracer(fresh)
    yield fresh
    install_tracer(previous)


def _by_name(spans):
    grouped: dict[str, list] = {}
    for span in spans:
        grouped.setdefault(span.name, []).append(span)
    return grouped


def _features(probes, i):
    return [float(x) for x in probes[i]]


class TestStitchedFlame:
    def test_three_shard_query_builds_one_flame_tree(
        self, make_harness, probes, tracer
    ):
        harness = make_harness(3)
        result = harness.service.query(
            QueryRequest(kind="shot", features=probes[0], k=5)
        )
        assert result.hits
        spans = tracer.spans()
        grouped = _by_name(spans)

        (net_query,) = grouped["net.query"]
        trace_id = net_query.attributes["trace_id"]
        assert len(trace_id) == 16
        int(trace_id, 16)

        # One RPC span per shard, parented under the probe phase.
        rpcs = grouped["rpc.probe"]
        assert {sp.attributes["shard"] for sp in rpcs} == {0, 1, 2}
        (probe_phase,) = grouped["coord.probe"]
        assert all(sp.parent_id == probe_phase.span_id for sp in rpcs)
        assert probe_phase.parent_id == net_query.span_id
        assert "coord.merge" in grouped  # sibling coordinator phases

        # Each worker's spans came back over the wire with the same
        # trace id and got re-parented under that shard's RPC span.
        workers = grouped["worker.probe"]
        assert {sp.attributes["shard"] for sp in workers} == {0, 1, 2}
        rpc_by_shard = {sp.attributes["shard"]: sp.span_id for sp in rpcs}
        for span in workers:
            assert span.attributes["trace_id"] == trace_id
            assert span.parent_id == rpc_by_shard[span.attributes["shard"]]
        assert "worker.leaf" in grouped  # per-leaf detail survived the trip

        ids = [sp.span_id for sp in spans]
        assert len(ids) == len(set(ids))

        rendered = render_spans(spans)
        for name in ("net.query", "coord.probe", "rpc.probe", "worker.probe"):
            assert name in rendered

    def test_gateway_header_threads_one_trace_id_end_to_end(
        self, make_harness, probes, tracer
    ):
        harness = make_harness(2)
        supplied = "feedface00000001"
        with HttpGateway(harness.service, GatewayConfig()) as gateway:
            status, body, headers = post_query(
                gateway.url,
                {"kind": "shot", "features": _features(probes, 1), "k": 5},
                headers={"X-Trace-Id": supplied},
            )
        assert status == 200 and body["hits"]
        assert headers["X-Trace-Id"] == supplied

        grouped = _by_name(tracer.spans())
        (gateway_span,) = grouped["gateway.request"]
        assert gateway_span.attributes["trace_id"] == supplied
        assert gateway_span.attributes["path"] == "/query"
        (net_query,) = grouped["net.query"]
        assert net_query.attributes["trace_id"] == supplied
        # The coordinator runs on an offloaded thread yet still nests
        # under the gateway's reserved span.
        assert net_query.parent_id == gateway_span.span_id
        for span in grouped["worker.probe"]:
            assert span.attributes["trace_id"] == supplied

    def test_missing_header_mints_an_id_even_untraced(self, reference, probes):
        # No tracer installed: the id is still generated and echoed
        # (on every response, whatever the status).
        with HttpGateway(reference, GatewayConfig()) as gateway:
            _, _, headers = request(f"{gateway.url}/health")
        trace_id = headers["X-Trace-Id"]
        assert len(trace_id) == 16
        int(trace_id, 16)


class TestExplain:
    def test_explain_result_is_bit_identical_to_plain(
        self, make_harness, probes
    ):
        harness = make_harness(2)
        plain = harness.service.query(
            QueryRequest(kind="shot", features=probes[2], k=5)
        )
        explained = harness.service.query(
            QueryRequest(kind="shot", features=probes[2], k=5, explain=True)
        )
        assert plain.explain is None
        assert explained.explain is not None
        assert [
            (h.entry.video_title, h.entry.shot_id, h.score)
            for h in explained.hits
        ] == [(h.entry.video_title, h.entry.shot_id, h.score) for h in plain.hits]
        assert explained.generation == plain.generation
        assert explained.comparisons == plain.comparisons
        # The plain query warmed the cache; explain still re-executed.
        assert explained.cache_hit is False
        assert explained.explain["cache"]["would_hit"] is True
        assert explained.explain["cache"]["disposition"] == "bypassed (explain)"

    def test_explain_never_populates_the_cache(self, make_harness, probes):
        harness = make_harness(1)
        req = QueryRequest(kind="shot", features=probes[4], k=5, explain=True)
        first = harness.service.query(req)
        second = harness.service.query(req)
        assert first.cache_hit is False and second.cache_hit is False
        assert second.explain["cache"]["would_hit"] is False
        assert second.explain["cache"]["entries"] == 0

    def test_sharded_explain_payload_shape(self, make_harness, probes):
        harness = make_harness(3)
        result = harness.service.query(
            QueryRequest(kind="shot", features=probes[5], k=5, explain=True)
        )
        explain = result.explain
        assert explain["backend"] == "sharded"
        assert explain["kind"] == "shot"
        assert explain["phases_ms"]["total"] > 0.0
        assert {op["shard"] for op in explain["shards"]} == {0, 1, 2}
        assert all(op["ok"] for op in explain["shards"])
        assert explain["breakers"] == {
            "0": "closed", "1": "closed", "2": "closed"
        }
        assert explain["counts"]["comparisons"] == result.comparisons
        assert explain["shards_missing"] == []
        assert explain["degraded"] is False
        assert set(explain["ann"]) == {"nprobe", "rerank_k"}

    def test_single_backend_explain_payload_shape(self, reference, probes):
        result = reference.query(
            QueryRequest(kind="shot", features=probes[3], k=4, explain=True)
        )
        explain = result.explain
        assert explain["backend"] == "single"
        assert set(explain["phases_ms"]) == {"scope", "search", "total"}
        assert set(explain["breakers"]) == {"result-cache", "snapshot"}
        assert explain["counts"]["comparisons"] == result.comparisons
        assert explain["cache"]["disposition"] == "bypassed (explain)"

    def test_http_explain_opt_in(self, make_harness, probes):
        harness = make_harness(2)
        payload = {"kind": "shot", "features": _features(probes, 6), "k": 5}
        with HttpGateway(harness.service, GatewayConfig()) as gateway:
            status, plain, _ = post_query(gateway.url, payload)
            status2, explained, _ = post_query(
                gateway.url, dict(payload, explain=True)
            )
        assert status == 200 and status2 == 200
        assert "explain" not in plain
        assert explained["explain"]["backend"] == "sharded"
        assert explained["hits"] == plain["hits"]


class TestSlowLogSurface:
    def test_both_backends_feed_the_global_log(
        self, make_harness, reference, probes
    ):
        log = get_slow_log()
        log.clear()
        harness = make_harness(1)
        harness.service.query(QueryRequest(kind="shot", features=probes[7], k=3))
        reference.query(QueryRequest(kind="shot", features=probes[7], k=3))
        backends = {entry.backend for entry in log.entries()}
        assert {"sharded", "single"} <= backends

    def test_debug_slow_endpoint_serves_entries(self, make_harness, probes):
        log = get_slow_log()
        log.clear()
        harness = make_harness(1)
        with HttpGateway(harness.service, GatewayConfig()) as gateway:
            post_query(
                gateway.url,
                {"kind": "shot", "features": _features(probes, 8), "k": 3},
            )
            status, body, _ = request(f"{gateway.url}/debug/slow")
        assert status == 200
        assert body["recorded"] >= 1
        assert body["capacity"] == log.capacity
        entry = body["slow"][0]
        assert entry["backend"] == "sharded"
        assert entry["elapsed_ms"] > 0.0
        assert entry["kind"] == "shot"


class TestAccessLog:
    def test_sink_receives_structured_records(self, make_harness, probes):
        records: list[dict] = []
        harness = make_harness(2)
        gateway = HttpGateway(
            harness.service,
            GatewayConfig(access_log=True),
            access_sink=records.append,
        )
        with gateway:
            post_query(
                gateway.url,
                {"kind": "shot", "features": _features(probes, 0), "k": 5},
                headers={"X-Trace-Id": "access00access00"},
            )
            request(f"{gateway.url}/health")
        query_record = next(r for r in records if r["path"] == "/query")
        assert query_record["method"] == "POST"
        assert query_record["status"] == 200
        assert query_record["fanout"] == 2  # one per shard
        assert query_record["trace_id"] == "access00access00"
        assert query_record["latency_ms"] >= 0.0
        assert "ts" in query_record
        assert any(r["path"] == "/health" for r in records)

    def test_disabled_by_default(self, make_harness, probes):
        records: list[dict] = []
        harness = make_harness(1)
        gateway = HttpGateway(
            harness.service, GatewayConfig(), access_sink=records.append
        )
        with gateway:
            request(f"{gateway.url}/health")
        assert records == []
