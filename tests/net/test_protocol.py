"""Wire protocol: framing, checksums, the array codec, pooled endpoints."""

from __future__ import annotations

import socket
import threading
import time
import zlib

import numpy as np
import pytest

from repro.errors import (
    DeadlineExpiredError,
    FrameCorruptError,
    RpcTransportError,
    ServingError,
)
from repro.net.protocol import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    ShardEndpoint,
    pack_array,
    recv_frame,
    send_frame,
    unpack_array,
)


def _raw_frame(payload: bytes, checksum: int | None = None) -> bytes:
    """A hand-built frame; ``checksum=None`` computes the correct CRC."""
    if checksum is None:
        checksum = zlib.crc32(payload)
    return FRAME_HEADER.pack(len(payload), checksum) + payload


class TestArrayCodec:
    def test_roundtrip_is_bit_identical(self, rng):
        array = rng.normal(0.0, 1.0, 57)
        decoded = unpack_array(pack_array(array))
        assert decoded.dtype == np.float64
        assert decoded.tobytes() == array.astype(np.float64).tobytes()

    def test_roundtrip_preserves_shape(self, rng):
        array = rng.random((3, 4))
        assert unpack_array(pack_array(array)).shape == (3, 4)

    def test_special_values_survive(self):
        array = np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 1e-308])
        decoded = unpack_array(pack_array(array))
        assert decoded.tobytes() == array.tobytes()

    def test_malformed_payload_is_typed(self):
        with pytest.raises(ServingError, match="malformed packed array"):
            unpack_array({"shape": [2], "b64": "!!not base64!!"})
        with pytest.raises(ServingError):
            unpack_array({"shape": [2]})


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"op": "ping", "vec": pack_array(np.arange(4.0))}
            send_frame(a, message)
            received = recv_frame(b)
            assert received["op"] == "ping"
            assert np.array_equal(
                unpack_array(received["vec"]), np.arange(4.0)
            )
        finally:
            a.close()
            b.close()

    def test_oversized_length_prefix_is_refused(self):
        a, b = socket.socketpair()
        try:
            a.sendall(FRAME_HEADER.pack(MAX_FRAME_BYTES + 1, 0))
            with pytest.raises(ServingError, match="exceeds protocol limit"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_garbage_payload_is_typed(self):
        a, b = socket.socketpair()
        try:
            a.sendall(_raw_frame(b"\xff\xfe not json"))
            with pytest.raises(ServingError, match="malformed frame"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_is_typed(self):
        a, b = socket.socketpair()
        try:
            a.sendall(FRAME_HEADER.pack(100, 0) + b"short")
            a.close()
            with pytest.raises(RpcTransportError, match="closed mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_non_object_frame_is_refused(self):
        a, b = socket.socketpair()
        try:
            a.sendall(_raw_frame(b"[1, 2, 3]"))
            with pytest.raises(ServingError, match="JSON object"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_checksum_mismatch_is_detected_before_decode(self):
        a, b = socket.socketpair()
        try:
            # A frame whose payload was flipped in flight: the CRC no
            # longer matches, and the (invalid) JSON is never decoded.
            payload = b'{"op": "ping"}'
            bad = bytearray(payload)
            bad[3] ^= 0xFF
            a.sendall(_raw_frame(bytes(bad), checksum=zlib.crc32(payload)))
            with pytest.raises(FrameCorruptError, match="checksum mismatch"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_corruption_error_is_transient_and_typed(self):
        # The retry loop keys off RpcTransportError; a corrupt frame
        # must be retry-safe, not a terminal ServingError.
        assert issubclass(FrameCorruptError, RpcTransportError)
        assert issubclass(RpcTransportError, ServingError)


class _EchoServer:
    """Answers every frame with ``{"ok": true, "echo": <request>}``."""

    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn):
        with conn:
            while True:
                try:
                    request = recv_frame(conn)
                    send_frame(conn, {"ok": True, "echo": request})
                except (ServingError, OSError):
                    return

    def close(self):
        self._listener.close()


@pytest.fixture()
def echo():
    server = _EchoServer()
    yield server
    server.close()


class TestShardEndpoint:
    def test_call_roundtrips(self, echo):
        endpoint = ShardEndpoint(0, "127.0.0.1", echo.port)
        try:
            response = endpoint.call({"op": "ping", "n": 7})
            assert response["echo"]["n"] == 7
        finally:
            endpoint.close()

    def test_connections_are_pooled_and_reused(self, echo):
        endpoint = ShardEndpoint(0, "127.0.0.1", echo.port, pool_size=2)
        try:
            for _ in range(8):
                endpoint.call({"op": "ping"})
            assert len(endpoint._idle) <= 2
        finally:
            endpoint.close()

    def test_reset_repoints_at_new_address(self, echo):
        endpoint = ShardEndpoint(0, "127.0.0.1", 1)  # nothing listens here
        with pytest.raises(ServingError):
            endpoint.call({"op": "ping"})
        endpoint.reset("127.0.0.1", echo.port)
        try:
            assert endpoint.call({"op": "ping"})["ok"] is True
            assert endpoint.address == ("127.0.0.1", echo.port)
        finally:
            endpoint.close()

    def test_pool_size_must_be_positive(self):
        with pytest.raises(ServingError):
            ShardEndpoint(0, "127.0.0.1", 1234, pool_size=0)

    def test_expired_deadline_raises_typed_error_up_front(self, echo):
        endpoint = ShardEndpoint(0, "127.0.0.1", echo.port)
        try:
            with pytest.raises(DeadlineExpiredError, match="before shard call"):
                endpoint.call({"op": "ping"}, time.perf_counter() - 0.01)
            # Terminal by contract: the retry loop must not spin on it.
            assert not issubclass(DeadlineExpiredError, RpcTransportError)
        finally:
            endpoint.close()
