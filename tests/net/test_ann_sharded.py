"""The ANN tier under sharding: per-shard quantizers, exact merges.

Every shard trains its own coarse quantizer over its own rows, yet
``nprobe`` covering every cell with an unbounded re-rank tail must
reproduce the unsharded *exact* answer bit for bit at any shard count —
candidate scores are kernel-exact, the true bucket sizes drive the
global fallback decision, and the merge contract is unchanged.
"""

from __future__ import annotations

import pytest

from repro.database.access import User
from repro.errors import ServingError
from repro.serving.server import QueryRequest

from .test_equivalence import keys

NPROBE_ALL = 1_000_000

ANN_SHARD_COUNTS = (1, 3)


@pytest.fixture(scope="module", params=ANN_SHARD_COUNTS)
def ann_harness(request, make_harness):
    return make_harness(request.param)


class TestBitIdenticalAtFullProbe:
    def test_nprobe_all_matches_exact_reference(
        self, ann_harness, reference, probes
    ):
        for probe in probes:
            exact = reference.query(QueryRequest(kind="shot", features=probe))
            ann = ann_harness.service.query(
                QueryRequest(kind="shot", features=probe, nprobe=NPROBE_ALL)
            )
            assert keys(ann) == keys(exact)
            assert ann.comparisons == exact.comparisons
            # No cell pruned and no re-rank cap: the uint8 scan never
            # ran, and every merged candidate went through the exact tail.
            assert ann.approx_comparisons == 0
            assert ann.reranked > 0
            assert not ann.degraded and not ann.shards_missing

    def test_k_sweep_matches(self, ann_harness, reference, probes):
        for k in (1, 3, 1000):
            exact = reference.query(
                QueryRequest(kind="shot", features=probes[0], k=k)
            )
            ann = ann_harness.service.query(
                QueryRequest(
                    kind="shot", features=probes[0], k=k, nprobe=NPROBE_ALL
                )
            )
            assert keys(ann) == keys(exact)

    def test_scoped_users_match(self, ann_harness, reference, probes):
        for user in (
            User(name="public", clearance=0),
            User(name="surgeon", clearance=3),
        ):
            for probe in probes[:3]:
                exact = reference.query(
                    QueryRequest(kind="shot", features=probe, user=user)
                )
                ann = ann_harness.service.query(
                    QueryRequest(
                        kind="shot",
                        features=probe,
                        user=user,
                        nprobe=NPROBE_ALL,
                    )
                )
                assert keys(ann) == keys(exact)
                assert ann.comparisons == exact.comparisons


class TestPrunedSharded:
    def test_pruning_reports_approx_work(self, ann_harness, probes):
        # An unseen probe misses every bucket, so the global fallback
        # scans all rows per leaf — a finite re-rank tail then forces
        # the quantized scan to run on every shard.
        unseen = probes[-1]
        result = ann_harness.service.query(
            QueryRequest(kind="shot", features=unseen, nprobe=8, rerank_k=2)
        )
        assert result.hits
        assert result.approx_comparisons > 0
        assert result.reranked > 0
        assert not result.degraded

    def test_pruned_query_is_deterministic(self, ann_harness, probes):
        request = QueryRequest(
            kind="shot", features=probes[1], nprobe=2, rerank_k=4
        )
        first = ann_harness.service.query(request)
        ann_harness.service.cache.clear()
        second = ann_harness.service.query(request)
        assert keys(first) == keys(second)
        assert first.approx_comparisons == second.approx_comparisons


class TestCoordinatorKnobs:
    def test_config_default_folds_and_shares_cache(self, make_harness, probes):
        harness = make_harness(2, ann_nprobe=4, ann_rerank_k=8)
        implicit = harness.service.query(
            QueryRequest(kind="shot", features=probes[2])
        )
        assert implicit.reranked > 0  # the configured default applied
        explicit = harness.service.query(
            QueryRequest(kind="shot", features=probes[2], nprobe=4, rerank_k=8)
        )
        assert explicit.cache_hit  # same resolved identity
        assert keys(explicit) == keys(implicit)

    def test_validation_matches_single_process(self, ann_harness, probes):
        with pytest.raises(ServingError, match="nprobe"):
            ann_harness.service.query(
                QueryRequest(kind="shot", features=probes[0], nprobe=0)
            )
        with pytest.raises(ServingError, match="shot"):
            ann_harness.service.query(
                QueryRequest(kind="scene", features=probes[0], nprobe=2)
            )
        with pytest.raises(ServingError, match="ann_nprobe"):
            from repro.net.coordinator import CoordinatorConfig

            CoordinatorConfig(ann_nprobe=0)

    def test_exact_and_ann_have_distinct_cache_identities(
        self, ann_harness, probes
    ):
        ann_harness.service.cache.clear()
        exact = ann_harness.service.query(
            QueryRequest(kind="shot", features=probes[3])
        )
        ann = ann_harness.service.query(
            QueryRequest(kind="shot", features=probes[3], nprobe=NPROBE_ALL)
        )
        # The second query computed fresh: the knobs are part of the key.
        assert not ann.cache_hit
        assert keys(ann) == keys(exact)
