"""RPC batching contract: one framed request per shard per phase.

The coordinator must never fan out per *leaf* — a beam-2 descent
visiting several leaves still costs exactly one ``probe`` round-trip
per shard, plus (only when some leaf's bucket is empty on every shard)
one ``scan`` round-trip per shard.  The ANN knobs ride inside the same
frames.  These tests wrap the live endpoints and count.
"""

from __future__ import annotations

import contextlib

from repro.serving.server import QueryRequest


@contextlib.contextmanager
def record_calls(service):
    """Wrap every endpoint's ``call``; yields [(shard_id, op, request)]."""
    calls = []
    originals = {}
    for shard_id, endpoint in service._endpoints.items():
        originals[shard_id] = endpoint.call

        def wrapped(request, deadline=None, _orig=originals[shard_id],
                    _sid=shard_id, **kwargs):
            calls.append((_sid, request.get("op"), dict(request)))
            return _orig(request, deadline, **kwargs)

        endpoint.call = wrapped
    try:
        yield calls
    finally:
        for shard_id, endpoint in service._endpoints.items():
            endpoint.call = originals[shard_id]


def feature_ops(calls):
    """The probe/scan subset of a call record, as (shard_id, op) pairs."""
    return [(sid, op) for sid, op, _req in calls if op in ("probe", "scan")]


def test_bucket_hit_costs_one_probe_per_shard(make_harness, probes):
    harness = make_harness(3)
    with record_calls(harness.service) as calls:
        result = harness.service.query(
            QueryRequest(kind="shot", features=probes[0])
        )
    assert result.hits
    ops = feature_ops(calls)
    probe_shards = sorted(sid for sid, op in ops if op == "probe")
    assert probe_shards == [0, 1, 2]  # exactly once per shard
    # The beam-2 descent visits multiple leaves, yet they all travel in
    # the same frame.
    probe_requests = [req for _sid, op, req in calls if op == "probe"]
    assert all(len(req["leaves"]) >= 1 for req in probe_requests)
    leaf_counts = {len(req["leaves"]) for req in probe_requests}
    assert len(leaf_counts) == 1  # every shard got the identical leaf list


def test_empty_buckets_add_one_scan_per_shard(make_harness, probes):
    harness = make_harness(3)
    unseen = probes[-1]  # misses every bucket: global fallback fires
    with record_calls(harness.service) as calls:
        result = harness.service.query(
            QueryRequest(kind="shot", features=unseen)
        )
    assert result.hits
    ops = feature_ops(calls)
    assert sorted(sid for sid, op in ops if op == "probe") == [0, 1, 2]
    assert sorted(sid for sid, op in ops if op == "scan") == [0, 1, 2]
    assert len(ops) == 6  # one round-trip per shard per phase, no more


def test_ann_query_stays_one_round_trip_per_shard_per_phase(
    make_harness, probes
):
    harness = make_harness(2)
    with record_calls(harness.service) as calls:
        harness.service.query(
            QueryRequest(
                kind="shot", features=probes[0], nprobe=4, rerank_k=8
            )
        )
    ops = feature_ops(calls)
    assert sorted(sid for sid, op in ops if op == "probe") == [0, 1]
    # The knobs travel inside the probe frame itself, not as extra RPCs.
    for _sid, op, req in calls:
        if op == "probe":
            assert req["nprobe"] == 4
            assert req["rerank_k"] == 8
    scan_ops = [pair for pair in ops if pair[1] == "scan"]
    assert len(scan_ops) in (0, 2)  # absent, or once per shard
