"""HTTP gateway: endpoint contracts, protocol edges, auth scoping."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.database.access import User
from repro.net.gateway import GatewayConfig, HttpGateway, _Backend, probe_health
from repro.obs import get_registry
from repro.obs.export import validate_prometheus_text
from repro.serving.server import QueryRequest, ServingResult

TOKENS = {
    "tok-public": User(name="public", clearance=0),
    "tok-surgeon": User(name="surgeon", clearance=3),
}


def request(url, method="GET", body=None, headers=None):
    """(status, parsed-or-raw body, headers) of one HTTP exchange."""
    req = urllib.request.Request(
        url, data=body, headers=headers or {}, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=10.0) as response:
            raw = response.read()
            status, resp_headers = response.status, response.headers
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        status, resp_headers = exc.code, exc.headers
    try:
        parsed = json.loads(raw)
    except (UnicodeDecodeError, json.JSONDecodeError):
        parsed = raw
    return status, parsed, resp_headers


def post_query(base, payload, headers=None):
    merged = {"Content-Type": "application/json"}
    merged.update(headers or {})
    return request(
        f"{base}/query", "POST", json.dumps(payload).encode("utf-8"), merged
    )


@pytest.fixture(scope="module")
def gw(reference):
    gateway = HttpGateway(
        reference, GatewayConfig(tokens=dict(TOKENS), max_body=256 * 1024)
    ).start()
    yield gateway
    gateway.stop()


class TestEndpoints:
    def test_query_returns_ranked_hits(self, gw, reference, probes):
        features = [float(x) for x in probes[0]]
        status, body, _ = post_query(
            gw.url, {"kind": "shot", "features": features, "k": 5}
        )
        direct = reference.query(
            QueryRequest(kind="shot", features=probes[0], k=5)
        )
        assert status == 200
        assert [
            (hit["video_title"], hit["shot_id"], hit["score"])
            for hit in body["hits"]
        ] == [
            (h.entry.video_title, h.entry.shot_id, h.score)
            for h in direct.hits
        ]
        assert body["kind"] == "shot"
        assert not body["degraded"] and not body["shards_missing"]

    def test_scene_search_forces_scene_kind(self, gw, probes):
        features = [float(x) for x in probes[0]]
        status, body, _ = request(
            f"{gw.url}/scene_search",
            "POST",
            json.dumps({"features": features, "k": 3}).encode(),
            {"Content-Type": "application/json"},
        )
        assert status == 200
        assert body["kind"] == "scene"
        assert all("event" in hit for hit in body["hits"])

    def test_skim_lists_scenes(self, gw, reference):
        title = next(iter(reference.manager.current().records))
        status, body, _ = request(f"{gw.url}/skim/{title}")
        assert status == 200
        assert body["video_id"] == title
        assert len(body["scenes"]) == body["scene_count"]

    def test_health_and_metrics(self, gw):
        status, body, _ = request(f"{gw.url}/health")
        assert status == 200 and body["status"] == "ok"
        status, text, _ = request(f"{gw.url}/metrics")
        assert status == 200
        validate_prometheus_text(text.decode("utf-8"))

    def test_workload_pool(self, gw):
        status, body, _ = request(f"{gw.url}/workload?n=5")
        assert status == 200
        assert 1 <= len(body["features"]) <= 5

    def test_probe_health_helper(self, gw):
        report = probe_health(gw.url)
        assert report.live and report.ready
        assert report.exit_code == 0

    def test_probe_health_reports_down_on_dead_server(self):
        report = probe_health("http://127.0.0.1:9")  # discard port
        assert not report.live and not report.ready
        assert report.exit_code == 2


class TestProtocolEdges:
    def test_malformed_json_is_400(self, gw):
        status, body, _ = request(
            f"{gw.url}/query", "POST", b"{nope",
            {"Content-Type": "application/json"},
        )
        assert status == 400 and "error" in body

    def test_unknown_endpoint_is_404(self, gw):
        assert request(f"{gw.url}/nope")[0] == 404

    def test_wrong_method_is_405(self, gw):
        assert request(f"{gw.url}/query", "GET")[0] == 405
        assert request(f"{gw.url}/health", "POST", b"{}")[0] == 405

    def test_expired_deadline_on_arrival_is_504(self, gw, probes):
        status, body, _ = post_query(
            gw.url,
            {"kind": "shot", "features": [float(x) for x in probes[0]]},
            {"X-Deadline-Ms": "0"},
        )
        assert status == 504
        assert "deadline" in body["error"]

    def test_oversized_body_is_413(self, gw):
        status, body, _ = post_query(
            gw.url, {"kind": "shot", "features": [0.0] * 200_000}
        )
        assert status == 413
        assert "exceeds" in body["error"]

    def test_unknown_video_is_404(self, gw):
        assert request(f"{gw.url}/skim/no-such-video")[0] == 404

    def test_missing_features_is_400(self, gw):
        status, body, _ = post_query(gw.url, {"kind": "shot", "k": 5})
        assert status == 400

    def test_unknown_kind_is_400(self, gw):
        status, _, _ = post_query(gw.url, {"kind": "sideways", "features": [0.0]})
        assert status == 400


class TestAuthScoping:
    def test_unknown_token_is_401(self, gw, probes):
        status, _, _ = post_query(
            gw.url,
            {"kind": "shot", "features": [float(x) for x in probes[0]]},
            {"X-Auth-Token": "intruder"},
        )
        assert status == 401

    def test_tokens_resolve_to_scoped_answers(self, gw, reference, probes):
        """Results per token match the same user's direct query — and a
        low-clearance token can never see a cached high-clearance answer."""
        features = [float(x) for x in probes[0]]
        for token in ("tok-surgeon", "tok-public", "tok-surgeon"):
            status, body, _ = post_query(
                gw.url,
                {"kind": "shot", "features": features, "k": 10},
                {"X-Auth-Token": token},
            )
            direct = reference.query(
                QueryRequest(
                    kind="shot", features=probes[0], k=10, user=TOKENS[token]
                )
            )
            assert status == 200
            assert [
                (hit["video_title"], hit["shot_id"]) for hit in body["hits"]
            ] == [(h.entry.video_title, h.entry.shot_id) for h in direct.hits]


class _StallBackend(_Backend):
    """Backend whose queries park until released (saturation tests)."""

    def __init__(self):
        self.release = threading.Event()

    def query(self, request):
        self.release.wait(10.0)
        return ServingResult(
            kind=request.kind,
            hits=(),
            generation=1,
            cache_hit=False,
            elapsed_seconds=0.0,
        )

    def metrics_registry(self):
        return get_registry()


class TestSaturation:
    def test_admission_overflow_is_503_with_retry_after(self):
        backend = _StallBackend()
        gateway = HttpGateway(
            backend, GatewayConfig(max_inflight=1)
        ).start()
        try:
            first = {}

            def occupy():
                first["response"] = post_query(
                    gateway.url, {"kind": "shot", "features": [0.0]}
                )

            thread = threading.Thread(target=occupy, daemon=True)
            thread.start()
            deadline = threading.Event()
            # Wait until the stalled request holds the only slot.
            for _ in range(100):
                if gateway._inflight._value == 0:  # noqa: SLF001
                    break
                deadline.wait(0.02)
            status, body, headers = post_query(
                gateway.url, {"kind": "shot", "features": [0.0]}
            )
            assert status == 503
            assert headers.get("Retry-After") is not None
            assert "capacity" in body["error"]
            backend.release.set()
            thread.join(timeout=5.0)
            assert first["response"][0] == 200
        finally:
            backend.release.set()
            gateway.stop()


class _FakeEndpoint:
    def __init__(self, shard_id):
        self.shard_id = shard_id


class _FakeSpec:
    num_shards = 2


class _FakeCluster:
    """Duck-typed stand-in recording restart calls (no subprocesses)."""

    def __init__(self):
        from repro.net.cluster import RestartReport

        self.spec = _FakeSpec()
        self.endpoints = [_FakeEndpoint(0), _FakeEndpoint(1)]
        self.restarts = 0
        self.calls = []
        self._report = RestartReport

    def alive(self):
        return [0, 1]

    def respawn_counts(self):
        return {0: 0, 1: 3}

    def restart(self, shard_id, graceful=True, drain_timeout=10.0):
        self.calls.append(("restart", shard_id, graceful))
        self.restarts += 1
        return self._report(shard_id=shard_id, graceful=graceful, seconds=0.1)

    def restart_rolling(self, graceful=True, drain_timeout=10.0):
        self.calls.append(("rolling", graceful))
        self.restarts += self.spec.num_shards
        return [
            self._report(shard_id=sid, graceful=graceful, seconds=0.1)
            for sid in (0, 1)
        ]


class TestAdminRestart:
    def test_restart_is_404_without_a_cluster(self, gw):
        status, body, _ = request(
            f"{gw.url}/admin/restart", "POST", b"{}",
            {"Content-Type": "application/json"},
        )
        assert status == 404
        assert "no shard cluster" in body["error"]

    @pytest.fixture()
    def clustered(self, reference):
        cluster = _FakeCluster()
        gateway = HttpGateway(
            reference, GatewayConfig(), cluster=cluster
        ).start()
        yield gateway, cluster
        gateway.stop()

    def test_single_shard_restart(self, clustered):
        gateway, cluster = clustered
        from repro.net.gateway import request_restart

        result = request_restart(gateway.url, shard=1, graceful=True)
        assert result["rolling"] is False
        assert result["restarted"] == [
            {"shard": 1, "graceful": True, "seconds": 0.1}
        ]
        assert cluster.calls == [("restart", 1, True)]

    def test_rolling_restart(self, clustered):
        gateway, cluster = clustered
        from repro.net.gateway import request_restart

        result = request_restart(gateway.url, rolling=True, graceful=False)
        assert result["rolling"] is True
        assert [r["shard"] for r in result["restarted"]] == [0, 1]
        assert cluster.calls == [("rolling", False)]

    def test_rolling_and_shard_are_mutually_exclusive(self, clustered):
        gateway, _ = clustered
        status, body, _ = request(
            f"{gateway.url}/admin/restart", "POST",
            json.dumps({"rolling": True, "shard": 0}).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        assert status == 400
        assert "mutually exclusive" in body["error"]

    def test_neither_rolling_nor_shard_is_400(self, clustered):
        gateway, _ = clustered
        from repro.errors import ServingError
        from repro.net.gateway import request_restart

        with pytest.raises(ServingError, match="HTTP 400"):
            request_restart(gateway.url)

    def test_health_reports_cluster_fleet(self, clustered):
        gateway, _ = clustered
        status, body, _ = request(f"{gateway.url}/health")
        assert status == 200
        checks = {c["name"]: c for c in body["checks"]}
        assert checks["cluster"]["ok"] is True
        assert "2/2 workers alive" in checks["cluster"]["detail"]
        assert "shard 1: 3 respawns" in checks["cluster"]["detail"]
