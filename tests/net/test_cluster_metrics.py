"""Cluster-wide /metrics: per-shard scrape, merge, degradation, respawn."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.net.cluster import ShardCluster
from repro.net.coordinator import CoordinatorConfig, ShardedQueryService
from repro.net.gateway import GatewayConfig, HttpGateway
from repro.net.shard import build_shards
from repro.obs.export import render_prometheus_dumps, validate_prometheus_text
from repro.serving.server import QueryRequest

from .test_gateway import request


def _query(service, probes):
    result = service.query(QueryRequest(kind="shot", features=probes[0], k=5))
    assert result.hits
    return result


@pytest.mark.parametrize("num_shards", [1, 2, 3])
def test_merged_metrics_labels_every_shard(make_harness, probes, num_shards):
    harness = make_harness(num_shards)
    _query(harness.service, probes)
    with HttpGateway(harness.service, GatewayConfig()) as gateway:
        status, raw, headers = request(f"{gateway.url}/metrics")
    assert status == 200
    text = raw.decode("utf-8")
    assert validate_prometheus_text(text) == []
    for shard_id in range(num_shards):
        # Every worker served the probe fan-out at least once.
        assert f'net_worker_requests_total{{shard="{shard_id}",op="probe"}}' in text
        assert f'net_shard_up{{shard="{shard_id}"}} 1.0' in text
    assert f'shard="{num_shards}"' not in text
    # Coordinator-side families ride along unlabelled.
    assert 'serving_events_total{event="queries_total"}' in text
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")


def test_worker_histograms_merge_per_shard(make_harness, probes):
    harness = make_harness(2)
    _query(harness.service, probes)
    text = render_prometheus_dumps(harness.service.metrics_dumps())
    assert validate_prometheus_text(text) == []
    for shard_id in (0, 1):
        assert f'net_worker_op_seconds_count{{shard="{shard_id}",op="probe"}}' in text
        assert f'net_worker_op_seconds_bucket{{shard="{shard_id}",op="probe",le=' in text


def test_dead_shard_degrades_scrape_without_failing(make_harness, probes):
    harness = make_harness(2)
    _query(harness.service, probes)
    harness.workers[1].stop()
    with HttpGateway(harness.service, GatewayConfig()) as gateway:
        status, raw, _ = request(f"{gateway.url}/metrics")
    assert status == 200
    text = raw.decode("utf-8")
    assert validate_prometheus_text(text) == []
    assert 'net_shard_up{shard="0"} 1.0' in text
    assert 'net_shard_up{shard="1"} 0.0' in text
    # The live shard's families are still there; the dead one's are not.
    assert 'net_worker_requests_total{shard="0",op="probe"}' in text
    assert 'net_worker_requests_total{shard="1",op="probe"}' not in text


def test_scrape_reports_missing_shards(make_harness, probes):
    harness = make_harness(3)
    _query(harness.service, probes)
    dumps, missing = harness.service.scrape_metrics()
    assert missing == set()
    assert sorted(dumps) == [0, 1, 2]
    for dump in dumps.values():
        names = {fam["name"] for fam in dump["families"]}
        assert "net_worker_requests_total" in names
    harness.workers[0].stop()
    dumps, missing = harness.service.scrape_metrics()
    assert 0 in missing
    assert 0 not in dumps


def test_metrics_survive_worker_respawn(tmp_path_factory, net_db, probes):
    root = tmp_path_factory.mktemp("metrics-respawn")
    spec = build_shards(net_db, root, 2)
    with ShardCluster(root, spec=spec, watchdog_interval=None) as cluster:
        service = ShardedQueryService(
            spec,
            cluster.endpoints,
            config=CoordinatorConfig(breaker_threshold=100),
        )
        try:
            _query(service, probes)
            text = render_prometheus_dumps(service.metrics_dumps())
            assert 'net_worker_requests_total{shard="0",op="probe"}' in text
            assert 'net_shard_up{shard="1"} 1.0' in text

            cluster.kill(0)
            assert cluster.poke() == 1  # respawned on a fresh port

            deadline = time.perf_counter() + 20.0
            while time.perf_counter() < deadline:
                dumps, missing = service.scrape_metrics()
                if 0 in dumps:
                    break
                time.sleep(0.1)
            text = render_prometheus_dumps(service.metrics_dumps())
            assert validate_prometheus_text(text) == []
            # The replacement worker scrapes cleanly under the same label
            # (its counters restart from zero — a new process).
            assert 'net_shard_up{shard="0"} 1.0' in text
            assert 'net_shard_up{shard="1"} 1.0' in text
        finally:
            service.close()
