"""Scatter-gather must match the single-process server bit for bit.

The acceptance bar for the sharded path: identical ids, scores,
tie-break order and ``QueryStats`` aggregation at every shard count,
for every query kind, scoped or not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.database.access import User
from repro.serving.server import QueryRequest
from repro.types import EventKind

SHARD_COUNTS = (1, 2, 3)


def keys(result):
    """(identity, score) tuples — the full ranked order, scores exact."""
    out = []
    for hit in result.hits:
        entry = getattr(hit, "entry", hit)
        out.append(
            (
                entry.video_title,
                getattr(entry, "shot_id", getattr(entry, "scene_id", None)),
                getattr(hit, "score", None),
            )
        )
    return out


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def harness(request, make_harness):
    return make_harness(request.param)


class TestBitIdentical:
    @pytest.mark.parametrize("kind", ["shot", "shot_flat", "scene"])
    def test_ranked_results_match(self, harness, reference, probes, kind):
        for probe in probes:
            mine = harness.service.query(
                QueryRequest(kind=kind, features=probe, k=10)
            )
            theirs = reference.query(
                QueryRequest(kind=kind, features=probe, k=10)
            )
            assert keys(mine) == keys(theirs)
            assert mine.comparisons == theirs.comparisons
            assert not mine.degraded and not mine.shards_missing

    def test_shot_features_ship_bit_exact(self, harness, reference, probes):
        mine = harness.service.query(
            QueryRequest(kind="shot", features=probes[0], k=5)
        )
        theirs = reference.query(
            QueryRequest(kind="shot", features=probes[0], k=5)
        )
        for a, b in zip(mine.hits, theirs.hits):
            assert a.entry.features.tobytes() == b.entry.features.tobytes()

    def test_events_match(self, harness, reference):
        for event in EventKind.known_kinds():
            mine = harness.service.query(QueryRequest(kind="event", event=event))
            theirs = reference.query(QueryRequest(kind="event", event=event))
            assert keys(mine) == keys(theirs)

    def test_small_and_large_k_match(self, harness, reference, probes):
        for k in (1, 3, 1000):
            mine = harness.service.query(
                QueryRequest(kind="shot", features=probes[0], k=k)
            )
            theirs = reference.query(
                QueryRequest(kind="shot", features=probes[0], k=k)
            )
            assert keys(mine) == keys(theirs)

    def test_scoped_users_match(self, harness, reference, probes):
        users = [
            User(name="public", clearance=0),
            User(name="staff", clearance=1),
            User(name="surgeon", clearance=3),
        ]
        for user in users:
            for kind in ("shot", "scene"):
                for probe in probes[:4]:
                    mine = harness.service.query(
                        QueryRequest(kind=kind, features=probe, k=10, user=user)
                    )
                    theirs = reference.query(
                        QueryRequest(kind=kind, features=probe, k=10, user=user)
                    )
                    assert keys(mine) == keys(theirs)
                    assert mine.comparisons == theirs.comparisons


class TestServiceSemantics:
    def test_cache_hits_mark_and_match(self, harness, probes):
        request = QueryRequest(kind="shot", features=probes[1], k=7)
        cold = harness.service.query(request)
        warm = harness.service.query(request)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert keys(cold) == keys(warm)

    def test_validation_matches_single_process(self, harness, reference):
        from repro.errors import ServingError

        bad = QueryRequest(kind="nonsense", features=np.zeros(4))
        with pytest.raises(ServingError):
            reference.query(bad)
        with pytest.raises(ServingError):
            harness.service.query(bad)

    def test_health_is_ok_with_all_shards_up(self, harness):
        report = harness.service.health_report()
        assert report.live and report.ready and not report.degraded
        assert report.exit_code == 0

    def test_sample_features_covers_every_shard(self, harness):
        if harness.spec.num_shards == 1:
            pytest.skip("interleaving needs >= 2 shards")
        pool = harness.service.sample_features(8)
        assert len(pool) >= harness.spec.num_shards
        for vector in pool:
            assert vector.dtype == np.float64

    def test_refresh_bumps_generation_and_stays_identical(
        self, harness, reference, probes
    ):
        before = harness.service.query(
            QueryRequest(kind="shot", features=probes[2], k=5)
        )
        generation = harness.service.refresh()
        after = harness.service.query(
            QueryRequest(kind="shot", features=probes[2], k=5)
        )
        assert generation == after.generation > before.generation
        assert not after.cache_hit  # old generation was evicted
        assert keys(after) == keys(before)
