"""Subprocess workers: spawn, kill, watchdog respawn."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.net.cluster import ShardCluster
from repro.net.coordinator import CoordinatorConfig, ShardedQueryService
from repro.net.shard import build_shards
from repro.serving.server import QueryRequest


@pytest.fixture(scope="module")
def live_cluster(tmp_path_factory, net_db):
    root = tmp_path_factory.mktemp("cluster")
    spec = build_shards(net_db, root, 2)
    cluster = ShardCluster(root, spec=spec, watchdog_interval=0.1).start()
    service = ShardedQueryService(
        spec,
        cluster.endpoints,
        config=CoordinatorConfig(breaker_threshold=2, breaker_reset=0.2),
    )
    yield cluster, service
    service.close()
    cluster.stop()


class TestCluster:
    def test_spawns_one_worker_per_shard(self, live_cluster):
        cluster, service = live_cluster
        assert cluster.running
        assert sorted(cluster.alive()) == [0, 1]
        report = service.health_report()
        assert report.exit_code == 0

    def test_kill_then_watchdog_respawn(self, live_cluster, net_db):
        cluster, service = live_cluster
        rng = np.random.default_rng(5)
        shape = net_db.flat_index.entries[0].features.shape
        before = cluster.respawns
        cluster.kill(0)

        saw_degraded = False
        deadline = time.perf_counter() + 20.0
        while time.perf_counter() < deadline:
            result = service.query(
                QueryRequest(kind="shot", features=rng.random(shape), k=5)
            )
            if 0 in result.shards_missing:
                saw_degraded = True
            if saw_degraded and not result.shards_missing:
                break
            time.sleep(0.05)
        assert saw_degraded, "killed shard never surfaced in shards_missing"
        assert not result.shards_missing, "watchdog never restored the shard"
        assert cluster.respawns > before
        assert sorted(cluster.alive()) == [0, 1]
