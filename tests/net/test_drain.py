"""Graceful drain and rolling restart: worker, cluster, coordinator.

The drain wire op is the graceful half of a rolling restart: a draining
worker finishes in-flight requests, refuses new work with a typed
response (which the coordinator retries — on the replacement, once the
cluster respawns it), and exits cleanly.  ``ShardCluster.restart`` /
``restart_rolling`` wrap that into one-shard-at-a-time cycles that the
watchdog must not fight.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import RpcTransportError, ServingError, WorkerDrainingError
from repro.net.cluster import RestartReport, ShardCluster
from repro.net.coordinator import CoordinatorConfig, ShardedQueryService
from repro.net.protocol import ShardEndpoint
from repro.net.shard import build_shards
from repro.net.worker import ShardWorker
from repro.obs.registry import MetricsRegistry
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serving.server import QueryRequest


def _swallow(endpoint, request) -> None:
    """Fire one RPC, ignoring its outcome (occupies the worker)."""
    try:
        endpoint.call(request, None)
    except ServingError:
        pass


class TestWorkerDrain:
    def test_drain_refuses_new_work_with_typed_response(
        self, tmp_path, net_db
    ):
        spec = build_shards(net_db, tmp_path, 1)
        worker = ShardWorker(
            spec.shard_dir(tmp_path, 0), registry=MetricsRegistry()
        ).start()
        endpoint = ShardEndpoint(0, "127.0.0.1", worker.port)
        # An idle drained worker tears down immediately, so pin the
        # drain window open with one in-flight request slowed by the
        # latency fault point — live connections stay answerable until
        # it completes.
        slow = FaultPlan(
            [FaultSpec("net.slow_shard", kind="latency", delay=2.0, limit=1)]
        )
        occupier = threading.Thread(
            target=lambda: _swallow(endpoint, {"op": "records"})
        )
        try:
            with inject(slow):
                occupier.start()
                deadline = time.perf_counter() + 5.0
                while not slow.fired() and time.perf_counter() < deadline:
                    time.sleep(0.01)
                assert slow.fired(), "occupier never reached the worker"
                ack = endpoint.call({"op": "drain", "grace": 5.0})
                assert ack["ok"] and ack["draining"]
                # Introspection stays answerable; query work is refused
                # with the typed error the retry loop understands.
                assert endpoint.call({"op": "ping"})["ok"]
                with pytest.raises(WorkerDrainingError):
                    endpoint.call({"op": "records"})
                assert worker.draining
            assert worker.join_drained(timeout=10.0)
        finally:
            occupier.join(timeout=10.0)
            endpoint.close()
            worker.stop()

    def test_drain_is_idempotent(self, tmp_path, net_db):
        spec = build_shards(net_db, tmp_path, 1)
        worker = ShardWorker(
            spec.shard_dir(tmp_path, 0), registry=MetricsRegistry()
        ).start()
        endpoint = ShardEndpoint(0, "127.0.0.1", worker.port)
        try:
            first = endpoint.call({"op": "drain", "grace": 5.0})
            assert first["draining"]
            try:
                second = endpoint.call({"op": "drain", "grace": 5.0})
            except RpcTransportError:
                # With nothing in flight the first drain can finish and
                # tear the worker down before the repeat lands — the
                # second drain finding no worker is equally idempotent.
                pass
            else:
                assert second["draining"]
            assert worker.join_drained(timeout=10.0)
        finally:
            endpoint.close()
            worker.stop()


@pytest.fixture(scope="module")
def restart_cluster(tmp_path_factory, net_db):
    root = tmp_path_factory.mktemp("restart-cluster")
    spec = build_shards(net_db, root, 2)
    cluster = ShardCluster(root, spec=spec, watchdog_interval=0.1).start()
    service = ShardedQueryService(
        spec,
        cluster.endpoints,
        config=CoordinatorConfig(
            rpc_retries=3, breaker_threshold=3, breaker_reset=0.2
        ),
    )
    yield cluster, service
    service.close()
    cluster.stop()


def _pingable(cluster, shard_id, timeout=20.0) -> bool:
    endpoint = next(
        ep for ep in cluster.endpoints if ep.shard_id == shard_id
    )
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        try:
            if endpoint.call({"op": "ping"}).get("ok"):
                return True
        except ServingError:
            time.sleep(0.05)
    return False


class TestClusterRestart:
    def test_graceful_restart_replaces_process_without_watchdog(
        self, restart_cluster
    ):
        cluster, service = restart_cluster
        old_pid = cluster._procs[0].pid
        respawns_before = cluster.respawns
        report = cluster.restart(0, graceful=True, drain_timeout=20.0)
        assert isinstance(report, RestartReport)
        assert report.shard_id == 0
        assert report.graceful
        assert report.seconds > 0
        assert cluster._procs[0].pid != old_pid
        # A deliberate restart counts as a restart, not a crash: the
        # watchdog stays fenced off and spawns no second replacement.
        assert cluster.respawns == respawns_before
        assert cluster.restarts >= 1
        assert _pingable(cluster, 0)

    def test_restart_report_serialises(self, restart_cluster):
        cluster, _ = restart_cluster
        report = cluster.restart(1, graceful=True, drain_timeout=20.0)
        payload = report.to_json()
        assert payload["shard"] == 1
        assert payload["graceful"] is True
        assert payload["seconds"] >= 0
        assert _pingable(cluster, 1)

    def test_unknown_shard_is_refused(self, restart_cluster):
        cluster, _ = restart_cluster
        with pytest.raises(ServingError, match="no running worker"):
            cluster.restart(99)

    def test_rolling_restart_under_light_load(
        self, restart_cluster, net_db
    ):
        cluster, service = restart_cluster
        rng = np.random.default_rng(9)
        shape = net_db.flat_index.entries[0].features.shape
        probe = rng.random(shape)
        stop = threading.Event()
        failures: list[str] = []

        def _client():
            local = np.random.default_rng(10)
            while not stop.is_set():
                try:
                    service.query(
                        QueryRequest(
                            kind="shot", features=local.random(shape), k=5
                        )
                    )
                except Exception as exc:
                    failures.append(f"{type(exc).__name__}: {exc}")

        client = threading.Thread(target=_client)
        client.start()
        try:
            reports = cluster.restart_rolling(drain_timeout=20.0)
        finally:
            stop.set()
            client.join(timeout=10.0)
        assert [r.shard_id for r in reports] == [0, 1]
        assert all(r.graceful for r in reports)
        assert not failures, f"queries failed during the cycle: {failures[:3]}"
        # Full strength again: the next query sees every shard.
        deadline = time.perf_counter() + 20.0
        while time.perf_counter() < deadline:
            result = service.query(
                QueryRequest(kind="shot", features=probe, k=5)
            )
            if not result.shards_missing:
                return
            time.sleep(0.1)
        pytest.fail("cluster never returned to full strength after the cycle")
