"""Shared fixtures: the demo video and its mined artefacts.

Generating and mining video is the expensive part of this suite, so the
demo screenplay is rendered once per session and every mined artefact
(structure, cues, audio, events) is derived from that single run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClassMiner
from repro.video.synthesis import demo_screenplay, generate_video


@pytest.fixture(scope="session")
def demo_video():
    """The rendered demo video (3 content scenes + separators)."""
    return generate_video(demo_screenplay(), seed=0)


@pytest.fixture(scope="session")
def demo_stream(demo_video):
    """Just the stream of the demo video."""
    return demo_video.stream


@pytest.fixture(scope="session")
def demo_truth(demo_video):
    """Ground truth of the demo video."""
    return demo_video.truth


@pytest.fixture(scope="session")
def demo_result(demo_video):
    """Full ClassMiner output (structure + cues + audio + events)."""
    return ClassMiner().mine(demo_video.stream)


@pytest.fixture(scope="session")
def demo_structure(demo_result):
    """Mined content structure of the demo video."""
    return demo_result.structure


@pytest.fixture(scope="session")
def demo_shots(demo_structure):
    """Detected shots of the demo video."""
    return demo_structure.shots


@pytest.fixture()
def rng():
    """Deterministic RNG for individual tests."""
    return np.random.default_rng(1234)
