"""Tests for scene detection by group merging."""

import numpy as np
import pytest

from repro.core.features import Shot
from repro.core.groups import detect_groups
from repro.core.scenes import (
    detect_scenes,
    select_representative_group,
)
from repro.errors import MiningError
from repro.video.frame import blank_frame


def _shot(shot_id: int, spectrum: dict[int, float], length: int = 10) -> Shot:
    histogram = np.zeros(256)
    for bin_index, mass in spectrum.items():
        histogram[bin_index] = mass
    histogram /= histogram.sum()
    return Shot(
        shot_id=shot_id,
        start=shot_id * length,
        stop=(shot_id + 1) * length,
        fps=10.0,
        representative_frame=blank_frame(4, 4),
        histogram=histogram,
        texture=np.full(10, 0.5),
    )


def _location_shots(pattern: str) -> list[Shot]:
    """Letters = locations; same letter -> strongly overlapping spectra."""
    shots = []
    for i, letter in enumerate(pattern):
        base = (20 * (ord(letter) - ord("A"))) % 250
        # Shots of one location share 80% of their mass.
        spectrum = {base: 0.8, base + 1 + (i % 3): 0.2}
        shots.append(_shot(i, spectrum))
    return shots


class TestDetectScenes:
    def test_merges_same_location_groups(self):
        # Two locations; groups inside one location should merge.
        shots = _location_shots("AAAAAA" + "BBBBBB")
        groups, _ = detect_groups(shots)
        result = detect_scenes(groups)
        assert result.scene_count == 2
        assert result.scenes[0].shot_ids == [0, 1, 2, 3, 4, 5]
        assert result.scenes[1].shot_ids == [6, 7, 8, 9, 10, 11]

    def test_small_scenes_eliminated(self):
        shots = _location_shots("AAAAAA" + "X" + "BBBBBB")
        groups, _ = detect_groups(shots)
        result = detect_scenes(groups)
        surviving = {tuple(scene.shot_ids) for scene in result.scenes}
        assert (6,) not in surviving
        assert result.eliminated  # the X unit was dropped

    def test_explicit_merge_threshold(self):
        shots = _location_shots("AAAAAA" + "BBBBBB")
        groups, _ = detect_groups(shots)
        # Impossible threshold: nothing merges; scenes = groups (>=3 shots).
        result = detect_scenes(groups, merge_threshold=2.0)
        assert result.merge_threshold == 2.0

    def test_single_group(self):
        shots = _location_shots("AAAA")
        groups, _ = detect_groups(shots)
        result = detect_scenes(groups[:1])
        assert result.scene_count == 1

    def test_rejects_empty(self):
        with pytest.raises(MiningError):
            detect_scenes([])

    def test_scene_properties(self):
        shots = _location_shots("AAAAAA")
        groups, _ = detect_groups(shots)
        result = detect_scenes(groups)
        scene = result.scenes[0]
        assert scene.shot_count == 6
        assert scene.duration == pytest.approx(6.0)
        assert scene.frame_span == (0, 60)
        assert scene.group_count == len(scene.groups)


class TestRepresentativeGroup:
    def test_single_group(self):
        shots = _location_shots("AAA")
        groups, _ = detect_groups(shots)
        assert select_representative_group(groups[:1]) is groups[0]

    def test_two_groups_prefers_more_shots(self):
        from repro.core.groups import Group

        shots = _location_shots("AAAAA" + "BB")
        big = Group(group_id=0, shots=shots[:5])
        small = Group(group_id=1, shots=shots[5:])
        assert select_representative_group([small, big]) is big

    def test_three_groups_prefers_central(self):
        # Three groups: two locations plus a mixed middle group that is
        # most similar to both on average.
        a = [_shot(0, {0: 0.9, 1: 0.1}), _shot(1, {0: 0.9, 2: 0.1})]
        mixed = [_shot(2, {0: 0.5, 40: 0.5}), _shot(3, {0: 0.5, 40: 0.5})]
        b = [_shot(4, {40: 0.9, 41: 0.1}), _shot(5, {40: 0.9, 42: 0.1})]
        groups, _ = detect_groups(a + mixed + b)
        from repro.core.groups import Group

        built = [
            Group(group_id=0, shots=a),
            Group(group_id=1, shots=mixed),
            Group(group_id=2, shots=b),
        ]
        assert select_representative_group(built).group_id == 1

    def test_empty_raises(self):
        with pytest.raises(MiningError):
            select_representative_group([])


class TestOnDemoVideo:
    def test_scene_count_close_to_truth(self, demo_video, demo_structure):
        truth_content = sum(
            1 for scene in demo_video.truth.scenes if scene.shot_count >= 3
        )
        detected = demo_structure.scene_count
        assert truth_content - 1 <= detected <= truth_content + 2

    def test_scenes_have_representatives(self, demo_structure):
        for scene in demo_structure.scenes:
            assert scene.representative_group in scene.groups
