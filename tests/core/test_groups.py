"""Tests for group detection, classification and representatives."""

import numpy as np
import pytest

from repro.core.features import Shot
from repro.core.groups import (
    GroupKind,
    GroupThresholds,
    classify_group,
    detect_group_boundaries,
    detect_groups,
    select_representative_shot,
    separation_factors,
)
from repro.errors import MiningError
from repro.video.frame import blank_frame


def _shot_with_bin(shot_id: int, bin_index: int, length: int = 10) -> Shot:
    """A shot whose histogram is one spike at ``bin_index``."""
    histogram = np.zeros(256)
    histogram[bin_index] = 1.0
    return Shot(
        shot_id=shot_id,
        start=shot_id * length,
        stop=(shot_id + 1) * length,
        fps=10.0,
        representative_frame=blank_frame(4, 4),
        histogram=histogram,
        texture=np.full(10, 0.5),
    )


def _alternating_shots(pattern: str) -> list[Shot]:
    """Shots from a letter pattern: same letter = same visual content."""
    bins = {letter: 10 * (ord(letter) - ord("A")) for letter in set(pattern)}
    return [_shot_with_bin(i, bins[letter]) for i, letter in enumerate(pattern)]


class TestBoundaryDetection:
    def test_two_blocks_split(self):
        shots = _alternating_shots("AAAABBBB")
        boundaries, _ = detect_group_boundaries(shots)
        assert boundaries == [4]

    def test_alternation_stays_together(self):
        shots = _alternating_shots("ABABABAB")
        boundaries, _ = detect_group_boundaries(shots)
        # Shot 1 is a known edge artifact (no i-2 context yet); the body
        # of the alternation must not be split.
        assert all(b <= 1 for b in boundaries)

    def test_alternating_then_new_location(self):
        shots = _alternating_shots("ABABCCCC")
        boundaries, _ = detect_group_boundaries(shots)
        assert boundaries == [4]

    def test_isolated_separator_shot(self):
        shots = _alternating_shots("AAAXBBB")
        boundaries, _ = detect_group_boundaries(shots)
        assert 3 in boundaries  # X starts its own group
        assert 4 in boundaries  # B resumes after the separator

    def test_rejects_empty(self):
        with pytest.raises(MiningError):
            detect_group_boundaries([])

    def test_explicit_thresholds_respected(self):
        shots = _alternating_shots("AAAABBBB")
        thresholds = GroupThresholds(t1=1e9, t2=-1.0)
        # Impossible thresholds: nothing can be a boundary via step 1,
        # and step 2 never fires because CR > T2 - 0.1 always holds.
        boundaries, used = detect_group_boundaries(shots, thresholds=thresholds)
        assert boundaries == []
        assert used is thresholds


class TestSeparationFactors:
    def test_boundary_spikes(self):
        shots = _alternating_shots("AAAABBBB")
        from repro.core.groups import _side_similarities

        cl, cr = _side_similarities(shots, __import__("repro.core.similarity", fromlist=["SimilarityWeights"]).SimilarityWeights())
        factors = separation_factors(cl, cr)
        assert np.argmax(factors) == 4  # first B


class TestClassification:
    def test_spatial_group(self):
        shots = _alternating_shots("AAAA")
        kind, clusters = classify_group(shots)
        assert kind is GroupKind.SPATIAL
        assert len(clusters) == 1

    def test_temporal_group(self):
        shots = _alternating_shots("ABABAB")
        kind, clusters = classify_group(shots)
        assert kind is GroupKind.TEMPORAL
        assert len(clusters) == 2
        # Clusters respect content: all A shots together.
        ids = sorted(tuple(sorted(s.shot_id for s in c)) for c in clusters)
        assert ids == [(0, 2, 4), (1, 3, 5)]


class TestRepresentativeShot:
    def test_single_shot(self):
        shots = _alternating_shots("A")
        assert select_representative_shot(shots) is shots[0]

    def test_two_shots_prefers_longer(self):
        short = _shot_with_bin(0, 0, length=10)
        long = Shot(
            shot_id=1,
            start=10,
            stop=40,
            fps=10.0,
            representative_frame=blank_frame(4, 4),
            histogram=short.histogram.copy(),
            texture=short.texture.copy(),
        )
        assert select_representative_shot([short, long]) is long

    def test_three_shots_prefers_central(self):
        h_mid = np.zeros(256)
        h_mid[0] = 0.5
        h_mid[10] = 0.5
        shots = [
            _shot_with_bin(0, 0),
            _shot_with_bin(1, 10),
        ]
        middle = Shot(
            shot_id=2,
            start=20,
            stop=30,
            fps=10.0,
            representative_frame=blank_frame(4, 4),
            histogram=h_mid,
            texture=np.full(10, 0.5),
        )
        # The mixed shot is most similar to both others on average.
        assert select_representative_shot(shots + [middle]) is middle

    def test_empty_raises(self):
        with pytest.raises(MiningError):
            select_representative_shot([])


class TestDetectGroups:
    def test_full_pipeline(self):
        shots = _alternating_shots("ABABAB" + "CCCC")
        groups, thresholds = detect_groups(shots)
        # The alternation body forms one temporal group (shot 0 may be
        # split off as a start-of-sequence artifact) and the C block one
        # spatial group.
        assert thresholds.t2 > 0
        assert groups[-1].shot_ids == [6, 7, 8, 9]
        assert not groups[-1].is_temporal
        body = next(g for g in groups if 3 in g.shot_ids)
        assert body.is_temporal
        assert set(body.shot_ids) >= {1, 2, 3, 4, 5}

    def test_representatives_cover_clusters(self):
        shots = _alternating_shots("ABABAB")
        groups, _ = detect_groups(shots)
        body = next(g for g in groups if 3 in g.shot_ids)
        assert len(body.representative_shots) == 2

    def test_group_properties(self):
        shots = _alternating_shots("AAA")
        groups, _ = detect_groups(shots)
        group = groups[0]
        assert group.shot_count == 3
        assert group.duration == pytest.approx(3.0)
        assert group.frame_span == (0, 30)
