"""Tests for shot-boundary detection and shot features."""

import numpy as np
import pytest

from repro.core.features import build_shot, representative_frame_index
from repro.core.shots import (
    boundary_spans,
    detect_boundaries,
    detect_shots,
    shots_from_ground_truth,
)
from repro.errors import MiningError
from repro.video.frame import blank_frame
from repro.video.stream import VideoStream


def _cut_stream(segment_colors, frames_per_segment=12):
    frames = []
    for color in segment_colors:
        frames.extend(blank_frame(16, 20, color) for _ in range(frames_per_segment))
    return VideoStream(frames=frames, fps=10.0)


class TestRepresentativeFrame:
    def test_tenth_frame_for_long_shots(self):
        assert representative_frame_index(0, 30) == 9
        assert representative_frame_index(100, 200) == 109

    def test_middle_for_short_shots(self):
        assert representative_frame_index(0, 6) == 3
        assert representative_frame_index(10, 12) == 11


class TestDetectBoundaries:
    def test_detects_synthetic_cuts(self):
        stream = _cut_stream([(200, 30, 30), (30, 200, 30), (30, 30, 200)])
        result = detect_shots(stream)
        assert result.boundaries == [12, 24]
        assert result.shot_count == 3

    def test_thresholds_align_with_signal(self):
        stream = _cut_stream([(200, 30, 30), (30, 200, 30)])
        result = detect_shots(stream)
        assert result.thresholds.shape == result.differences.shape

    def test_empty_signal(self):
        boundaries, thresholds = detect_boundaries(np.zeros(0))
        assert boundaries == []
        assert thresholds.size == 0

    def test_rejects_tiny_window(self):
        with pytest.raises(MiningError):
            detect_boundaries(np.zeros(10), window=2)

    def test_min_shot_length_merges_near_spikes(self):
        signal = np.zeros(40)
        signal[10] = 0.9
        signal[12] = 0.95  # closer than min_shot_length
        boundaries, _ = detect_boundaries(signal, min_shot_length=5)
        assert boundaries == [13]  # the stronger spike wins

    def test_boundary_near_start_suppressed(self):
        signal = np.zeros(40)
        signal[1] = 0.9
        boundaries, _ = detect_boundaries(signal, min_shot_length=5)
        assert boundaries == []


class TestBoundarySpans:
    def test_spans_tile_frames(self):
        spans = boundary_spans([10, 25], 40)
        assert spans == [(0, 10), (10, 25), (25, 40)]

    def test_no_boundaries(self):
        assert boundary_spans([], 12) == [(0, 12)]

    def test_rejects_non_increasing(self):
        with pytest.raises(MiningError):
            boundary_spans([10, 10], 40)

    def test_rejects_empty_stream(self):
        with pytest.raises(MiningError):
            boundary_spans([], 0)


class TestShotFeatures:
    def test_build_shot_extracts_features(self):
        stream = _cut_stream([(200, 30, 30)])
        shot = build_shot(stream, 0, 0, 12)
        assert shot.histogram.shape == (256,)
        assert shot.texture.shape == (10,)
        assert shot.duration == pytest.approx(1.2)
        assert shot.time_window == (0.0, pytest.approx(1.2))

    def test_build_shot_rejects_overrun(self):
        stream = _cut_stream([(200, 30, 30)])
        with pytest.raises(MiningError):
            build_shot(stream, 0, 0, 99)

    def test_shots_from_ground_truth(self):
        stream = _cut_stream([(200, 30, 30), (30, 200, 30)])
        shots = shots_from_ground_truth(stream, [(0, 12), (12, 24)])
        assert [s.shot_id for s in shots] == [0, 1]
        assert shots[1].start == 12


class TestOnDemoVideo:
    def test_full_recall_on_demo(self, demo_video, demo_structure):
        truth_boundaries = set(demo_video.truth.shot_boundaries())
        detected = set(demo_structure.shot_detection.boundaries)
        assert truth_boundaries <= detected

    def test_few_false_positives(self, demo_video, demo_structure):
        truth_boundaries = set(demo_video.truth.shot_boundaries())
        detected = set(demo_structure.shot_detection.boundaries)
        false_positives = detected - truth_boundaries
        assert len(false_positives) <= max(2, len(truth_boundaries) // 4)
