"""Tests for the end-to-end content-structure miner."""

import pytest

from repro.core.structure import ContentStructure, MiningConfig, mine_content_structure
from repro.errors import MiningError


class TestMineContentStructure:
    def test_hierarchy_levels_are_coarsening(self, demo_structure):
        sizes = demo_structure.level_sizes()
        assert sizes["shots"] >= sizes["groups"] >= sizes["scenes"]
        assert sizes["scenes"] >= sizes["clustered_scenes"]
        assert sizes["clustered_scenes"] >= 1

    def test_groups_partition_shots(self, demo_structure):
        grouped = sorted(
            shot_id for group in demo_structure.groups for shot_id in group.shot_ids
        )
        assert grouped == [shot.shot_id for shot in demo_structure.shots]

    def test_scenes_cover_subset_of_shots(self, demo_structure):
        scene_shots = [
            shot_id for scene in demo_structure.scenes for shot_id in scene.shot_ids
        ]
        assert len(scene_shots) == len(set(scene_shots))
        all_ids = {shot.shot_id for shot in demo_structure.shots}
        assert set(scene_shots) <= all_ids

    def test_crf_matches_definition(self, demo_structure):
        assert demo_structure.compression_rate_factor == pytest.approx(
            demo_structure.scene_count / demo_structure.shot_count
        )

    def test_scene_of_shot(self, demo_structure):
        scene = demo_structure.scenes[0]
        shot_id = scene.shot_ids[0]
        assert demo_structure.scene_of_shot(shot_id) is scene
        # Shots of eliminated scenes map to None.
        scene_shots = {
            s for scene in demo_structure.scenes for s in scene.shot_ids
        }
        orphans = [s.shot_id for s in demo_structure.shots if s.shot_id not in scene_shots]
        for orphan in orphans:
            assert demo_structure.scene_of_shot(orphan) is None

    def test_cluster_of_scene(self, demo_structure):
        for scene in demo_structure.scenes:
            cluster = demo_structure.cluster_of_scene(scene.scene_id)
            assert cluster is not None
            assert scene.scene_id in cluster.scene_ids
        assert demo_structure.cluster_of_scene(9999) is None

    def test_oracle_spans_bypass_detection(self, demo_video):
        spans = [(s.start, s.stop) for s in demo_video.truth.shots]
        structure = mine_content_structure(
            demo_video.stream, oracle_shot_spans=spans
        )
        assert structure.shot_count == demo_video.truth.shot_count
        assert structure.shot_detection is None

    def test_custom_config_window(self, demo_video):
        config = MiningConfig(shot_window=20)
        structure = mine_content_structure(demo_video.stream, config)
        assert structure.shot_count >= 1

    def test_empty_structure_crf_raises(self, demo_structure):
        bare = ContentStructure(
            title="x", shots=[], groups=[], scenes=[], clustered_scenes=[]
        )
        with pytest.raises(MiningError):
            bare.compression_rate_factor
