"""Equivalence suite: vectorized kernels vs the scalar Eq. (1)/(8)/(9) oracle.

The scalar implementations in :mod:`repro.core.similarity` and
:mod:`repro.database.index` stay the reference; every kernel must match
them to ``<= 1e-9`` on random feature sets so the paper-fidelity tests
keep their meaning.  Property-style: each case draws several random
configurations (sizes, weights, group shapes) and checks the full
output block.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import Shot
from repro.core.kernels import (
    FeatureMatrix,
    banded_stsim,
    combined_stsim_to_many,
    cross_stsim,
    group_pairwise_matrix,
    group_stsim,
    group_stsim_row,
    intersection_to_many,
    pairwise_stsim,
    shot_group_stsim,
    stsim_to_many,
)
from repro.core.similarity import (
    SimilarityWeights,
    group_similarity,
    group_similarity_matrix,
    group_similarity_to_many,
    shot_group_similarity,
    shot_similarity,
    similarity_matrix,
)
from repro.database.index import feature_similarity, feature_similarity_batch
from repro.errors import MiningError

TOLERANCE = 1e-9

WEIGHT_CASES = [
    SimilarityWeights(),
    SimilarityWeights(color=0.5, texture=0.5),
    SimilarityWeights(color=1.0, texture=0.0),
    SimilarityWeights(color=0.2, texture=1.3),
]


def _random_shots(rng: np.random.Generator, count: int) -> list[Shot]:
    """Shots with normalised histograms and unit-range textures."""
    shots = []
    for index in range(count):
        histogram = rng.random(256)
        histogram /= histogram.sum()
        shots.append(
            Shot(
                shot_id=index,
                start=index * 10,
                stop=index * 10 + 10,
                fps=25.0,
                representative_frame=None,
                histogram=histogram,
                texture=rng.random(10) * 0.3,
            )
        )
    return shots


def _scalar_matrix(shots, weights) -> np.ndarray:
    n = len(shots)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            out[i, j] = shot_similarity(shots[i], shots[j], weights)
    return out


class TestPairwiseStSim:
    @pytest.mark.parametrize("weights", WEIGHT_CASES)
    def test_matches_scalar_oracle(self, rng, weights):
        shots = _random_shots(rng, 17)
        fm = FeatureMatrix.from_shots(shots)
        expected = _scalar_matrix(shots, weights)
        np.testing.assert_allclose(
            pairwise_stsim(fm, weights), expected, atol=TOLERANCE, rtol=0
        )

    def test_similarity_matrix_wrapper(self, rng):
        shots = _random_shots(rng, 11)
        expected = _scalar_matrix(shots, SimilarityWeights())
        np.testing.assert_allclose(
            similarity_matrix(shots), expected, atol=TOLERANCE, rtol=0
        )

    def test_analytic_diagonal(self, rng):
        shots = _random_shots(rng, 5)
        matrix = similarity_matrix(shots)
        for i, shot in enumerate(shots):
            assert matrix[i, i] == pytest.approx(
                shot_similarity(shot, shot), abs=TOLERANCE
            )

    def test_chunking_is_invisible(self, rng):
        shots = _random_shots(rng, 23)
        fm = FeatureMatrix.from_shots(shots)
        whole = pairwise_stsim(fm)
        chunked = pairwise_stsim(fm, block_pairs=7)
        # Chunk boundaries may flip BLAS accumulation order (gemv vs
        # gemm), so bit-identity is not guaranteed — oracle tolerance is.
        np.testing.assert_allclose(whole, chunked, atol=1e-12, rtol=0)

    def test_empty_input(self):
        assert similarity_matrix([]).shape == (0, 0)


class TestCrossStSim:
    @pytest.mark.parametrize("weights", WEIGHT_CASES)
    def test_matches_scalar_oracle(self, rng, weights):
        a = _random_shots(rng, 7)
        b = _random_shots(rng, 13)
        result = cross_stsim(
            FeatureMatrix.from_shots(a), FeatureMatrix.from_shots(b), weights
        )
        for i, sa in enumerate(a):
            for j, sb in enumerate(b):
                assert result[i, j] == pytest.approx(
                    shot_similarity(sa, sb, weights), abs=TOLERANCE
                )

    def test_single_rows(self, rng):
        a = _random_shots(rng, 1)
        b = _random_shots(rng, 1)
        result = cross_stsim(FeatureMatrix.from_shots(a), FeatureMatrix.from_shots(b))
        assert result.shape == (1, 1)
        assert result[0, 0] == pytest.approx(
            shot_similarity(a[0], b[0]), abs=TOLERANCE
        )

    def test_texture_clamp(self, rng):
        # Pathological textures whose squared distance exceeds 1 must be
        # clamped at 0, exactly like the scalar oracle.
        a = _random_shots(rng, 3)
        b = _random_shots(rng, 3)
        for shot in a:
            shot.texture[:] = 0.0
        for shot in b:
            shot.texture[:] = 1.0
        result = cross_stsim(FeatureMatrix.from_shots(a), FeatureMatrix.from_shots(b))
        for i, sa in enumerate(a):
            for j, sb in enumerate(b):
                assert result[i, j] == pytest.approx(
                    shot_similarity(sa, sb), abs=TOLERANCE
                )


class TestBandedStSim:
    @pytest.mark.parametrize("offset", [1, 2, 5])
    def test_matches_scalar_oracle(self, rng, offset):
        shots = _random_shots(rng, 12)
        band = banded_stsim(FeatureMatrix.from_shots(shots), offset)
        assert band.shape == (12 - offset,)
        for i in range(12 - offset):
            assert band[i] == pytest.approx(
                shot_similarity(shots[i], shots[i + offset]), abs=TOLERANCE
            )

    def test_short_sequence_is_empty(self, rng):
        shots = _random_shots(rng, 3)
        assert banded_stsim(FeatureMatrix.from_shots(shots), 5).size == 0

    def test_bad_offset(self, rng):
        shots = _random_shots(rng, 3)
        with pytest.raises(MiningError):
            banded_stsim(FeatureMatrix.from_shots(shots), 0)


class TestGroupStSim:
    @pytest.mark.parametrize("sizes", [(1, 1), (1, 6), (4, 4), (5, 2), (3, 8)])
    @pytest.mark.parametrize("weights", WEIGHT_CASES[:2])
    def test_matches_scalar_oracle(self, rng, sizes, weights):
        na, nb = sizes
        a = _random_shots(rng, na)
        b = _random_shots(rng, nb)
        expected = group_similarity(a, b, weights)
        value = group_stsim(
            FeatureMatrix.from_shots(a), FeatureMatrix.from_shots(b), weights
        )
        assert value == pytest.approx(expected, abs=TOLERANCE)

    def test_equal_size_benchmark_is_first_argument(self, rng):
        # Equal-sized groups benchmark on the first argument: both the
        # scalar oracle and the kernel must agree in *both* orders.
        a = _random_shots(rng, 4)
        b = _random_shots(rng, 4)
        fa, fb = FeatureMatrix.from_shots(a), FeatureMatrix.from_shots(b)
        assert group_stsim(fa, fb) == pytest.approx(
            group_similarity(a, b), abs=TOLERANCE
        )
        assert group_stsim(fb, fa) == pytest.approx(
            group_similarity(b, a), abs=TOLERANCE
        )

    def test_empty_group_raises(self, rng):
        a = FeatureMatrix.from_shots(_random_shots(rng, 2))
        empty = FeatureMatrix.from_shots([])
        with pytest.raises(MiningError):
            group_stsim(a, empty)
        with pytest.raises(MiningError):
            group_stsim(empty, a)

    def test_shot_group_matches_scalar(self, rng):
        shot = _random_shots(rng, 1)[0]
        group = _random_shots(rng, 6)
        expected = shot_group_similarity(shot, group)
        value = shot_group_stsim(
            shot.histogram, shot.texture, FeatureMatrix.from_shots(group)
        )
        assert value == pytest.approx(expected, abs=TOLERANCE)

    def test_shot_empty_group_raises(self, rng):
        shot = _random_shots(rng, 1)[0]
        with pytest.raises(MiningError):
            shot_group_stsim(shot.histogram, shot.texture, FeatureMatrix.from_shots([]))


class TestGroupBatches:
    def test_row_matches_scalar_both_orders(self, rng):
        target = _random_shots(rng, 3)
        others = [_random_shots(rng, n) for n in (1, 3, 5, 2)]
        forward = group_similarity_to_many(target, others)
        backward = group_similarity_to_many(target, others, group_first=False)
        for g, other in enumerate(others):
            assert forward[g] == pytest.approx(
                group_similarity(target, other), abs=TOLERANCE
            )
            assert backward[g] == pytest.approx(
                group_similarity(other, target), abs=TOLERANCE
            )

    def test_matrix_matches_scalar_ordered_pairs(self, rng):
        groups = [_random_shots(rng, n) for n in (2, 4, 4, 1)]
        matrix = group_similarity_matrix(groups)
        for i, a in enumerate(groups):
            for j, b in enumerate(groups):
                if i == j:
                    continue
                assert matrix[i, j] == pytest.approx(
                    group_similarity(a, b), abs=TOLERANCE
                ), (i, j)

    def test_row_empty_group_raises(self, rng):
        target = _random_shots(rng, 2)
        with pytest.raises(MiningError):
            group_similarity_to_many(target, [_random_shots(rng, 2), []])

    def test_matrix_empty_group_raises(self, rng):
        with pytest.raises(MiningError):
            group_pairwise_matrix(
                [FeatureMatrix.from_shots(_random_shots(rng, 2)), FeatureMatrix.from_shots([])]
            )

    def test_kernel_row_matches_matrix(self, rng):
        groups = [_random_shots(rng, n) for n in (3, 2, 5)]
        fms = [FeatureMatrix.from_shots(g) for g in groups]
        matrix = group_pairwise_matrix(fms)
        row = group_stsim_row(fms[0], fms[1:])
        np.testing.assert_allclose(row, matrix[0, 1:], atol=TOLERANCE, rtol=0)


class TestCombinedKernels:
    def test_batch_matches_feature_similarity(self, rng):
        matrix = rng.random((20, 266))
        query = rng.random(266)
        scores = feature_similarity_batch(query, matrix)
        for m in range(20):
            assert scores[m] == pytest.approx(
                feature_similarity(query, matrix[m]), abs=TOLERANCE
            )

    def test_batch_matches_reduced_subspace(self, rng):
        matrix = rng.random((12, 266))
        query = rng.random(266)
        dims = np.sort(rng.choice(266, size=64, replace=False))
        scores = feature_similarity_batch(query, matrix, dims=dims)
        for m in range(12):
            assert scores[m] == pytest.approx(
                feature_similarity(query, matrix[m], dims=dims), abs=TOLERANCE
            )

    def test_to_many_helpers(self, rng):
        matrix = rng.random((8, 266))
        query = rng.random(266)
        np.testing.assert_allclose(
            combined_stsim_to_many(query, matrix),
            feature_similarity_batch(query, matrix),
            atol=0,
        )
        dims = np.arange(0, 266, 3)
        np.testing.assert_allclose(
            intersection_to_many(query[dims], matrix[:, dims]),
            feature_similarity_batch(query, matrix, dims=dims),
            atol=0,
        )


class TestFeatureMatrix:
    def test_to_many_matches_scalar(self, rng):
        shots = _random_shots(rng, 9)
        query = shots[0]
        values = stsim_to_many(
            query.histogram, query.texture, FeatureMatrix.from_shots(shots[1:])
        )
        for i, shot in enumerate(shots[1:]):
            assert values[i] == pytest.approx(
                shot_similarity(query, shot), abs=TOLERANCE
            )

    def test_take_subsets_rows(self, rng):
        shots = _random_shots(rng, 6)
        fm = FeatureMatrix.from_shots(shots)
        sub = fm.take([1, 3])
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.histograms[0], shots[1].histogram)

    def test_from_combined_round_trip(self, rng):
        stacked = rng.random((4, 266))
        fm = FeatureMatrix.from_combined(stacked)
        np.testing.assert_array_equal(fm.histograms, stacked[:, :256])
        np.testing.assert_array_equal(fm.textures, stacked[:, 256:])

    def test_shape_validation(self, rng):
        with pytest.raises(MiningError):
            FeatureMatrix(np.zeros((3, 256)), np.zeros((2, 10)))
        with pytest.raises(MiningError):
            FeatureMatrix(np.zeros(256), np.zeros(10))
        with pytest.raises(MiningError):
            FeatureMatrix.from_combined(np.zeros((2, 100)))

    def test_concatenate_empty(self):
        fm = FeatureMatrix.concatenate([])
        assert len(fm) == 0
