"""Tests for StSim / StGpSim / GpSim (Eqs. 1, 8, 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import Shot
from repro.core.similarity import (
    SimilarityWeights,
    group_similarity,
    shot_group_similarity,
    shot_similarity,
    similarity_matrix,
)
from repro.errors import MiningError
from repro.video.frame import blank_frame


def _shot(shot_id: int, histogram: np.ndarray, texture: np.ndarray) -> Shot:
    return Shot(
        shot_id=shot_id,
        start=shot_id * 10,
        stop=shot_id * 10 + 10,
        fps=10.0,
        representative_frame=blank_frame(4, 4),
        histogram=histogram,
        texture=texture,
    )


def _random_shot(rng, shot_id: int) -> Shot:
    histogram = rng.random(256)
    histogram /= histogram.sum()
    return _shot(shot_id, histogram, rng.random(10))


class TestWeights:
    def test_defaults_are_paper_values(self):
        weights = SimilarityWeights()
        assert weights.color == 0.7
        assert weights.texture == 0.3

    def test_rejects_negative(self):
        with pytest.raises(MiningError):
            SimilarityWeights(color=-0.1)

    def test_rejects_all_zero(self):
        with pytest.raises(MiningError):
            SimilarityWeights(color=0.0, texture=0.0)


class TestShotSimilarity:
    def test_identical_shots_score_one(self, rng):
        shot = _random_shot(rng, 0)
        assert shot_similarity(shot, shot) == pytest.approx(1.0)

    def test_symmetry(self, rng):
        a, b = _random_shot(rng, 0), _random_shot(rng, 1)
        assert shot_similarity(a, b) == pytest.approx(shot_similarity(b, a))

    def test_disjoint_histograms_score_only_texture(self):
        h1 = np.zeros(256)
        h1[0] = 1.0
        h2 = np.zeros(256)
        h2[255] = 1.0
        t = np.full(10, 0.5)
        a, b = _shot(0, h1, t), _shot(1, h2, t)
        assert shot_similarity(a, b) == pytest.approx(0.3)  # W_T * 1.0

    def test_texture_term_clamped_at_zero(self):
        h = np.ones(256) / 256
        a = _shot(0, h, np.zeros(10))
        b = _shot(1, h, np.ones(10) * 1.0)  # squared distance 10 > 1
        value = shot_similarity(a, b)
        assert value == pytest.approx(0.7)  # colour only

    def test_custom_weights(self, rng):
        a, b = _random_shot(rng, 0), _random_shot(rng, 1)
        color_only = shot_similarity(a, b, SimilarityWeights(1.0, 0.0))
        assert color_only == pytest.approx(
            float(np.minimum(a.histogram, b.histogram).sum())
        )


class TestGroupSimilarity:
    def test_shot_group_takes_max(self, rng):
        shots = [_random_shot(rng, i) for i in range(4)]
        query = shots[0]
        value = shot_group_similarity(query, shots[1:])
        expected = max(shot_similarity(query, s) for s in shots[1:])
        assert value == pytest.approx(expected)

    def test_group_similarity_uses_smaller_benchmark(self, rng):
        small = [_random_shot(rng, i) for i in range(2)]
        large = [_random_shot(rng, 10 + i) for i in range(5)]
        value = group_similarity(small, large)
        expected = np.mean(
            [shot_group_similarity(s, large) for s in small]
        )
        assert value == pytest.approx(float(expected))

    def test_group_similarity_symmetric(self, rng):
        a = [_random_shot(rng, i) for i in range(3)]
        b = [_random_shot(rng, 10 + i) for i in range(5)]
        assert group_similarity(a, b) == pytest.approx(group_similarity(b, a))

    def test_identical_groups_score_one(self, rng):
        group = [_random_shot(rng, i) for i in range(3)]
        assert group_similarity(group, group) == pytest.approx(1.0)

    def test_empty_inputs_raise(self, rng):
        shot = _random_shot(rng, 0)
        with pytest.raises(MiningError):
            shot_group_similarity(shot, [])
        with pytest.raises(MiningError):
            group_similarity([], [shot])


class TestSimilarityMatrix:
    def test_symmetric_with_unit_diagonal(self, rng):
        shots = [_random_shot(rng, i) for i in range(5)]
        matrix = similarity_matrix(shots)
        assert matrix.shape == (5, 5)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)


@given(seed=st.integers(0, 99999))
@settings(max_examples=30, deadline=None)
def test_similarity_bounded(seed):
    rng = np.random.default_rng(seed)
    a, b = _random_shot(rng, 0), _random_shot(rng, 1)
    value = shot_similarity(a, b)
    assert 0.0 <= value <= 1.0 + 1e-9
