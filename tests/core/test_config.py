"""Tests for MiningConfig serialisation and pipeline logging."""

import logging

import pytest

from repro.core.groups import GroupThresholds
from repro.core.similarity import SimilarityWeights
from repro.core.structure import MiningConfig, mine_content_structure
from repro.errors import MiningError


class TestConfigSerialisation:
    def test_default_round_trip(self):
        config = MiningConfig()
        rebuilt = MiningConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_custom_round_trip(self):
        config = MiningConfig(
            weights=SimilarityWeights(color=0.5, texture=0.5),
            shot_window=20,
            min_scene_shots=2,
            merge_threshold=0.3,
            group_thresholds=GroupThresholds(t1=1.2, t2=0.4),
            cluster_target=3,
        )
        rebuilt = MiningConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_partial_dict_uses_defaults(self):
        config = MiningConfig.from_dict({"shot_window": 45})
        assert config.shot_window == 45
        assert config.weights == SimilarityWeights()
        assert config.merge_threshold is None

    def test_unknown_key_fails_loudly(self):
        with pytest.raises(MiningError):
            MiningConfig.from_dict({"shot_windw": 45})  # typo

    def test_json_round_trip(self):
        import json

        config = MiningConfig(cluster_target=2)
        text = json.dumps(config.to_dict())
        assert MiningConfig.from_dict(json.loads(text)) == config


class TestLogging:
    def test_mining_emits_progress_logs(self, demo_stream, caplog):
        with caplog.at_level(logging.INFO, logger="repro.core.structure"):
            mine_content_structure(demo_stream)
        messages = [record.getMessage() for record in caplog.records]
        assert any("shots detected" in message for message in messages)
        assert any("scenes kept" in message for message in messages)
