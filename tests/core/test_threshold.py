"""Tests for the fast entropy threshold technique."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.threshold import adaptive_local_threshold, entropy_threshold
from repro.errors import MiningError


class TestEntropyThreshold:
    def test_separates_bimodal_pool(self, rng):
        low = rng.normal(0.05, 0.01, 200)
        high = rng.normal(0.8, 0.05, 40)
        threshold = entropy_threshold(np.concatenate([low, high]))
        # The split must land between the two modes (Kapur tends to sit
        # just above the tighter mode).
        assert float(np.percentile(low, 90)) < threshold < float(high.min())

    def test_degenerate_pool(self):
        assert entropy_threshold([0.5]) == 0.5
        assert entropy_threshold([0.3, 0.3, 0.3]) == pytest.approx(0.3)

    def test_rejects_empty(self):
        with pytest.raises(MiningError):
            entropy_threshold([])

    def test_rejects_nan(self):
        with pytest.raises(MiningError):
            entropy_threshold([0.1, float("nan")])

    def test_accepts_list_input(self):
        value = entropy_threshold([0.1, 0.2, 0.9, 0.95])
        assert 0.1 < value < 0.95


@given(
    values=st.lists(
        st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=50
    )
)
@settings(max_examples=60, deadline=None)
def test_threshold_within_range(values):
    threshold = entropy_threshold(values)
    assert min(values) <= threshold <= max(values)


class TestAdaptiveLocalThreshold:
    def test_quiet_window_gets_floor(self):
        quiet = np.full(30, 0.01)
        threshold = adaptive_local_threshold(quiet, minimum=0.05)
        assert threshold >= 0.05

    def test_active_window_rises_above_noise(self, rng):
        noise = rng.normal(0.2, 0.05, 29)
        window = np.append(noise, 0.9)  # one cut spike
        threshold = adaptive_local_threshold(window)
        assert threshold > noise.max()
        assert threshold < 0.9

    def test_spike_does_not_inflate_floor(self, rng):
        """The MAD floor is robust: adding a huge spike barely moves it."""
        base = rng.normal(0.02, 0.005, 29)
        calm = adaptive_local_threshold(base)
        spiked = adaptive_local_threshold(np.append(base, 5.0))
        # The spiked threshold still cuts well below the spike.
        assert spiked < 1.0
        assert calm < 1.0

    def test_rejects_empty_window(self):
        with pytest.raises(MiningError):
            adaptive_local_threshold([])
