"""Tests for the Pairwise Cluster Scheme and validity analysis."""

import numpy as np
import pytest

from repro.core.clustering import cluster_scenes
from repro.core.groups import Group
from repro.core.scenes import Scene
from repro.core.features import Shot
from repro.core.validity import search_range, validity_index
from repro.errors import MiningError
from repro.video.frame import blank_frame


def _shot(shot_id: int, bin_index: int) -> Shot:
    histogram = np.zeros(256)
    histogram[bin_index] = 0.9
    histogram[(bin_index + 1) % 256] = 0.1
    return Shot(
        shot_id=shot_id,
        start=shot_id * 10,
        stop=(shot_id + 1) * 10,
        fps=10.0,
        representative_frame=blank_frame(4, 4),
        histogram=histogram,
        texture=np.full(10, 0.5),
    )


def _scene(scene_id: int, bin_index: int, size: int = 3) -> Scene:
    shots = [_shot(scene_id * 10 + i, bin_index) for i in range(size)]
    group = Group(group_id=scene_id, shots=shots, representative_shots=[shots[0]])
    return Scene(scene_id=scene_id, groups=[group], representative_group=group)


class TestSearchRange:
    def test_paper_fractions(self):
        assert search_range(10) == (5, 7)
        assert search_range(20) == (10, 14)

    def test_small_counts_do_not_cluster(self):
        assert search_range(3) == (3, 3)
        assert search_range(1) == (1, 1)

    def test_rejects_zero(self):
        with pytest.raises(MiningError):
            search_range(0)


class TestClusterScenes:
    def test_merges_repeated_scenes(self):
        # Scenes 0/2/4 look alike (bin 0); 1/3/5 look alike (bin 100).
        scenes = [_scene(i, 0 if i % 2 == 0 else 100) for i in range(6)]
        result = cluster_scenes(scenes, target_count=2)
        assert result.cluster_count == 2
        memberships = sorted(sorted(c.scene_ids) for c in result.clusters)
        assert memberships == [[0, 2, 4], [1, 3, 5]]

    def test_validity_selects_true_structure(self):
        # Two obvious visual families; the validity curve should choose
        # a clustering that keeps families pure.
        scenes = [_scene(i, (i % 2) * 120) for i in range(8)]
        result = cluster_scenes(scenes)
        assert result.chosen_count in result.validity_curve
        for cluster in result.clusters:
            family = {scene.scene_id % 2 for scene in cluster.scenes}
            assert len(family) == 1  # never mixes the families

    def test_is_recurring_flag(self):
        scenes = [_scene(i, 0) for i in range(2)] + [_scene(2, 100)]
        result = cluster_scenes(scenes, target_count=2)
        flags = {tuple(c.scene_ids): c.is_recurring for c in result.clusters}
        assert flags[(0, 1)] is True
        assert flags[(2,)] is False

    def test_target_count_bounds(self):
        scenes = [_scene(i, i * 20) for i in range(4)]
        with pytest.raises(MiningError):
            cluster_scenes(scenes, target_count=0)
        with pytest.raises(MiningError):
            cluster_scenes(scenes, target_count=9)

    def test_rejects_empty(self):
        with pytest.raises(MiningError):
            cluster_scenes([])

    def test_single_scene(self):
        result = cluster_scenes([_scene(0, 0)])
        assert result.cluster_count == 1

    def test_clusters_ordered_by_first_appearance(self):
        scenes = [_scene(i, (i % 3) * 80) for i in range(6)]
        result = cluster_scenes(scenes, target_count=3)
        firsts = [cluster.scenes[0].scene_id for cluster in result.clusters]
        assert firsts == sorted(firsts)


class TestValidityIndex:
    def test_tight_clusters_score_lower(self):
        tight_a = [_scene(0, 0), _scene(1, 0)]
        tight_b = [_scene(2, 120), _scene(3, 120)]
        mixed_a = [_scene(0, 0), _scene(2, 120)]
        mixed_b = [_scene(1, 0), _scene(3, 120)]

        def centroids(clusters):
            return [cluster[0].representative_group for cluster in clusters]

        def members(clusters):
            return [[s.representative_group for s in cluster] for cluster in clusters]

        good = validity_index(
            members([tight_a, tight_b]), centroids([tight_a, tight_b])
        )
        bad = validity_index(
            members([mixed_a, mixed_b]), centroids([mixed_a, mixed_b])
        )
        assert good < bad

    def test_single_cluster_is_infinite(self):
        scenes = [_scene(0, 0)]
        value = validity_index(
            [[scenes[0].representative_group]], [scenes[0].representative_group]
        )
        assert value == float("inf")

    def test_mismatched_lengths_raise(self):
        scene = _scene(0, 0)
        with pytest.raises(MiningError):
            validity_index([[scene.representative_group]], [])


class TestOnDemoVideo:
    def test_clusters_partition_scenes(self, demo_structure):
        clustered_ids = sorted(
            scene_id
            for cluster in demo_structure.clustered_scenes
            for scene_id in cluster.scene_ids
        )
        assert clustered_ids == sorted(s.scene_id for s in demo_structure.scenes)

    def test_cluster_count_within_paper_range(self, demo_structure):
        m = demo_structure.scene_count
        n = len(demo_structure.clustered_scenes)
        low, high = search_range(m)
        assert low <= n <= high
