"""Tests for the ClassMiner facade."""

import pytest

from repro.core import ClassMiner
from repro.core.structure import MiningConfig
from repro.errors import MiningError
from repro.types import EventKind


class TestClassMiner:
    def test_full_mine_produces_everything(self, demo_result):
        assert demo_result.structure.shot_count > 0
        assert len(demo_result.cues) == demo_result.structure.shot_count
        assert len(demo_result.audio) == demo_result.structure.shot_count
        assert demo_result.events is not None
        assert len(demo_result.events.events) == demo_result.structure.scene_count

    def test_scene_events_mapping(self, demo_result):
        events = demo_result.scene_events()
        assert set(events) == {s.scene_id for s in demo_result.structure.scenes}
        assert all(isinstance(kind, EventKind) for kind in events.values())

    def test_event_of_scene(self, demo_result):
        scene = demo_result.structure.scenes[0]
        event = demo_result.event_of_scene(scene.scene_id)
        assert event.scene_index == scene.scene_id

    def test_demo_events_match_truth(self, demo_video, demo_result):
        """The demo's three content scenes are unambiguous; the miner
        should label each correctly."""
        mined = demo_result.scene_events()
        hits = 0
        for scene in demo_result.structure.scenes:
            start, stop = scene.frame_span
            truth_events = set()
            for gt in demo_video.truth.scenes:
                gt_start = demo_video.truth.shots[gt.first_shot].start
                gt_stop = demo_video.truth.shots[gt.last_shot].stop
                overlap = min(gt_stop, stop) - max(gt_start, start)
                if overlap > 10 and gt.event is not EventKind.UNKNOWN:
                    truth_events.add(gt.event)
            if mined[scene.scene_id] in truth_events:
                hits += 1
        assert hits >= 2  # at least 2 of the 3 content scenes correct

    def test_structure_only_mode(self, demo_video):
        result = ClassMiner().mine(demo_video.stream, mine_events=False)
        assert result.events is None
        assert result.cues == {}
        with pytest.raises(MiningError):
            result.event_of_scene(0)
        assert result.scene_events() == {}

    def test_title_passthrough(self, demo_result):
        assert demo_result.title == "demo"

    def test_config_exposed(self):
        config = MiningConfig(shot_window=25)
        miner = ClassMiner(config=config)
        assert miner.config.shot_window == 25
