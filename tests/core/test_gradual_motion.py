"""Gradual camera motion must not be mistaken for cuts.

Zooms and pans produce elevated but smooth frame differences — the
classic false-positive source the paper's *adaptive local threshold*
exists to absorb.  These tests build footage with continuous motion and
assert the detector only fires on the true hard cuts.
"""

import pytest

from repro.core.shots import detect_shots
from repro.types import EventKind
from repro.video.synthesis.generator import generate_video
from repro.video.synthesis.script import SceneSpec, Screenplay, ShotSpec
from repro.video.synthesis.compositions import ShotParams


def _motion_screenplay() -> Screenplay:
    shots = (
        ShotSpec(
            composition="surgical_wide", seconds=3.0, camera_id="wide",
            params=ShotParams(actor=1),
        ),
        ShotSpec(
            composition="surgical_zoom", seconds=6.0, camera_id="zoom",
            params=ShotParams(actor=1, coverage=0.5),
        ),
        ShotSpec(
            composition="corridor_walk", seconds=6.0, camera_id="walk",
            params=ShotParams(actor=2),
        ),
    )
    scene = SceneSpec(
        subject="motion stress",
        event=EventKind.UNKNOWN,
        shots=shots,
        groups=(tuple(range(len(shots))),),
    )
    return Screenplay(title="motion", scenes=(scene,))


@pytest.fixture(scope="module")
def motion_video():
    return generate_video(_motion_screenplay(), seed=0, with_audio=False)


class TestGradualMotion:
    def test_zoom_and_walk_are_not_split(self, motion_video):
        result = detect_shots(motion_video.stream)
        truth = set(motion_video.truth.shot_boundaries())
        detected = set(result.boundaries)
        assert truth <= detected  # the two hard cuts are found
        # At most one spurious boundary inside 12 s of continuous motion.
        assert len(detected - truth) <= 1

    def test_zoom_motion_stays_below_local_threshold(self, motion_video):
        result = detect_shots(motion_video.stream)
        # Inside the zoom (transitions 31..88) there is real motion...
        zoom = result.differences[31:88]
        assert zoom.mean() > 0.005
        # ...but every transition stays under its window's threshold, so
        # the continuous motion never reads as a cut.
        assert (zoom <= result.thresholds[31:88]).all()

    def test_dc_mode_also_survives_motion(self, motion_video):
        result = detect_shots(motion_video.stream, mode="dc")
        truth = set(motion_video.truth.shot_boundaries())
        detected = set(result.boundaries)
        assert truth <= detected
        assert len(detected - truth) <= 2
