"""Tests for Tamura coarseness texture."""

import numpy as np
import pytest

from repro.errors import VisionError
from repro.video.frame import Frame, blank_frame
from repro.vision.texture import (
    TEXTURE_DIM,
    coarseness_map,
    tamura_coarseness,
    texture_distance_squared,
)


def _checkerboard(cell: int, height: int = 64, width: int = 80) -> Frame:
    ys, xs = np.mgrid[0:height, 0:width]
    board = (((ys // cell) + (xs // cell)) % 2) * 255
    pixels = np.stack([board] * 3, axis=2).astype(np.uint8)
    return Frame(pixels=pixels)


class TestCoarsenessMap:
    def test_shape(self):
        gray = np.zeros((32, 40))
        sizes = coarseness_map(gray)
        assert sizes.shape == (32, 40)

    def test_rejects_non_2d(self):
        with pytest.raises(VisionError):
            coarseness_map(np.zeros((4, 4, 3)))

    def test_rejects_zero_scales(self):
        with pytest.raises(VisionError):
            coarseness_map(np.zeros((8, 8)), num_scales=0)

    def test_fine_texture_prefers_small_windows(self):
        fine = _checkerboard(2)
        coarse = _checkerboard(16)
        fine_map = coarseness_map(fine.gray())
        coarse_map = coarseness_map(coarse.gray())
        assert fine_map.mean() < coarse_map.mean()


class TestDescriptor:
    def test_dimension_and_range(self):
        descriptor = tamura_coarseness(_checkerboard(4))
        assert descriptor.shape == (TEXTURE_DIM,)
        assert descriptor.min() >= 0.0
        assert descriptor.max() <= 1.0

    def test_orders_by_coarseness(self):
        fine = tamura_coarseness(_checkerboard(2)).mean()
        coarse = tamura_coarseness(_checkerboard(16)).mean()
        assert fine < coarse

    def test_accepts_gray_array(self):
        gray = np.zeros((32, 40))
        descriptor = tamura_coarseness(gray)
        assert descriptor.shape == (TEXTURE_DIM,)

    def test_accepts_rgb_array(self, rng):
        rgb = rng.integers(0, 256, (32, 40, 3), dtype=np.uint8)
        assert tamura_coarseness(rgb).shape == (TEXTURE_DIM,)

    def test_deterministic(self):
        frame = _checkerboard(4)
        a = tamura_coarseness(frame)
        b = tamura_coarseness(frame)
        assert np.array_equal(a, b)


class TestDistance:
    def test_zero_for_identical(self):
        t = tamura_coarseness(_checkerboard(4))
        assert texture_distance_squared(t, t) == 0.0

    def test_symmetry(self):
        a = tamura_coarseness(_checkerboard(2))
        b = tamura_coarseness(_checkerboard(16))
        assert texture_distance_squared(a, b) == pytest.approx(
            texture_distance_squared(b, a)
        )

    def test_shape_mismatch(self):
        with pytest.raises(VisionError):
            texture_distance_squared(np.ones(10), np.ones(9))
