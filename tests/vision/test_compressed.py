"""Tests for compressed-domain (DC coefficient) analysis."""

import numpy as np
import pytest

from repro.core.shots import detect_shots
from repro.errors import MiningError, VisionError
from repro.video.frame import Frame, blank_frame
from repro.video.stream import VideoStream
from repro.vision.compressed import dc_difference, dc_difference_signal, dc_image


class TestDcImage:
    def test_shape(self):
        frame = blank_frame(64, 80)
        assert dc_image(frame, block=8).shape == (8, 10)

    def test_non_multiple_shape_ceils(self):
        frame = blank_frame(60, 70)
        assert dc_image(frame, block=8).shape == (8, 9)

    def test_solid_frame_is_constant(self):
        frame = blank_frame(64, 80, (128, 128, 128))
        image = dc_image(frame)
        assert np.allclose(image, 128 / 255.0, atol=1e-3)

    def test_block_mean_is_exact(self):
        pixels = np.zeros((8, 16, 3), dtype=np.uint8)
        pixels[:, 8:] = 255
        frame = Frame(pixels=pixels)
        image = dc_image(frame, block=8)
        assert image.shape == (1, 2)
        assert image[0, 0] == pytest.approx(0.0)
        assert image[0, 1] == pytest.approx(1.0)

    def test_rejects_bad_block(self):
        with pytest.raises(VisionError):
            dc_image(blank_frame(8, 8), block=0)

    def test_accepts_gray_array(self):
        assert dc_image(np.ones((16, 16)) * 0.5, block=8).shape == (2, 2)


class TestDcSignal:
    def _stream(self):
        frames = [blank_frame(32, 32, (200, 40, 40))] * 6 + [
            blank_frame(32, 32, (40, 40, 200))
        ] * 6
        return VideoStream(frames=list(frames), fps=10)

    def test_cut_produces_spike(self):
        signal = dc_difference_signal(self._stream())
        assert np.argmax(signal) == 5
        assert signal[5] > 10 * (np.delete(signal, 5).max() + 1e-9)

    def test_pairwise_difference(self):
        red = blank_frame(32, 32, (255, 0, 0))
        blue = blank_frame(32, 32, (0, 0, 255))
        assert dc_difference(red, red) == 0.0
        assert dc_difference(red, blue) > 0.1
        with pytest.raises(VisionError):
            dc_difference(red, blank_frame(16, 16))

    def test_single_frame_stream(self):
        stream = VideoStream(frames=[blank_frame(8, 8)], fps=10)
        assert dc_difference_signal(stream).size == 0


class TestDcDetectionMode:
    def test_dc_mode_finds_cuts(self, demo_video):
        result = detect_shots(demo_video.stream, mode="dc")
        truth = set(demo_video.truth.shot_boundaries())
        detected = set(result.boundaries)
        recall = len(truth & detected) / len(truth)
        assert recall >= 0.9  # slightly weaker than histogram mode is OK

    def test_unknown_mode_raises(self, demo_video):
        with pytest.raises(MiningError):
            detect_shots(demo_video.stream, mode="wavelet")
