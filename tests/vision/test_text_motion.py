"""Tests for video-text detection and intra-shot motion analysis."""

import numpy as np
import pytest

from repro.errors import VisionError
from repro.video.frame import Frame, blank_frame
from repro.video.stream import VideoStream
from repro.video.synthesis.compositions import ShotParams, render_composition
from repro.vision.motion import MotionProfile, motion_profile, shot_motion_profiles
from repro.vision.text import detect_text_lines, has_video_text, text_coverage


def _frame(composition: str, t: float = 0.3, **params) -> Frame:
    canvas = render_composition(
        composition, 64, 80, seed=11, params=ShotParams(**params), t=t
    )
    return Frame(pixels=canvas)


class TestTextLines:
    def test_slide_has_multiple_lines(self):
        lines = detect_text_lines(_frame("slide_fullscreen"))
        assert len(lines) >= 3  # title band + bullets
        widths = [line.width for line in lines]
        assert max(widths) > 20

    def test_slide_has_video_text(self):
        assert has_video_text(_frame("slide_fullscreen"))

    def test_dark_frames_have_no_text(self):
        assert detect_text_lines(_frame("black")) == []
        assert detect_text_lines(_frame("organ_still")) == []

    def test_natural_bright_frame_without_text(self):
        # The exam-room interview is bright but carries no text lines.
        assert not has_video_text(_frame("interview_b"))

    def test_text_coverage_bounds(self):
        coverage = text_coverage(_frame("slide_fullscreen"))
        assert 0.0 < coverage < 0.6
        assert text_coverage(_frame("black")) == 0.0

    def test_line_geometry(self):
        for line in detect_text_lines(_frame("slide_fullscreen")):
            assert line.height >= 1
            assert line.width >= 1
            assert 0.0 < line.density <= 1.0

    def test_rejects_bad_threshold(self):
        with pytest.raises(VisionError):
            detect_text_lines(blank_frame(8, 8), dark_luma=1.5)

    def test_synthetic_text_lines(self):
        pixels = np.full((40, 80, 3), 240, dtype=np.uint8)
        # Dashes with glyph gaps, as real text has.
        for left in range(8, 60, 6):
            pixels[10:12, left : left + 4] = 20
        for left in range(8, 40, 6):
            pixels[20:22, left : left + 4] = 20
        frame = Frame(pixels=pixels)
        lines = detect_text_lines(frame)
        assert len(lines) == 2
        assert lines[0].top == 10
        assert all(line.is_texty for line in lines)


class TestMotion:
    def _stream(self, compositions_and_t):
        frames = []
        for name, t in compositions_and_t:
            canvas = render_composition(name, 64, 80, seed=2, params=ShotParams(), t=t)
            frames.append(Frame(pixels=canvas))
        return VideoStream(frames=frames, fps=10)

    def test_still_content_is_static(self):
        stream = self._stream([("slide_fullscreen", 0.0)] * 10)
        profile = motion_profile(stream, 0, 10)
        assert profile.is_static
        assert profile.mean == pytest.approx(0.0, abs=1e-6)

    def test_walking_actor_is_dynamic(self):
        stream = self._stream(
            [("corridor_walk", t) for t in np.linspace(0, 0.9, 10)]
        )
        profile = motion_profile(stream, 0, 10)
        assert not profile.is_static
        assert profile.activity > 0.5

    def test_short_span_is_neutral(self):
        stream = self._stream([("black", 0.0)] * 3)
        profile = motion_profile(stream, 0, 1)
        assert profile == MotionProfile(mean=0.0, peak=0.0, activity=0.0)

    def test_invalid_span_raises(self):
        stream = self._stream([("black", 0.0)] * 3)
        with pytest.raises(VisionError):
            motion_profile(stream, 2, 2)
        with pytest.raises(VisionError):
            motion_profile(stream, 0, 99)

    def test_batch_profiles(self):
        stream = self._stream(
            [("slide_fullscreen", 0.0)] * 5
            + [("corridor_walk", t) for t in np.linspace(0, 0.9, 5)]
        )
        profiles = shot_motion_profiles(stream, [(0, 5), (5, 10)])
        assert profiles[0].is_static
        assert profiles[0].mean < profiles[1].mean
