"""Tests for region-of-interest extraction and matching."""

import numpy as np
import pytest

from repro.errors import VisionError
from repro.video.frame import Frame, blank_frame
from repro.video.synthesis.compositions import ShotParams, render_composition
from repro.vision.roi import (
    RegionOfInterest,
    background_mask,
    extract_rois,
    match_rois,
    roi_similarity,
)


def _frame_with_blobs() -> Frame:
    """Gray background with a red square and a blue circle."""
    pixels = np.full((64, 80, 3), (110, 112, 115), dtype=np.uint8)
    pixels[10:26, 10:26] = (200, 40, 40)
    ys, xs = np.mgrid[0:64, 0:80]
    circle = (ys - 44) ** 2 + (xs - 58) ** 2 <= 100
    pixels[circle] = (40, 60, 200)
    return Frame(pixels=pixels)


class TestBackgroundMask:
    def test_dominant_color_is_background(self):
        frame = _frame_with_blobs()
        mask = background_mask(frame)
        assert mask[0, 0]  # gray corner
        assert not mask[15, 15]  # red square
        assert not mask[44, 58]  # blue circle

    def test_rejects_bad_mass(self):
        with pytest.raises(VisionError):
            background_mask(blank_frame(8, 8), background_mass=1.5)


class TestExtractRois:
    def test_finds_both_blobs(self):
        rois = extract_rois(_frame_with_blobs())
        assert len(rois) == 2
        # Largest first: the circle (~314 px) beats the square (256 px).
        assert rois[0].region.area >= rois[1].region.area
        colors = sorted(roi.mean_color for roi in rois)
        assert colors[0][2] > colors[0][0]  # the blue one
        assert colors[1][0] > colors[1][2]  # the red one

    def test_solid_frame_has_no_rois(self):
        assert extract_rois(blank_frame(32, 40, (90, 90, 90))) == []

    def test_min_fraction_filters(self):
        rois = extract_rois(_frame_with_blobs(), min_fraction=0.2)
        assert rois == []

    def test_max_rois_caps(self):
        rois = extract_rois(_frame_with_blobs(), max_rois=1)
        assert len(rois) == 1
        with pytest.raises(VisionError):
            extract_rois(_frame_with_blobs(), max_rois=0)

    def test_descriptor_shape_and_range(self):
        for roi in extract_rois(_frame_with_blobs()):
            descriptor = roi.descriptor()
            assert descriptor.shape == (8,)
            assert np.all(descriptor >= 0.0)
            assert np.all(descriptor <= 1.0 + 1e-9)

    def test_on_synthetic_composition(self):
        canvas = render_composition(
            "organ_still", 64, 80, seed=3, params=ShotParams(), t=0.0
        )
        rois = extract_rois(Frame(pixels=canvas))
        assert rois  # the organ stands out from the drape
        reddest = max(rois, key=lambda roi: roi.mean_color[0])
        assert reddest.mean_color[0] > reddest.mean_color[1]


class TestMatching:
    def test_self_similarity_is_one(self):
        rois = extract_rois(_frame_with_blobs())
        assert roi_similarity(rois[0], rois[0]) == pytest.approx(1.0)

    def test_different_blobs_score_low(self):
        rois = extract_rois(_frame_with_blobs())
        assert roi_similarity(rois[0], rois[1]) < 0.5

    def test_match_rois_ranks_and_filters(self):
        frame = _frame_with_blobs()
        rois = extract_rois(frame)
        # A second frame with the same red square slightly moved.
        pixels = np.full((64, 80, 3), (110, 112, 115), dtype=np.uint8)
        pixels[12:28, 12:28] = (198, 42, 42)
        other = extract_rois(Frame(pixels=pixels))
        assert other
        red_query = min(rois, key=lambda roi: roi.mean_color[2])
        matches = match_rois(red_query, other, threshold=0.5)
        assert matches
        assert matches[0][1] > 0.7

    def test_symmetry(self):
        rois = extract_rois(_frame_with_blobs())
        assert roi_similarity(rois[0], rois[1]) == pytest.approx(
            roi_similarity(rois[1], rois[0])
        )
