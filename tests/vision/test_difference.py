"""Tests for frame-difference signals."""

import numpy as np
import pytest

from repro.errors import VisionError
from repro.video.frame import blank_frame
from repro.video.stream import VideoStream
from repro.vision.difference import (
    difference_signal,
    histogram_difference,
    pixel_difference,
    signal_from_frames,
)


class TestPairwise:
    def test_identical_frames_zero(self):
        frame = blank_frame(8, 8, (10, 20, 30))
        assert pixel_difference(frame, frame) == 0.0
        assert histogram_difference(frame, frame) == 0.0

    def test_opposite_frames_large(self):
        black = blank_frame(8, 8, (0, 0, 0))
        white = blank_frame(8, 8, (255, 255, 255))
        assert pixel_difference(black, white) == pytest.approx(1.0)
        assert histogram_difference(black, white) == pytest.approx(1.0)

    def test_histogram_difference_bounded(self, rng):
        from repro.video.frame import Frame

        a = Frame(pixels=rng.integers(0, 256, (8, 8, 3), dtype=np.uint8))
        b = Frame(pixels=rng.integers(0, 256, (8, 8, 3), dtype=np.uint8))
        value = histogram_difference(a, b)
        assert 0.0 <= value <= 1.0

    def test_shape_mismatch(self):
        with pytest.raises(VisionError):
            pixel_difference(blank_frame(4, 4), blank_frame(5, 4))


class TestSignal:
    def test_length(self):
        frames = [blank_frame(4, 4, (i * 20, 0, 0)) for i in range(6)]
        stream = VideoStream(frames=frames, fps=10)
        signal = difference_signal(stream)
        assert signal.shape == (5,)

    def test_cut_produces_spike(self):
        frames = [blank_frame(8, 8, (200, 30, 30))] * 5 + [
            blank_frame(8, 8, (30, 30, 200))
        ] * 5
        stream = VideoStream(frames=list(frames), fps=10)
        signal = difference_signal(stream)
        assert signal[4] > 0.9
        assert np.all(signal[:4] == 0.0)
        assert np.all(signal[5:] == 0.0)

    def test_single_frame_stream(self):
        stream = VideoStream(frames=[blank_frame(4, 4)], fps=10)
        assert difference_signal(stream).size == 0

    def test_signal_from_frames_matches_stream(self):
        frames = [blank_frame(6, 6, (i * 40 % 256, 10, 10)) for i in range(5)]
        stream = VideoStream(frames=list(frames), fps=10)
        assert np.allclose(signal_from_frames(stream.frames), difference_signal(stream))
