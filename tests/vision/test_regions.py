"""Tests for connected components and shape analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import VisionError
from repro.vision.regions import Region, filter_regions, label_regions


class TestLabelRegions:
    def test_two_separate_blobs(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[1:3, 1:3] = True
        mask[6:9, 6:9] = True
        labels, regions = label_regions(mask)
        assert len(regions) == 2
        assert regions[0].area == 9  # sorted by area, largest first
        assert regions[1].area == 4
        assert labels.max() == 2

    def test_diagonal_connectivity(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        mask[1, 1] = True
        _, four = label_regions(mask, connectivity=4)
        _, eight = label_regions(mask, connectivity=8)
        assert len(four) == 2
        assert len(eight) == 1

    def test_u_shape_merges_via_union_find(self):
        # A U-shape forces label equivalences to be resolved.
        mask = np.zeros((5, 5), dtype=bool)
        mask[:, 0] = True
        mask[:, 4] = True
        mask[4, :] = True
        _, regions = label_regions(mask)
        assert len(regions) == 1

    def test_empty_mask(self):
        labels, regions = label_regions(np.zeros((5, 5), dtype=bool))
        assert regions == []
        assert labels.sum() == 0

    def test_rejects_bad_connectivity(self):
        with pytest.raises(VisionError):
            label_regions(np.zeros((3, 3), dtype=bool), connectivity=6)

    def test_rejects_non_2d(self):
        with pytest.raises(VisionError):
            label_regions(np.zeros((2, 2, 2), dtype=bool))


class TestRegionGeometry:
    def test_bbox_and_centroid(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[2:5, 3:7] = True
        _, regions = label_regions(mask)
        region = regions[0]
        assert region.bbox == (2, 3, 5, 7)
        assert region.height == 3
        assert region.width == 4
        assert region.centroid == pytest.approx((3.0, 4.5))
        assert region.fill_ratio == pytest.approx(1.0)
        assert region.aspect_ratio == pytest.approx(0.75)

    def test_area_fraction(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[0:5, 0:10] = True
        _, regions = label_regions(mask)
        assert regions[0].area_fraction((10, 10, 3)) == pytest.approx(0.5)


class TestFilterRegions:
    def _regions(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[1:3, 1:3] = True  # tiny
        mask[5:15, 5:15] = True  # big
        _, regions = label_regions(mask)
        return regions

    def test_min_area(self):
        kept = filter_regions(self._regions(), (20, 20), min_area_fraction=0.1)
        assert len(kept) == 1
        assert kept[0].area == 100

    def test_min_dimensions(self):
        kept = filter_regions(self._regions(), (20, 20), min_height=5, min_width=5)
        assert len(kept) == 1

    def test_min_fill(self):
        ring = np.zeros((10, 10), dtype=bool)
        ring[2:8, 2:8] = True
        ring[4:6, 4:6] = False
        _, regions = label_regions(ring)
        assert filter_regions(regions, (10, 10), min_fill_ratio=0.95) == []
        assert len(filter_regions(regions, (10, 10), min_fill_ratio=0.5)) == 1


@given(mask=arrays(bool, (10, 10), elements=st.booleans()))
@settings(max_examples=30, deadline=None)
def test_labels_partition_the_mask(mask):
    """Label image invariants: areas sum to mask size, labels contiguous."""
    labels, regions = label_regions(mask, connectivity=8)
    assert sum(region.area for region in regions) == int(mask.sum())
    assert set(np.unique(labels)) - {0} == {region.label for region in regions}
    # every foreground pixel is labelled, background never is
    assert np.array_equal(labels > 0, mask)
