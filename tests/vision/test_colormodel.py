"""Tests for Gaussian colour models."""

import numpy as np
import pytest

from repro.errors import VisionError
from repro.vision.colormodel import GaussianColorModel, chromaticity


class TestChromaticity:
    def test_sums_to_one_with_blue(self):
        image = np.full((2, 2, 3), (100, 50, 50), dtype=np.uint8)
        chroma = chromaticity(image)
        assert chroma[0, 0, 0] == pytest.approx(0.5)
        assert chroma[0, 0, 1] == pytest.approx(0.25)

    def test_black_is_neutral(self):
        image = np.zeros((2, 2, 3), dtype=np.uint8)
        chroma = chromaticity(image)
        assert np.allclose(chroma, 1.0 / 3.0)

    def test_intensity_invariance(self):
        dim = np.full((1, 1, 3), (40, 30, 20), dtype=np.uint8)
        bright = np.full((1, 1, 3), (200, 150, 100), dtype=np.uint8)
        assert np.allclose(chromaticity(dim), chromaticity(bright))

    def test_rejects_bad_shape(self):
        with pytest.raises(VisionError):
            chromaticity(np.zeros((3, 3)))


class TestGaussianColorModel:
    def _model(self):
        return GaussianColorModel(
            mean=np.array([0.5, 0.3]),
            covariance=np.array([[0.002, 0.0], [0.0, 0.001]]),
            threshold=4.0,
            min_brightness=0.1,
            max_brightness=0.95,
        )

    def test_segments_matching_color(self):
        model = self._model()
        # Construct a pixel at exactly the model mean chromaticity.
        image = np.full((4, 4, 3), (125, 75, 50), dtype=np.uint8)  # r=.5 g=.3
        assert model.segment(image).all()

    def test_rejects_mismatched_color(self):
        model = self._model()
        image = np.full((4, 4, 3), (20, 20, 200), dtype=np.uint8)
        assert not model.segment(image).any()

    def test_brightness_gates(self):
        model = self._model()
        dark = np.full((2, 2, 3), (12, 7, 5), dtype=np.uint8)  # right chroma, dim
        assert not model.segment(dark).any()
        blown = np.full((2, 2, 3), (255, 255, 255), dtype=np.uint8)
        assert not model.segment(blown).any()

    def test_rejects_bad_covariance(self):
        with pytest.raises(VisionError):
            GaussianColorModel(
                mean=np.zeros(2), covariance=np.array([[1.0, 0.0], [0.0, -1.0]])
            )

    def test_rejects_bad_threshold(self):
        with pytest.raises(VisionError):
            GaussianColorModel(
                mean=np.zeros(2), covariance=np.eye(2), threshold=0.0
            )

    def test_mahalanobis_zero_at_mean(self):
        model = self._model()
        image = np.full((1, 1, 3), (125, 75, 50), dtype=np.uint8)
        assert model.mahalanobis_squared(image)[0, 0] == pytest.approx(0.0, abs=1e-3)


class TestFit:
    def test_fit_recovers_mean(self, rng):
        samples = rng.normal([0.45, 0.33], [0.02, 0.01], size=(500, 2))
        model = GaussianColorModel.fit(samples)
        assert model.mean == pytest.approx([0.45, 0.33], abs=0.01)

    def test_fit_segments_its_own_population(self, rng):
        samples = rng.normal([0.45, 0.33], [0.01, 0.005], size=(300, 2))
        model = GaussianColorModel.fit(samples, threshold=9.0)
        # Build pixels at the sampled chromaticities with brightness 0.5.
        r = samples[:, 0]
        g = samples[:, 1]
        b = 1.0 - r - g
        rgb = (np.stack([r, g, b], axis=1) * 3 * 127).clip(0, 255)
        image = rgb.reshape(-1, 1, 3).astype(np.uint8)
        assert model.segment(image).mean() > 0.9

    def test_fit_rejects_too_few(self):
        with pytest.raises(VisionError):
            GaussianColorModel.fit(np.zeros((2, 2)))

    def test_fit_rejects_bad_shape(self):
        with pytest.raises(VisionError):
            GaussianColorModel.fit(np.zeros((10, 3)))
