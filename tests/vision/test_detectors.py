"""Tests for skin, blood, face and special-frame detectors.

Fixtures render frames through the same composition pipeline the
generator uses, so these tests cover the detectors under realistic
conditions (with scenery, not just flat patches).
"""

import numpy as np
import pytest

from repro.video.frame import Frame, blank_frame
from repro.video.synthesis.compositions import ShotParams, render_composition
from repro.vision.blood import detect_blood
from repro.vision.cues import extract_cues
from repro.vision.face import detect_faces, template_curve_score
from repro.vision.frames import (
    SpecialFrameKind,
    classify_special_frame,
    dominant_color_fraction,
    histogram_entropy,
    text_band_count,
)
from repro.vision.regions import label_regions
from repro.vision.skin import detect_skin


def _frame(composition: str, **params) -> Frame:
    canvas = render_composition(
        composition, 64, 80, seed=7, params=ShotParams(**params), t=0.4
    )
    return Frame(pixels=canvas)


class TestSkin:
    def test_surgical_closeup_is_skin_closeup(self):
        detection = detect_skin(_frame("surgical_closeup"))
        assert detection.has_skin
        assert detection.has_closeup
        assert detection.largest_fraction > 0.2

    def test_limb_exam_is_skin_closeup(self):
        assert detect_skin(_frame("limb_exam")).has_closeup

    def test_slide_has_no_skin(self):
        detection = detect_skin(_frame("slide_fullscreen"))
        assert not detection.has_skin

    def test_scan_has_no_skin(self):
        assert not detect_skin(_frame("scan_display")).has_skin

    def test_face_shot_has_skin_but_no_closeup(self):
        detection = detect_skin(_frame("interview_a"))
        assert detection.has_skin
        assert not detection.has_closeup


class TestBlood:
    def test_incision_detected(self):
        detection = detect_blood(_frame("surgical_closeup"))
        assert detection.has_blood

    def test_organ_detected(self):
        detection = detect_blood(_frame("organ_still"))
        assert detection.has_blood
        assert detection.largest_fraction > 0.1

    def test_interview_has_no_blood(self):
        assert not detect_blood(_frame("interview_a")).has_blood

    def test_lecture_has_no_blood(self):
        assert not detect_blood(_frame("podium_wide")).has_blood


class TestFace:
    def test_interview_closeup_detected(self):
        detection = detect_faces(_frame("interview_a"))
        assert detection.has_face
        assert detection.has_closeup
        assert detection.largest_fraction >= 0.10

    def test_reverse_shot_detected(self):
        assert detect_faces(_frame("interview_b")).has_closeup

    def test_podium_speaker_closeup(self):
        assert detect_faces(_frame("podium_speaker")).has_closeup

    def test_surgical_field_is_not_a_face(self):
        # Large elliptical skin blob without facial features.
        detection = detect_faces(_frame("surgical_closeup"))
        assert not detection.has_face

    def test_slide_has_no_face(self):
        assert not detect_faces(_frame("slide_fullscreen")).has_face

    def test_template_score_prefers_ellipse(self):
        ellipse = np.zeros((30, 30), dtype=bool)
        ys, xs = np.mgrid[0:30, 0:30]
        ellipse[((ys - 15) / 12.0) ** 2 + ((xs - 15) / 9.0) ** 2 <= 1] = True
        _, regions = label_regions(ellipse)
        assert template_curve_score(ellipse, regions[0]) > 0.9

        square = np.zeros((30, 30), dtype=bool)
        square[5:25, 5:25] = True
        _, regions = label_regions(square)
        assert template_curve_score(square, regions[0]) < 0.5


class TestSpecialFrames:
    @pytest.mark.parametrize(
        "composition,expected",
        [
            ("slide_fullscreen", SpecialFrameKind.SLIDE),
            ("clipart_fullscreen", SpecialFrameKind.CLIPART),
            ("sketch_fullscreen", SpecialFrameKind.SKETCH),
            ("black", SpecialFrameKind.BLACK),
            ("podium_speaker", SpecialFrameKind.NATURAL),
            ("interview_a", SpecialFrameKind.NATURAL),
            ("surgical_closeup", SpecialFrameKind.NATURAL),
            ("organ_still", SpecialFrameKind.NATURAL),
            ("scan_display", SpecialFrameKind.NATURAL),
            ("corridor_walk", SpecialFrameKind.NATURAL),
        ],
    )
    def test_classification(self, composition, expected):
        assert classify_special_frame(_frame(composition)) is expected

    def test_black_frame_shortcut(self):
        assert classify_special_frame(blank_frame(64, 80)) is SpecialFrameKind.BLACK

    def test_slide_has_text_bands(self):
        assert text_band_count(_frame("slide_fullscreen")) >= 2

    def test_slide_statistics_are_man_made(self):
        frame = _frame("slide_fullscreen")
        assert dominant_color_fraction(frame) > 0.6
        assert histogram_entropy(frame) < 2.5

    def test_kind_predicates(self):
        assert SpecialFrameKind.SLIDE.is_man_made
        assert SpecialFrameKind.SLIDE.is_slide_like
        assert SpecialFrameKind.CLIPART.is_slide_like
        assert not SpecialFrameKind.BLACK.is_slide_like
        assert not SpecialFrameKind.NATURAL.is_man_made


class TestCues:
    def test_cue_bundle_for_clinical(self):
        cues = extract_cues(_frame("surgical_closeup"))
        assert cues.has_skin_closeup
        assert cues.has_blood
        assert not cues.is_slide_like

    def test_man_made_frames_skip_region_detectors(self):
        cues = extract_cues(_frame("slide_fullscreen"))
        assert cues.is_slide_like
        assert not cues.has_face
        assert not cues.has_skin
        assert not cues.has_blood

    def test_interview_cues(self):
        cues = extract_cues(_frame("interview_b"))
        assert cues.has_face_closeup
        assert not cues.has_blood
