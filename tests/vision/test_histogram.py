"""Tests for HSV histograms and intersection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VisionError
from repro.video.frame import blank_frame
from repro.vision.histogram import (
    histogram_intersection,
    histogram_l1_distance,
    hsv_histogram,
)


class TestHsvHistogram:
    def test_normalised(self, rng):
        frame = blank_frame(8, 10, (20, 80, 160))
        hist = hsv_histogram(frame)
        assert hist.shape == (256,)
        assert hist.sum() == pytest.approx(1.0)

    def test_solid_frame_is_one_bin(self):
        hist = hsv_histogram(blank_frame(8, 8, (255, 0, 0)))
        assert np.count_nonzero(hist) == 1

    def test_accepts_raw_array(self, rng):
        pixels = rng.integers(0, 256, (8, 8, 3), dtype=np.uint8)
        assert hsv_histogram(pixels).sum() == pytest.approx(1.0)


class TestIntersection:
    def test_identical_is_one(self):
        hist = hsv_histogram(blank_frame(8, 8, (10, 200, 30)))
        assert histogram_intersection(hist, hist) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        red = hsv_histogram(blank_frame(8, 8, (255, 0, 0)))
        blue = hsv_histogram(blank_frame(8, 8, (0, 0, 255)))
        assert histogram_intersection(red, blue) == pytest.approx(0.0)

    def test_symmetry(self, rng):
        h1 = hsv_histogram(rng.integers(0, 256, (8, 8, 3), dtype=np.uint8))
        h2 = hsv_histogram(rng.integers(0, 256, (8, 8, 3), dtype=np.uint8))
        assert histogram_intersection(h1, h2) == pytest.approx(
            histogram_intersection(h2, h1)
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(VisionError):
            histogram_intersection(np.ones(4) / 4, np.ones(5) / 5)

    def test_non_1d_raises(self):
        with pytest.raises(VisionError):
            histogram_intersection(np.ones((2, 2)) / 4, np.ones((2, 2)) / 4)


class TestL1:
    def test_l1_complements_intersection(self, rng):
        h1 = hsv_histogram(rng.integers(0, 256, (8, 8, 3), dtype=np.uint8))
        h2 = hsv_histogram(rng.integers(0, 256, (8, 8, 3), dtype=np.uint8))
        # For normalised histograms: L1 = 2 * (1 - intersection).
        assert histogram_l1_distance(h1, h2) == pytest.approx(
            2.0 * (1.0 - histogram_intersection(h1, h2))
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(VisionError):
            histogram_l1_distance(np.ones(4), np.ones(3))


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_intersection_bounded(seed):
    rng = np.random.default_rng(seed)
    h1 = hsv_histogram(rng.integers(0, 256, (6, 6, 3), dtype=np.uint8))
    h2 = hsv_histogram(rng.integers(0, 256, (6, 6, 3), dtype=np.uint8))
    value = histogram_intersection(h1, h2)
    assert 0.0 <= value <= 1.0 + 1e-12
