"""Tests for colour conversion and quantisation."""

import colorsys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VisionError
from repro.vision.color import (
    ACHROMATIC_SATURATION,
    TOTAL_BINS,
    hsv_to_rgb,
    quantize_hsv,
    rgb_to_hsv,
)


class TestRgbToHsv:
    def test_matches_colorsys(self, rng):
        image = rng.integers(0, 256, (6, 7, 3), dtype=np.uint8)
        ours = rgb_to_hsv(image)
        for y in range(6):
            for x in range(7):
                expected = colorsys.rgb_to_hsv(*(image[y, x] / 255.0))
                assert ours[y, x] == pytest.approx(expected, abs=1e-12)

    def test_gray_has_zero_saturation(self):
        image = np.full((2, 2, 3), 123, dtype=np.uint8)
        hsv = rgb_to_hsv(image)
        assert np.allclose(hsv[:, :, 1], 0.0)

    def test_accepts_float_input(self):
        image = np.full((2, 2, 3), 0.5)
        hsv = rgb_to_hsv(image)
        assert np.allclose(hsv[:, :, 2], 0.5)

    def test_rejects_bad_shape(self):
        with pytest.raises(VisionError):
            rgb_to_hsv(np.zeros((3, 3)))


class TestRoundTrip:
    @given(
        r=st.integers(0, 255), g=st.integers(0, 255), b=st.integers(0, 255)
    )
    @settings(max_examples=50, deadline=None)
    def test_hsv_rgb_round_trip(self, r, g, b):
        image = np.full((1, 1, 3), (r, g, b), dtype=np.uint8)
        back = hsv_to_rgb(rgb_to_hsv(image))
        assert np.allclose(back * 255.0, image.astype(float), atol=0.51)

    def test_hsv_to_rgb_rejects_bad_shape(self):
        with pytest.raises(VisionError):
            hsv_to_rgb(np.zeros((4, 4)))


class TestQuantize:
    def test_range(self, rng):
        image = rng.integers(0, 256, (8, 8, 3), dtype=np.uint8)
        bins = quantize_hsv(rgb_to_hsv(image))
        assert bins.min() >= 0
        assert bins.max() < TOTAL_BINS

    def test_achromatic_pixels_share_hue_bin(self):
        # Two grays whose raw hue would differ wildly after noise.
        a = np.full((1, 1, 3), (200, 201, 200), dtype=np.uint8)
        b = np.full((1, 1, 3), (200, 200, 201), dtype=np.uint8)
        bin_a = quantize_hsv(rgb_to_hsv(a))[0, 0]
        bin_b = quantize_hsv(rgb_to_hsv(b))[0, 0]
        assert bin_a == bin_b

    def test_saturated_hues_differ(self):
        red = np.full((1, 1, 3), (255, 0, 0), dtype=np.uint8)
        green = np.full((1, 1, 3), (0, 255, 0), dtype=np.uint8)
        assert (
            quantize_hsv(rgb_to_hsv(red))[0, 0]
            != quantize_hsv(rgb_to_hsv(green))[0, 0]
        )

    def test_achromatic_threshold_is_sane(self):
        assert 0.0 < ACHROMATIC_SATURATION < 0.2
