"""Tests for binary morphology."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import VisionError
from repro.vision.morphology import close_mask, dilate, erode, open_mask


def _square_mask(size: int = 10, top: int = 3, bottom: int = 7) -> np.ndarray:
    mask = np.zeros((size, size), dtype=bool)
    mask[top:bottom, top:bottom] = True
    return mask


class TestBasics:
    def test_dilate_grows(self):
        mask = _square_mask()
        grown = dilate(mask, 1)
        assert grown.sum() > mask.sum()
        assert grown[2, 3]  # one pixel beyond the original edge

    def test_erode_shrinks(self):
        mask = _square_mask()
        shrunk = erode(mask, 1)
        assert shrunk.sum() < mask.sum()
        assert not shrunk[3, 3]

    def test_radius_zero_is_copy(self):
        mask = _square_mask()
        assert np.array_equal(dilate(mask, 0), mask)
        assert np.array_equal(erode(mask, 0), mask)

    def test_negative_radius_raises(self):
        with pytest.raises(VisionError):
            dilate(_square_mask(), -1)
        with pytest.raises(VisionError):
            erode(_square_mask(), -1)

    def test_rejects_non_2d(self):
        with pytest.raises(VisionError):
            dilate(np.zeros((2, 2, 2)), 1)


class TestCompound:
    def test_open_removes_speckle(self):
        mask = _square_mask()
        mask[0, 0] = True  # isolated pixel
        opened = open_mask(mask, 1)
        assert not opened[0, 0]
        assert opened[5, 5]

    def test_close_fills_hole(self):
        mask = _square_mask(12, 2, 10)
        mask[5, 5] = False  # small hole
        closed = close_mask(mask, 1)
        assert closed[5, 5]


mask_strategy = arrays(bool, (12, 12), elements=st.booleans())


@given(mask=mask_strategy)
@settings(max_examples=40, deadline=None)
def test_erosion_dilation_duality(mask):
    """Erosion of the mask equals complement of dilating the complement."""
    assert np.array_equal(erode(mask, 1), ~dilate(~mask, 1))


@given(mask=mask_strategy)
@settings(max_examples=40, deadline=None)
def test_opening_is_anti_extensive_and_idempotent(mask):
    opened = open_mask(mask, 1)
    assert not np.any(opened & ~mask)  # opening never adds pixels
    assert np.array_equal(open_mask(opened, 1), opened)


@given(mask=mask_strategy)
@settings(max_examples=40, deadline=None)
def test_closing_is_extensive_and_idempotent(mask):
    closed = close_mask(mask, 1)
    assert not np.any(mask & ~closed)  # closing never removes pixels
    assert np.array_equal(close_mask(closed, 1), closed)
