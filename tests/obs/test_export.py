"""Prometheus and JSON exporters, plus the line-format validator."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    check_prometheus_text,
    render_json,
    render_prometheus,
    validate_prometheus_text,
)


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("jobs_total", "Jobs processed.").inc(3)
    registry.counter(
        "events_total", "Events by kind.", labelnames=("kind",)
    ).labels(kind="done").inc(2)
    registry.histogram("latency_seconds", "Query latency.").record(1.5e-3)
    registry.gauge("inflight", "In-flight jobs.").set(1)
    registry.register_collector(lambda: {"hot_total": 9.0})
    return registry


class TestPrometheus:
    def test_render_has_help_type_and_samples(self):
        text = render_prometheus(_sample_registry())
        assert "# HELP jobs_total Jobs processed." in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3.0" in text
        assert 'events_total{kind="done"} 2.0' in text
        assert "# TYPE latency_seconds histogram" in text
        assert "latency_seconds_count 1" in text
        assert "latency_seconds_sum 0.0015" in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "hot_total 9.0" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds")
        histogram.record(1e-6)
        histogram.record(1.0)
        text = render_prometheus(registry)
        bucket_values = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("h_seconds_bucket")
        ]
        assert bucket_values == sorted(bucket_values)
        assert bucket_values[-1] == 2

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("title",)).labels(
            title='say "hi"\nplease'
        ).inc()
        text = render_prometheus(registry)
        assert '\\"hi\\"' in text
        assert "\\n" in text
        assert validate_prometheus_text(text) == []

    def test_render_validates(self):
        text = render_prometheus(_sample_registry())
        assert validate_prometheus_text(text) == []
        check_prometheus_text(text)  # must not raise

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestValidator:
    def test_accepts_canonical_lines(self):
        text = (
            "# HELP x_total A counter.\n"
            "# TYPE x_total counter\n"
            'x_total{a="b"} 1.0\n'
            "y_ratio +Inf\n"
        )
        assert validate_prometheus_text(text) == []

    @pytest.mark.parametrize(
        "line",
        [
            "9bad_name 1.0",
            "name{unclosed=\"x\" 1.0",
            "name 1.0 extra",
            "name notanumber",
            "# TYPE x_total banana",
            "# HELP missing_text",
        ],
    )
    def test_rejects_malformed_lines(self, line):
        assert validate_prometheus_text(line + "\n")

    def test_check_raises_with_line_numbers(self):
        with pytest.raises(ObservabilityError, match="line 1"):
            check_prometheus_text("bad line here\n")


class TestJson:
    def test_render_json_is_the_snapshot(self):
        registry = _sample_registry()
        data = json.loads(render_json(registry))
        assert data["jobs_total"] == 3.0
        assert data["events_total{kind=done}"] == 2.0
        assert data["hot_total"] == 9.0
        assert data["latency_seconds_count"] == 1.0
