"""Slow-query log: bounded retention of the slowest queries."""

from __future__ import annotations

import threading

import pytest

from repro.obs import SlowQuery, SlowQueryLog, get_slow_log


def _q(elapsed: float, kind: str = "shot", **kwargs) -> SlowQuery:
    return SlowQuery(kind=kind, elapsed_seconds=elapsed, backend="test", **kwargs)


class TestSlowQueryLog:
    def test_retains_slowest_in_order(self):
        log = SlowQueryLog(capacity=3)
        for elapsed in (0.01, 0.5, 0.02, 0.3, 0.04):
            log.record(_q(elapsed))
        assert [e.elapsed_seconds for e in log.entries()] == [0.5, 0.3, 0.04]
        assert log.recorded == 5

    def test_fast_query_never_evicts_a_slower_one(self):
        log = SlowQueryLog(capacity=2)
        log.record(_q(1.0))
        log.record(_q(2.0))
        log.record(_q(0.001))
        assert [e.elapsed_seconds for e in log.entries()] == [2.0, 1.0]

    def test_capacity_one(self):
        log = SlowQueryLog(capacity=1)
        for elapsed in (0.2, 0.9, 0.5):
            log.record(_q(elapsed))
        assert [e.elapsed_seconds for e in log.entries()] == [0.9]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_clear_resets_entries_and_counter(self):
        log = SlowQueryLog(capacity=4)
        log.record(_q(0.1))
        log.clear()
        assert log.entries() == []
        assert log.recorded == 0

    def test_equal_elapsed_keeps_insertion_stability(self):
        log = SlowQueryLog(capacity=3)
        first = _q(0.5, kind="scene")
        second = _q(0.5, kind="event")
        log.record(first)
        log.record(second)
        assert log.entries() == [first, second]

    def test_to_json_shape(self):
        entry = _q(
            0.25,
            comparisons=100,
            approx_comparisons=40,
            cache_hit=True,
            degraded=True,
            shards_missing=(2,),
            trace_id="abc123",
        )
        data = entry.to_json()
        assert data["elapsed_ms"] == 250.0
        assert data["backend"] == "test"
        assert data["shards_missing"] == [2]
        assert data["trace_id"] == "abc123"
        assert data["cache_hit"] is True
        assert data["degraded"] is True

    def test_render_mentions_slowest(self):
        log = SlowQueryLog(capacity=2)
        log.record(_q(1.5, trace_id="feedc0de"))
        text = log.render()
        assert "feedc0de" in text
        assert "shot" in text
        assert SlowQueryLog(capacity=2).render() == "(no queries recorded)"

    def test_concurrent_records_stay_bounded(self):
        log = SlowQueryLog(capacity=8)

        def pound(base: float) -> None:
            for i in range(200):
                log.record(_q(base + i * 1e-6))

        threads = [
            threading.Thread(target=pound, args=(0.1 * t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.recorded == 800
        assert len(log.entries()) == 8
        # The retained tail is the global slowest, not one thread's.
        assert all(e.elapsed_seconds >= 0.3 for e in log.entries())


def test_global_slow_log_is_a_singleton():
    assert get_slow_log() is get_slow_log()
