"""Cross-process trace plumbing: adopt, explicit spans, remote stitching."""

from __future__ import annotations

import threading

from repro.obs import NULL_TRACER, Span, Tracer, new_trace_id, render_spans


class TestTraceIds:
    def test_new_trace_id_shape_and_uniqueness(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)  # hex

    def test_adopt_exposes_trace_id_per_thread(self):
        tracer = Tracer()
        assert tracer.current_trace_id() is None
        with tracer.adopt(None, "cafe0123cafe0123"):
            assert tracer.current_trace_id() == "cafe0123cafe0123"
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(tracer.current_trace_id())
            )
            thread.start()
            thread.join()
            assert seen == [None]  # thread-local, not process-global
        assert tracer.current_trace_id() is None

    def test_adopt_restores_previous_trace_id(self):
        tracer = Tracer()
        with tracer.adopt(None, "outer"):
            with tracer.adopt(None, "inner"):
                assert tracer.current_trace_id() == "inner"
            assert tracer.current_trace_id() == "outer"


class TestAdoptParent:
    def test_adopted_parent_nests_new_spans(self):
        tracer = Tracer()
        with tracer.span("root"):
            parent = tracer.current_span_id()
        assert parent is not None
        # A different logical context (e.g. a queue worker) adopts it.
        with tracer.adopt(parent):
            with tracer.span("child"):
                pass
        child = next(sp for sp in tracer.spans() if sp.name == "child")
        assert child.parent_id == parent

    def test_adopt_none_parent_is_harmless(self):
        tracer = Tracer()
        with tracer.adopt(None, None):
            with tracer.span("orphanless"):
                pass
        (span,) = tracer.spans()
        assert span.parent_id is None

    def test_current_span_id_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span_id() is None
        with tracer.span("outer"):
            outer = tracer.current_span_id()
            with tracer.span("inner"):
                assert tracer.current_span_id() != outer
            assert tracer.current_span_id() == outer
        assert tracer.current_span_id() is None


class TestExplicitSpans:
    def test_add_span_at_uses_epoch_relative_start(self):
        tracer = Tracer()
        span = tracer.add_span_at("rpc.probe", 0.5, 0.25, shard=1)
        assert span.start == 0.5
        assert span.duration == 0.25
        assert span.parent_id is None
        assert span.attributes == {"shard": 1}

    def test_reserved_span_id_round_trips(self):
        tracer = Tracer()
        reserved = tracer.new_span_id()
        with tracer.adopt(reserved):
            with tracer.span("under.reserved"):
                pass
        tracer.add_span_at("gateway.request", 0.0, 1.0, span_id=reserved)
        spans = {sp.name: sp for sp in tracer.spans()}
        assert spans["under.reserved"].parent_id == reserved
        assert spans["gateway.request"].span_id == reserved

    def test_now_is_monotonic_from_epoch(self):
        tracer = Tracer()
        first = tracer.now()
        second = tracer.now()
        assert 0.0 <= first <= second


class TestRemoteStitching:
    def _remote_spans(self):
        remote = Tracer()
        with remote.span("worker.probe", shard=0):
            with remote.span("worker.leaf", leaf="l0"):
                pass
        return remote.spans()

    def test_remote_ids_are_remapped_and_reparented(self):
        local = Tracer()
        with local.span("local.phase"):
            pass
        rpc = local.add_span_at("rpc.probe", 1.0, 0.5)
        attached = local.attach_remote_spans(self._remote_spans(), rpc.span_id, 1.0)
        assert attached == 2
        spans = {sp.name: sp for sp in local.spans()}
        root = spans["worker.probe"]
        leaf = spans["worker.leaf"]
        assert root.parent_id == rpc.span_id
        assert leaf.parent_id == root.span_id
        local_ids = {sp.span_id for sp in local.spans()}
        assert len(local_ids) == len(local.spans())  # no id collisions

    def test_remote_starts_shift_by_base(self):
        remote = Tracer()
        with remote.span("worker.scan"):
            pass
        (remote_span,) = remote.spans()
        local = Tracer()
        local.attach_remote_spans([remote_span], None, 10.0)
        (stitched,) = local.spans()
        assert stitched.start == 10.0 + remote_span.start

    def test_two_shards_with_identical_ids_do_not_collide(self):
        def shard_spans():
            tracer = Tracer()
            with tracer.span("worker.probe"):
                pass
            return tracer.spans()

        a, b = shard_spans(), shard_spans()
        assert a[0].span_id == b[0].span_id  # both numbered from 1
        local = Tracer()
        rpc_a = local.add_span_at("rpc.probe", 0.0, 1.0, shard=0)
        rpc_b = local.add_span_at("rpc.probe", 0.0, 1.0, shard=1)
        local.attach_remote_spans(a, rpc_a.span_id, 0.0)
        local.attach_remote_spans(b, rpc_b.span_id, 0.0)
        ids = [sp.span_id for sp in local.spans()]
        assert len(ids) == len(set(ids))

    def test_empty_remote_list_is_a_noop(self):
        local = Tracer()
        assert local.attach_remote_spans([], 1, 0.0) == 0
        assert local.spans() == []

    def test_stitched_tree_renders_as_one_flame(self):
        local = Tracer()
        with local.span("net.query"):
            parent = local.current_span_id()
        rpc = local.add_span_at("rpc.probe", 0.0, 0.5, parent_id=parent, shard=0)
        local.attach_remote_spans(self._remote_spans(), rpc.span_id, 0.0)
        text = render_spans(local.spans())
        assert "net.query" in text
        assert "rpc.probe" in text
        assert "worker.probe" in text
        assert "worker.leaf" in text


class TestNullTracerPropagation:
    def test_all_propagation_ops_are_noops(self):
        assert NULL_TRACER.now() == 0.0
        assert NULL_TRACER.new_span_id() == 0
        assert NULL_TRACER.current_span_id() is None
        assert NULL_TRACER.current_trace_id() is None
        with NULL_TRACER.adopt(5, "deadbeefdeadbeef"):
            assert NULL_TRACER.current_trace_id() is None
        assert NULL_TRACER.add_span_at("x", 0.0, 1.0) is None
        remote = [
            Span(span_id=1, parent_id=None, name="w", start=0.0,
                 duration=1.0, thread="t")
        ]
        assert NULL_TRACER.attach_remote_spans(remote, None, 0.0) == 0
        assert NULL_TRACER.spans() == []
