"""Observability layer tests: tracing, registry, exporters, bridges."""
