"""LatencyHistogram edge cases: extreme quantiles, merges, clamping."""

from __future__ import annotations

import pytest

from repro.obs import BUCKET_BOUNDS, LatencyHistogram, MetricsRegistry, format_seconds


class TestExtremeQuantiles:
    def test_q0_and_q1_on_populated_histogram(self):
        hist = LatencyHistogram()
        for value in (1e-5, 2e-4, 3e-3):
            hist.record(value)
        # q=0 reports the first occupied bucket's bound, q=1 the max.
        assert 0.0 < hist.quantile(0.0) <= 2e-5
        assert hist.quantile(1.0) == pytest.approx(3e-3)
        assert hist.quantile(0.0) <= hist.quantile(1.0)

    def test_q0_and_q1_on_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 0.0


class TestTopBucketClamp:
    def test_overflow_observation_clamps_to_max(self):
        hist = LatencyHistogram()
        huge = BUCKET_BOUNDS[-1] * 10  # beyond the last finite bucket
        hist.record(huge)
        # The overflow bucket has no upper bound: the quantile must
        # report the observed max, not a bucket bound.
        assert hist.quantile(0.99) == pytest.approx(huge)
        assert hist.quantile(1.0) == pytest.approx(huge)

    def test_in_bucket_quantile_clamps_to_observed_max(self):
        hist = LatencyHistogram()
        value = 1.5e-6  # inside the [1us, 2us) bucket
        hist.record(value)
        # The bucket bound (2us) overshoots the only observation.
        assert hist.quantile(0.5) == pytest.approx(value)


class TestMerge:
    def test_merge_empty_into_populated_is_identity(self):
        hist = LatencyHistogram()
        hist.record(1e-3)
        before = (hist.count, hist.total, hist.max, hist.bucket_counts())
        hist.merge(LatencyHistogram())
        assert (hist.count, hist.total, hist.max, hist.bucket_counts()) == before

    def test_merge_populated_into_empty(self):
        source = LatencyHistogram()
        source.record(1e-3)
        source.record(2e-2)
        target = LatencyHistogram()
        target.merge(source)
        assert target.count == 2
        assert target.total == pytest.approx(source.total)
        assert target.max == pytest.approx(2e-2)

    def test_merge_then_quantile_matches_single_histogram(self):
        values_a = [1e-5, 3e-4, 2e-3, 8e-3]
        values_b = [5e-6, 7e-4, 4e-2, 0.3, 1.2]
        merged = LatencyHistogram()
        part_a, part_b = LatencyHistogram(), LatencyHistogram()
        for value in values_a:
            part_a.record(value)
        for value in values_b:
            part_b.record(value)
        for value in values_a + values_b:
            merged.record(value)
        part_a.merge(part_b)
        for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0):
            assert part_a.quantile(q) == pytest.approx(merged.quantile(q))
        assert part_a.count == merged.count
        assert part_a.total == pytest.approx(merged.total)
        assert part_a.bucket_counts() == merged.bucket_counts()

    def test_merge_between_registry_histograms_shares_one_lock(self):
        registry = MetricsRegistry()
        a = registry.histogram("a_seconds")._solo()
        b = registry.histogram("b_seconds")._solo()
        assert a.lock is b.lock
        b.record(1e-3)
        a.merge(b)  # single re-entrant acquisition, must not deadlock
        assert a.count == 1

    def test_merge_across_registries_acquires_both_locks(self):
        a = MetricsRegistry().histogram("a_seconds")._solo()
        b = MetricsRegistry().histogram("b_seconds")._solo()
        assert a.lock is not b.lock
        b.record(1e-3)
        a.merge(b)
        b.merge(a)  # opposite direction: id-ordered locking, no deadlock
        assert a.count == 1
        assert b.count == 2


class TestFormatSecondsMinutes:
    def test_minutes_form_beyond_sixty_seconds(self):
        assert format_seconds(60.0) == "1m0.0s"
        assert format_seconds(312.4) == "5m12.4s"
        assert format_seconds(59.99) == "59.99s"
