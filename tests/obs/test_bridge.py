"""JobEvent bridging and the hot-path stat collectors."""

from __future__ import annotations

import time

from repro.core.kernels import KERNEL_STATS, FeatureMatrix, cross_stsim
from repro.database.index import INDEX_STATS
from repro.ingest.progress import JobEvent
from repro.obs import (
    JobEventBridge,
    MetricsRegistry,
    Tracer,
    install_tracer,
    register_default_collectors,
)

import numpy as np


def _event(kind: str, **overrides) -> JobEvent:
    defaults = dict(
        kind=kind,
        title="demo",
        key="abcdef0123456789",
        attempt=1,
        wall_time=0.5,
    )
    defaults.update(overrides)
    return JobEvent(**defaults)


class TestJobEventBridge:
    def test_counts_events_and_outcomes(self):
        registry = MetricsRegistry()
        bridge = JobEventBridge(registry)
        bridge(_event("queued", attempt=0, wall_time=0.0))
        bridge(_event("started", wall_time=0.0))
        bridge(_event("finished", shots=16, scenes=3))
        view = registry.snapshot()
        assert view["ingest_events_total{kind=queued}"] == 1.0
        assert view["ingest_events_total{kind=finished}"] == 1.0
        assert view["ingest_jobs_total{outcome=finished}"] == 1.0
        assert view["ingest_job_seconds_count"] == 1.0
        # Non-terminal events don't count as outcomes.
        assert "ingest_jobs_total{outcome=started}" not in view

    def test_terminal_events_become_backdated_spans(self):
        registry = MetricsRegistry()
        bridge = JobEventBridge(registry)
        tracer = Tracer()
        previous = install_tracer(tracer)
        try:
            bridge(_event("finished", shots=16, scenes=3, wall_time=0.25))
            bridge(_event("started", wall_time=0.0))  # no span
        finally:
            install_tracer(previous)
        (span,) = tracer.spans()
        assert span.name == "ingest.job:demo"
        assert span.duration == 0.25
        assert span.attributes["outcome"] == "finished"
        assert span.attributes["key"] == "abcdef012345"
        assert span.attributes["shots"] == 16

    def test_no_spans_while_tracing_disabled(self):
        registry = MetricsRegistry()
        bridge = JobEventBridge(registry)
        bridge(_event("failed", message="boom"))  # must not raise
        assert registry.snapshot()["ingest_jobs_total{outcome=failed}"] == 1.0

    def test_wrap_composes_with_existing_callback(self):
        registry = MetricsRegistry()
        bridge = JobEventBridge(registry)
        seen: list[str] = []
        composed = bridge.wrap(lambda event: seen.append(event.kind))
        composed(_event("cached"))
        assert seen == ["cached"]
        assert registry.snapshot()["ingest_jobs_total{outcome=cached}"] == 1.0
        assert bridge.wrap(None) is bridge


class TestJobEventTimestamp:
    def test_timestamp_defaults_to_monotonic_now(self):
        before = time.perf_counter()
        event = _event("queued")
        after = time.perf_counter()
        assert before <= event.timestamp <= after

    def test_describe_output_unchanged_by_timestamp(self):
        event = _event("finished", shots=16, scenes=3, timestamp=123.0)
        text = event.describe()
        assert "123" not in text
        assert "demo" in text
        assert "16 shots" in text and "3 scenes" in text


class TestHotPathCollectors:
    def test_kernel_stats_observe_batch_work(self):
        KERNEL_STATS.reset()
        rng = np.random.default_rng(0)
        histograms = rng.random((4, 16))
        histograms /= histograms.sum(axis=1, keepdims=True)
        textures = rng.random((4, 10)) * 0.3
        matrix = FeatureMatrix(list(histograms), list(textures))
        cross_stsim(matrix, matrix)
        assert KERNEL_STATS.packs >= 1
        assert KERNEL_STATS.packed_rows >= 4
        assert KERNEL_STATS.chunks >= 1
        assert KERNEL_STATS.pair_evals >= 16

    def test_register_default_collectors(self):
        registry = MetricsRegistry()
        register_default_collectors(registry)
        view = registry.snapshot()
        for name in (
            "kernel_packs_total",
            "kernel_pair_evals_total",
            "index_descents_total",
            "index_block_cache_hits_total",
        ):
            assert name in view

    def test_stats_reset_and_snapshot(self):
        KERNEL_STATS.reset()
        assert KERNEL_STATS.snapshot() == {
            "packs": 0,
            "packed_rows": 0,
            "chunks": 0,
            "pair_evals": 0,
        }
        INDEX_STATS.reset()
        assert set(INDEX_STATS.snapshot()) == {
            "descents",
            "routes",
            "center_block_builds",
            "block_hits",
            "block_misses",
        }
