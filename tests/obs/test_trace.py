"""Span tracing: nesting, serialisation, rendering, the null tracer."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    install_tracer,
    load_trace,
    render_spans,
)
from repro.obs import trace as trace_module


class TestTracer:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        spans = {span.name: span for span in tracer.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner.a"].parent_id == spans["outer"].span_id
        assert spans["inner.b"].parent_id == spans["outer"].span_id
        # Children complete before the parent in the record order.
        assert [span.name for span in tracer.spans()] == [
            "inner.a",
            "inner.b",
            "outer",
        ]

    def test_attributes_at_open_and_mid_span(self):
        tracer = Tracer()
        with tracer.span("work", items=3) as sp:
            sp.set(done=True)
        (span,) = tracer.spans()
        assert span.attributes == {"items": 3, "done": True}

    def test_durations_are_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration
        assert outer.start <= inner.start

    def test_threads_nest_independently(self):
        tracer = Tracer()

        def worker():
            with tracer.span("thread-root"):
                pass

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        spans = {span.name: span for span in tracer.spans()}
        # The other thread's stack is empty: its span is a root, not a
        # child of the main thread's open span.
        assert spans["thread-root"].parent_id is None
        assert spans["main-root"].parent_id is None

    def test_add_span_backdates(self):
        tracer = Tracer()
        now = tracer._clock()
        span = tracer.add_span("bridged", start=now - 1.0, duration=1.0, key="abc")
        assert span.duration == 1.0
        assert span.attributes == {"key": "abc"}
        assert tracer.spans() == [span]

    def test_add_span_nests_under_open_span(self):
        tracer = Tracer()
        with tracer.span("parent"):
            bridged = tracer.add_span("child", start=tracer._clock(), duration=0.0)
        parent = tracer.spans()[-1]
        assert bridged.parent_id == parent.span_id

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.spans() == []


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", title="demo"):
            with tracer.span("inner"):
                pass
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert [s.to_json() for s in loaded] == [
            s.to_json() for s in tracer.spans()
        ]

    def test_empty_trace_round_trip(self, tmp_path):
        path = Tracer().write_jsonl(tmp_path / "empty.jsonl")
        assert load_trace(path) == []

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ObservabilityError):
            load_trace(path)

    def test_malformed_span_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"span_id": 1}\n')
        with pytest.raises(ObservabilityError):
            load_trace(path)


class TestRender:
    def test_tree_shape_and_shares(self):
        spans = [
            Span(2, 1, "child.fast", 0.0, 0.25, "main"),
            Span(3, 1, "child.slow", 0.25, 0.75, "main"),
            Span(1, None, "root", 0.0, 1.0, "main", {"title": "demo"}),
        ]
        text = render_spans(spans)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "title=demo" in lines[0]
        assert "(25%)" in lines[1] and "child.fast" in lines[1]
        assert "(75%)" in lines[2] and "child.slow" in lines[2]
        assert "└─" in lines[2]

    def test_orphans_render_as_roots_without_share(self):
        spans = [Span(5, 99, "orphan", 0.0, 0.5, "main")]
        text = render_spans(spans)
        assert "orphan" in text
        assert "%" not in text

    def test_children_beyond_max_are_elided(self):
        spans = [Span(1, None, "root", 0.0, 1.0, "main")]
        spans += [
            Span(2 + i, 1, f"child{i}", i * 0.01, 0.01, "main") for i in range(10)
        ]
        text = render_spans(spans, max_spans=3)
        assert "7 more spans elided" in text

    def test_empty(self):
        assert render_spans([]) == "(empty trace)"


class TestNullTracer:
    def test_span_handle_is_shared_and_noop(self):
        null = NullTracer()
        handle_a = null.span("a", key=1)
        handle_b = null.span("b")
        assert handle_a is handle_b  # the zero-allocation contract
        with handle_a as sp:
            sp.set(anything=True)
        assert null.spans() == []
        assert null.render() == "(tracing disabled)"
        assert null.add_span("x", start=0.0, duration=1.0) is None

    def test_install_and_restore(self):
        assert active_tracer() is NULL_TRACER
        tracer = Tracer()
        previous = install_tracer(tracer)
        try:
            assert previous is NULL_TRACER
            assert active_tracer() is tracer
            with trace_module.span("via-module"):
                pass
            assert [s.name for s in tracer.spans()] == ["via-module"]
        finally:
            install_tracer(previous)
        assert active_tracer() is NULL_TRACER

    def test_module_span_is_noop_when_disabled(self):
        assert active_tracer() is NULL_TRACER
        with trace_module.span("ignored") as sp:
            assert sp is trace_module._NULL_HANDLE

    def test_install_none_restores_null(self):
        install_tracer(Tracer())
        install_tracer(None)
        assert active_tracer() is NULL_TRACER
