"""Merged Prometheus exposition of several registry dumps."""

from __future__ import annotations

from repro.obs import (
    LatencyHistogram,
    MetricsRegistry,
    render_prometheus,
    render_prometheus_dumps,
    validate_prometheus_text,
)


def _worker_registry(requests: int, latency: float) -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter(
        "net_worker_requests_total", "Requests handled.", labelnames=("op",)
    )
    counter.labels(op="probe").inc(requests)
    registry.histogram("net_worker_op_seconds", "Op latency.").record(latency)
    return registry


class TestDumpRoundTrip:
    def test_dump_carries_families_and_collectors(self):
        registry = _worker_registry(3, 0.01)
        registry.register_collector(lambda: {"worker_up": 1.0})
        dump = registry.dump()
        names = {fam["name"] for fam in dump["families"]}
        assert names == {"net_worker_requests_total", "net_worker_op_seconds"}
        assert dump["collected"] == {"worker_up": 1.0}

    def test_dump_is_json_plain(self):
        import json

        json.dumps(_worker_registry(1, 0.5).dump())

    def test_histogram_state_round_trips(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.5, 120.0):
            histogram.record(value)
        rebuilt = LatencyHistogram.from_state(histogram.state())
        assert rebuilt.bucket_counts() == histogram.bucket_counts()
        assert rebuilt.total == histogram.total
        assert rebuilt.count == histogram.count


class TestMergedRender:
    def test_shard_labels_prefix_every_sample(self):
        text = render_prometheus_dumps(
            [
                ({"shard": "0"}, _worker_registry(2, 0.1).dump()),
                ({"shard": "1"}, _worker_registry(5, 0.2).dump()),
            ]
        )
        assert 'net_worker_requests_total{shard="0",op="probe"} 2.0' in text
        assert 'net_worker_requests_total{shard="1",op="probe"} 5.0' in text
        # One TYPE header per family, not per source.
        assert text.count("# TYPE net_worker_requests_total counter") == 1
        assert validate_prometheus_text(text) == []

    def test_unlabelled_source_merges_with_labelled(self):
        coordinator = MetricsRegistry()
        coordinator.counter("net_shard_failures_total", "Failures.").inc(4)
        text = render_prometheus_dumps(
            [
                ({}, coordinator.dump()),
                ({"shard": "0"}, _worker_registry(1, 0.1).dump()),
            ]
        )
        assert "net_shard_failures_total 4.0" in text
        assert 'net_worker_requests_total{shard="0",op="probe"} 1.0' in text

    def test_colliding_counters_sum_and_histograms_merge(self):
        a, b = _worker_registry(2, 0.01), _worker_registry(3, 10.0)
        text = render_prometheus_dumps([({}, a.dump()), ({}, b.dump())])
        assert 'net_worker_requests_total{op="probe"} 5.0' in text
        assert "net_worker_op_seconds_count 2" in text
        assert "net_worker_op_seconds_sum 10.01" in text

    def test_kind_conflict_is_skipped_not_corrupted(self):
        gauge_reg = MetricsRegistry()
        gauge_reg.gauge("ambiguous_metric", "As a gauge.").set(7.0)
        counter_reg = MetricsRegistry()
        counter_reg.counter("ambiguous_metric", "As a counter.").inc(1)
        text = render_prometheus_dumps(
            [({}, gauge_reg.dump()), ({"shard": "0"}, counter_reg.dump())]
        )
        assert "# TYPE ambiguous_metric gauge" in text
        assert "ambiguous_metric 7.0" in text
        assert 'ambiguous_metric{shard="0"}' not in text
        assert validate_prometheus_text(text) == []

    def test_collected_gauges_carry_source_labels(self):
        registry = MetricsRegistry()
        registry.register_collector(lambda: {"worker_cache_entries": 12.0})
        text = render_prometheus_dumps([({"shard": "3"}, registry.dump())])
        assert 'worker_cache_entries{shard="3"} 12.0' in text
        assert "# TYPE worker_cache_entries gauge" in text

    def test_single_unlabelled_dump_matches_direct_render(self):
        registry = _worker_registry(4, 0.25)
        direct = render_prometheus(registry)
        merged = render_prometheus_dumps([({}, registry.dump())])
        # Same families, samples and values; both validate.
        assert validate_prometheus_text(merged) == []
        direct_samples = sorted(
            line for line in direct.splitlines() if not line.startswith("#")
        )
        merged_samples = sorted(
            line for line in merged.splitlines() if not line.startswith("#")
        )
        assert direct_samples == merged_samples

    def test_empty_input_renders_empty(self):
        assert render_prometheus_dumps([]) == ""
