"""Metric families, the registry, collectors and the global instance."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, get_registry


class TestCountersAndGauges:
    def test_counter_counts_up_only(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        gauge.set(4)
        gauge.inc(-1)
        assert gauge.value == 3.0

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ObservabilityError):
            registry.gauge("a_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("bad name")
        with pytest.raises(ObservabilityError):
            registry.counter("9starts_with_digit")


class TestLabels:
    def test_labeled_children_are_distinct(self):
        registry = MetricsRegistry()
        family = registry.counter("events_total", labelnames=("kind",))
        family.labels(kind="a").inc()
        family.labels(kind="b").inc(2)
        assert family.labels(kind="a").value == 1
        assert family.labels(kind="b").value == 2
        assert len(family.samples()) == 2

    def test_wrong_labels_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("events_total", labelnames=("kind",))
        with pytest.raises(ObservabilityError):
            family.labels(other="x")
        with pytest.raises(ObservabilityError):
            family.inc()  # labeled family has no unlabeled child

    def test_labelname_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("events_total", labelnames=("kind",))
        with pytest.raises(ObservabilityError):
            registry.counter("events_total", labelnames=("other",))


class TestSnapshotAndReset:
    def test_snapshot_flattens_families_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc(2)
        registry.gauge("inflight").set(1)
        registry.counter("events_total", labelnames=("kind",)).labels(
            kind="done"
        ).inc()
        registry.histogram("latency_seconds").record(2e-3)
        view = registry.snapshot()
        assert view["jobs_total"] == 2.0
        assert view["inflight"] == 1.0
        assert view["events_total{kind=done}"] == 1.0
        assert view["latency_seconds_count"] == 1.0
        assert view["latency_seconds_sum"] == pytest.approx(2e-3)
        assert view["latency_seconds_p50"] >= 2e-3

    def test_reset_zeroes_values_but_keeps_families(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0.0
        assert registry.counter("jobs_total") is counter

    def test_registry_metrics_share_one_lock(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds")._solo()
        assert histogram.lock is registry.lock
        # Re-entrant: snapshot while holding the lock must not deadlock.
        with registry.lock:
            registry.snapshot()


class TestCollectors:
    def test_collectors_merge_into_snapshot(self):
        registry = MetricsRegistry()
        registry.register_collector(lambda: {"hot_path_total": 7.0})
        assert registry.snapshot()["hot_path_total"] == 7.0
        assert registry.collect() == {"hot_path_total": 7.0}

    def test_unregister(self):
        registry = MetricsRegistry()
        collector = registry.register_collector(lambda: {"x": 1.0})
        registry.unregister_collector(collector)
        assert registry.collect() == {}
        registry.unregister_collector(collector)  # second removal is a no-op


class TestGlobalRegistry:
    def test_singleton_with_default_collectors(self):
        registry = get_registry()
        assert get_registry() is registry
        view = registry.snapshot()
        # The kernel and index hot-path collectors are pre-registered.
        assert "kernel_packs_total" in view
        assert "index_descents_total" in view

    def test_concurrent_increments_are_consistent(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000.0
