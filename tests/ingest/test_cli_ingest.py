"""The `classminer ingest` and `classminer cache` subcommands."""

from __future__ import annotations

import argparse

import pytest

from repro.cli import build_parser, main
from repro.storage.schema import catalog_path


@pytest.fixture(scope="module")
def db_dir(tmp_path_factory):
    """A database directory populated by one real CLI ingest."""
    directory = tmp_path_factory.mktemp("cli-ingest")
    assert main(["ingest", "demo", "--db-dir", str(directory), "--quiet"]) == 0
    return directory


class TestIngestCommand:
    def test_ingest_writes_database(self, tmp_path, capsys):
        assert main(["ingest", "demo", "--db-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert catalog_path(tmp_path).exists()
        assert "ingest summary" in out
        assert "1 mined, 0 cached, 0 failed" in out
        assert "database:" in out

    def test_second_ingest_hits_cache(self, db_dir, capsys):
        assert main(["ingest", "demo", "--db-dir", str(db_dir)]) == 0
        out = capsys.readouterr().out
        assert "cached" in out
        assert "0 mined, 1 cached, 0 failed" in out

    def test_quiet_suppresses_event_lines(self, db_dir, capsys):
        assert main(["ingest", "demo", "--db-dir", str(db_dir), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "[  cached]" not in out
        assert "ingest summary" in out

    def test_unknown_title_exits_nonzero(self, tmp_path, capsys):
        assert main(["ingest", "atlantis", "--db-dir", str(tmp_path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_flags_are_parsed(self, tmp_path):
        parser = build_parser()
        args = parser.parse_args(
            [
                "ingest",
                "demo",
                "corpus",
                "--db-dir",
                str(tmp_path),
                "--workers",
                "3",
                "--force",
                "--seed",
                "7",
                "--timeout",
                "42.5",
                "--retries",
                "1",
                "--quiet",
            ]
        )
        assert args.titles == ["demo", "corpus"]
        assert args.workers == 3
        assert args.force is True
        assert args.seed == 7
        assert args.timeout == 42.5
        assert args.retries == 1
        assert args.quiet is True

    def test_flags_documented_in_help(self):
        parser = build_parser()
        sub = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        help_text = sub.choices["ingest"].format_help()
        for flag in ("--db-dir", "--workers", "--force", "--seed", "--retries"):
            assert flag in help_text
        assert "--db-dir" in sub.choices["cache"].format_help()


class TestCacheCommand:
    def test_cache_list_shows_artifact(self, db_dir, capsys):
        assert main(["cache", "list", "--db-dir", str(db_dir)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "KiB" in out

    def test_cache_clear_then_list_empty(self, db_dir, capsys):
        assert main(["cache", "clear", "--db-dir", str(db_dir)]) == 0
        assert main(["cache", "list", "--db-dir", str(db_dir)]) == 0
        out = capsys.readouterr().out
        assert "no artifacts" in out
