"""End-to-end ingest: titles in, cached artifacts and a queryable DB out."""

from __future__ import annotations

import pytest

import repro.ingest.executor as executor
from repro.database.index import combine_features
from repro.ingest.jobs import IngestJob
from repro.ingest.runner import (
    ingest_corpus,
    ingest_jobs,
    load_database,
    manifest_for,
    store_for,
)
from repro.ingest.smoke import MIN_SPEEDUP, run_smoke


@pytest.fixture(scope="module")
def ingested(tmp_path_factory):
    """One real cold ingest of the demo title (shared by the module)."""
    db_dir = tmp_path_factory.mktemp("ingest-e2e")
    report = ingest_corpus(["demo"], db_dir, workers=1)
    return db_dir, report


class TestIngestToQuery:
    def test_cold_ingest_mines_and_registers(self, ingested):
        db_dir, report = ingested
        assert report.ok
        assert [o.state for o in report.outcomes] == ["done"]
        assert report.registered == ["demo"]
        assert report.database_path is not None
        assert report.database_path.exists()
        assert manifest_for(db_dir).counts()["done"] == 1

    def test_ingested_database_answers_queries(self, ingested):
        db_dir, _report = ingested
        database = load_database(db_dir)
        assert "demo" in database.videos
        assert database.shot_count > 0
        # Query with the features of an ingested shot: it must come back.
        key = IngestJob.for_title("demo").key
        result = store_for(db_dir).load(key)
        shot = result.structure.shots[0]
        hits = database.search(combine_features(shot.histogram, shot.texture), k=5)
        assert hits.hits
        assert hits.top.entry.video_title == "demo"

    def test_warm_rerun_is_fully_cached(self, ingested):
        db_dir, _report = ingested
        report = ingest_corpus(["demo"], db_dir, workers=1)
        assert [o.state for o in report.outcomes] == ["cached"]
        assert report.ok
        database = load_database(db_dir)
        assert "demo" in database.videos

    def test_disjoint_ingest_keeps_earlier_titles(
        self, tmp_path, demo_result, monkeypatch
    ):
        # Ingesting a new title later must not drop previously ingested
        # videos from database.json: artifacts are the source of truth.
        monkeypatch.setattr(executor, "_mine_job", lambda _job: demo_result)
        first = ingest_jobs([IngestJob.for_title("demo", seed=0)], tmp_path)
        assert first.registered == ["demo"]

        import dataclasses

        other = dataclasses.replace(
            demo_result,
            structure=dataclasses.replace(
                demo_result.structure, title="laparoscopy"
            ),
        )
        monkeypatch.setattr(executor, "_mine_job", lambda _job: other)
        second = ingest_jobs([IngestJob.for_title("laparoscopy")], tmp_path)
        assert sorted(second.registered) == ["demo", "laparoscopy"]
        assert sorted(load_database(tmp_path).videos) == ["demo", "laparoscopy"]

    def test_partial_failure_keeps_database_consistent(
        self, tmp_path, demo_result, monkeypatch
    ):
        def picky(job):
            if job.seed == 1:
                raise RuntimeError("bad batch")
            return demo_result

        monkeypatch.setattr(executor, "_mine_job", picky)
        jobs = [
            IngestJob.for_title("demo", seed=0),
            IngestJob.for_title("demo", seed=1),
        ]
        report = ingest_jobs(
            jobs,
            tmp_path,
            policy=executor.RetryPolicy(retries=0),
            strict=False,
        )
        assert len(report.failed) == 1
        assert not report.ok
        # The successful artifact still produced a loadable database.
        database = load_database(tmp_path)
        assert list(database.videos) == ["demo"]

    def test_strict_failure_raises_after_db_rebuild(
        self, tmp_path, demo_result, monkeypatch
    ):
        monkeypatch.setattr(
            executor,
            "_mine_job",
            lambda _job: (_ for _ in ()).throw(RuntimeError("down")),
        )
        from repro.errors import IngestError

        with pytest.raises(IngestError):
            ingest_corpus(
                ["demo"], tmp_path, policy=executor.RetryPolicy(retries=0)
            )

    def test_unknown_title_rejected(self, tmp_path):
        from repro.errors import IngestError

        with pytest.raises(IngestError):
            ingest_corpus(["atlantis"], tmp_path)


class TestSmoke:
    def test_smoke_cold_vs_warm_speedup(self, capsys):
        # The `make ingest-smoke` path: 2 workers, warm run >= 5x faster.
        assert run_smoke(workers=2) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert MIN_SPEEDUP == 5.0
