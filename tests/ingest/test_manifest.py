"""The JSON-lines job manifest: journaling, replay, crash tolerance."""

from __future__ import annotations

import json

import pytest

from repro.errors import IngestError
from repro.ingest.manifest import JOB_STATES, JobManifest

KEY_A = "a" * 64
KEY_B = "b" * 64


@pytest.fixture()
def manifest(tmp_path):
    """An empty manifest in a temp directory."""
    return JobManifest(tmp_path / "manifest.jsonl")


class TestRecording:
    def test_record_and_state_of(self, manifest):
        manifest.record(KEY_A, "demo", "pending")
        assert manifest.state_of(KEY_A) == "pending"
        assert manifest.state_of(KEY_B) is None

    def test_latest_record_wins(self, manifest):
        manifest.record(KEY_A, "demo", "pending")
        manifest.record(KEY_A, "demo", "running", attempt=1)
        manifest.record(KEY_A, "demo", "done", attempt=1)
        assert manifest.state_of(KEY_A) == "done"
        # All three transitions are journaled, only the last is live.
        assert len(manifest.path.read_text().splitlines()) == 3
        assert len(manifest.records()) == 1

    def test_unknown_state_raises_typed_error(self, manifest):
        with pytest.raises(IngestError):
            manifest.record(KEY_A, "demo", "exploded")

    def test_error_text_is_kept(self, manifest):
        manifest.record(KEY_A, "demo", "failed", attempt=3, error="boom")
        record = manifest.get(KEY_A)
        assert record.error == "boom"
        assert record.attempt == 3

    def test_counts_and_done_keys(self, manifest):
        manifest.record(KEY_A, "demo", "done", attempt=1)
        manifest.record(KEY_B, "laparoscopy", "failed", attempt=2, error="x")
        counts = manifest.counts()
        assert counts["done"] == 1
        assert counts["failed"] == 1
        assert set(counts) == set(JOB_STATES)
        assert manifest.done_keys() == {KEY_A}


class TestReplay:
    def test_replay_after_reopen(self, manifest):
        manifest.record(KEY_A, "demo", "running", attempt=1)
        manifest.record(KEY_A, "demo", "done", attempt=1)
        manifest.record(KEY_B, "laparoscopy", "running", attempt=1)
        reopened = JobManifest(manifest.path)
        assert reopened.state_of(KEY_A) == "done"
        assert reopened.state_of(KEY_B) == "running"

    def test_torn_trailing_line_is_skipped(self, manifest):
        manifest.record(KEY_A, "demo", "done", attempt=1)
        # Simulate a crash mid-append: half a JSON object at the end.
        with manifest.path.open("a") as handle:
            handle.write('{"key": "' + KEY_B + '", "sta')
        reopened = JobManifest(manifest.path)
        assert reopened.state_of(KEY_A) == "done"
        assert reopened.state_of(KEY_B) is None

    def test_unknown_state_in_journal_is_skipped(self, manifest):
        manifest.record(KEY_A, "demo", "done", attempt=1)
        with manifest.path.open("a") as handle:
            handle.write(json.dumps({"key": KEY_A, "state": "exploded"}) + "\n")
        reopened = JobManifest(manifest.path)
        assert reopened.state_of(KEY_A) == "done"

    def test_clear_truncates_journal(self, manifest):
        manifest.record(KEY_A, "demo", "done", attempt=1)
        manifest.clear()
        assert manifest.state_of(KEY_A) is None
        assert manifest.path.read_text() == ""
        assert JobManifest(manifest.path).records() == []
