"""Cache-key determinism and job construction."""

from __future__ import annotations

import pytest

from repro.core.structure import MiningConfig
from repro.errors import IngestError
from repro.ingest.jobs import IngestJob, cache_key, jobs_for_titles
from repro.video.synthesis import CORPUS_TITLES, demo_screenplay


class TestCacheKey:
    def test_same_inputs_same_key(self):
        # Fresh objects on both sides: the key must depend on content only.
        a = cache_key(demo_screenplay(), 0, MiningConfig())
        b = cache_key(demo_screenplay(), 0, MiningConfig())
        assert a == b

    def test_key_is_hex_sha256(self):
        key = IngestJob.for_title("demo").key
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_seed_changes_key(self):
        play = demo_screenplay()
        assert cache_key(play, 0, MiningConfig()) != cache_key(play, 1, MiningConfig())

    def test_config_changes_key(self):
        play = demo_screenplay()
        base = cache_key(play, 0, MiningConfig())
        tweaked = cache_key(play, 0, MiningConfig(min_scene_shots=4))
        assert base != tweaked

    def test_mine_events_flag_changes_key(self):
        play = demo_screenplay()
        assert cache_key(play, 0, MiningConfig(), mine_events=True) != cache_key(
            play, 0, MiningConfig(), mine_events=False
        )

    def test_screenplay_changes_key(self):
        demo_key = IngestJob.for_title("demo").key
        corpus_key = IngestJob.for_title("face_repair").key
        assert demo_key != corpus_key

    def test_job_key_is_stable_across_instances(self):
        assert IngestJob.for_title("demo").key == IngestJob.for_title("demo").key


class TestJobsForTitles:
    def test_corpus_shorthand_expands(self):
        jobs = jobs_for_titles(["corpus"])
        assert [job.title for job in jobs] == list(CORPUS_TITLES)

    def test_all_shorthand_includes_demo(self):
        jobs = jobs_for_titles(["all"])
        assert [job.title for job in jobs] == ["demo", *CORPUS_TITLES]

    def test_duplicates_dropped_in_order(self):
        jobs = jobs_for_titles(["demo", "face_repair", "demo"])
        assert [job.title for job in jobs] == ["demo", "face_repair"]

    def test_unknown_title_raises_typed_error(self):
        with pytest.raises(IngestError):
            jobs_for_titles(["atlantis"])
