"""Artifact store round-trips: lossless save/load of mined results."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import ClassMiner
from repro.errors import IngestError
from repro.ingest.artifacts import (
    ArtifactStore,
    decode_result,
    encode_result,
    results_equal,
)
from repro.ingest.jobs import IngestJob


@pytest.fixture(scope="module")
def structure_only_result(demo_stream):
    """A mine_events=False run: events is None, cue/audio dicts empty."""
    return ClassMiner().mine(demo_stream, mine_events=False)


@pytest.fixture()
def store(tmp_path):
    """An empty artifact store in a temp directory."""
    return ArtifactStore(tmp_path / "artifacts")


KEY = IngestJob.for_title("demo").key


class TestRoundTrip:
    def test_full_result_round_trips_losslessly(self, store, demo_result):
        store.save(KEY, demo_result)
        loaded = store.load(KEY)
        assert results_equal(demo_result, loaded)

    def test_round_trip_preserves_structure(self, store, demo_result):
        store.save(KEY, demo_result)
        loaded = store.load(KEY)
        assert loaded.title == demo_result.title
        assert loaded.structure.level_sizes() == demo_result.structure.level_sizes()
        for original, restored in zip(
            demo_result.structure.shots, loaded.structure.shots
        ):
            assert restored.shot_id == original.shot_id
            assert (restored.start, restored.stop) == (original.start, original.stop)
            assert np.array_equal(restored.histogram, original.histogram)
            assert np.array_equal(restored.texture, original.texture)
        assert [s.shot_ids for s in loaded.structure.scenes] == [
            s.shot_ids for s in demo_result.structure.scenes
        ]

    def test_round_trip_preserves_events_and_cues(self, store, demo_result):
        store.save(KEY, demo_result)
        loaded = store.load(KEY)
        assert loaded.scene_events() == demo_result.scene_events()
        assert set(loaded.cues) == set(demo_result.cues)
        assert set(loaded.audio) == set(demo_result.audio)
        some_shot = next(iter(demo_result.audio))
        assert np.array_equal(
            loaded.audio[some_shot].mfcc_vectors,
            demo_result.audio[some_shot].mfcc_vectors,
        )

    def test_events_disabled_round_trips(self, store, structure_only_result):
        # The gap this PR closes: events=None and empty cue/audio dicts
        # must survive the round trip instead of crashing the encoder.
        store.save(KEY, structure_only_result)
        loaded = store.load(KEY)
        assert loaded.events is None
        assert loaded.cues == {}
        assert loaded.audio == {}
        assert results_equal(structure_only_result, loaded)

    def test_encode_decode_without_disk(self, demo_result):
        meta, arrays = encode_result(demo_result)
        rebuilt = decode_result(meta, arrays)
        assert results_equal(demo_result, rebuilt)

    def test_results_equal_detects_difference(
        self, demo_result, structure_only_result
    ):
        assert results_equal(demo_result, demo_result)
        assert not results_equal(demo_result, structure_only_result)


class TestStore:
    def test_has_and_path_for(self, store, demo_result):
        assert not store.has(KEY)
        path = store.save(KEY, demo_result)
        assert store.has(KEY)
        assert path == store.path_for(KEY)
        assert path.parent.name == KEY[:2]

    def test_missing_artifact_raises_typed_error(self, store):
        with pytest.raises(IngestError):
            store.load(KEY)

    def test_corrupt_meta_raises_typed_error(self, store, demo_result):
        store.save(KEY, demo_result)
        (store.path_for(KEY) / "meta.json").write_text("{not json")
        with pytest.raises(IngestError):
            store.load(KEY)

    def test_format_version_mismatch_raises(self, store, demo_result):
        store.save(KEY, demo_result)
        meta_path = store.path_for(KEY) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(IngestError):
            store.load(KEY)

    def test_save_overwrites_existing_artifact(self, store, demo_result):
        store.save(KEY, demo_result, extra_meta={"marker": "first"})
        store.save(KEY, demo_result, extra_meta={"marker": "second"})
        assert store.read_meta(KEY)["marker"] == "second"
        assert results_equal(store.load(KEY), demo_result)

    def test_extra_meta_is_merged(self, store, demo_result):
        store.save(KEY, demo_result, extra_meta={"seed": 7})
        meta = store.read_meta(KEY)
        assert meta["seed"] == 7
        assert meta["key"] == KEY

    def test_list_remove_clear(self, store, demo_result):
        other = "f" * 64
        store.save(KEY, demo_result)
        store.save(other, demo_result)
        infos = store.list()
        assert {info.key for info in infos} == {KEY, other}
        assert all(info.title == "demo" for info in infos)
        assert all(info.size_bytes > 0 for info in infos)
        assert store.remove(other)
        assert not store.remove(other)
        assert store.clear() == 1
        assert store.list() == []
