"""Executor behaviour: retries, caching, resume, pool mode, timeouts.

Faults are injected by monkeypatching ``repro.ingest.executor._mine_job``
— the single choke point both the serial and pool paths go through.
Pool workers are forked from the patched parent, so the injected
behaviour applies there too (counters, however, only increment in the
parent, so pool assertions use on-disk artifacts instead).
"""

from __future__ import annotations

import time

import pytest

import repro.ingest.executor as executor
from repro.errors import IngestError
from repro.ingest.artifacts import ArtifactStore
from repro.ingest.executor import RetryPolicy, run_jobs
from repro.ingest.jobs import IngestJob
from repro.ingest.manifest import JobManifest
from repro.ingest.progress import ProgressTracker

#: Fast-failing policy so retry tests do not sleep for real.
FAST = RetryPolicy(retries=2, backoff=0.01, backoff_factor=1.0)


@pytest.fixture()
def env(tmp_path):
    """(store, manifest) pair rooted in a temp directory."""
    store = ArtifactStore(tmp_path / "artifacts")
    manifest = JobManifest(tmp_path / "manifest.jsonl")
    return store, manifest


@pytest.fixture()
def job():
    """The demo ingest job."""
    return IngestJob.for_title("demo")


class TestRetryPolicy:
    def test_max_attempts(self):
        assert RetryPolicy(retries=0).max_attempts == 1
        assert RetryPolicy(retries=2).max_attempts == 3
        assert RetryPolicy(retries=-5).max_attempts == 1

    def test_backoff_grows(self):
        policy = RetryPolicy(retries=3, backoff=0.1, backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)


class TestRetries:
    def test_transient_failure_retried_to_success(
        self, env, job, demo_result, monkeypatch
    ):
        store, manifest = env
        calls = {"n": 0}

        def flaky(_job):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient fault")
            return demo_result

        monkeypatch.setattr(executor, "_mine_job", flaky)
        tracker = ProgressTracker()
        outcomes = run_jobs([job], store, manifest, policy=FAST, progress=tracker)
        assert outcomes[0].state == "done"
        assert outcomes[0].attempts == 3
        assert calls["n"] == 3
        assert tracker.count("retried") == 2
        assert tracker.count("finished") == 1
        assert manifest.state_of(job.key) == "done"
        assert store.has(job.key)

    def test_exhaustion_raises_typed_error(self, env, job, monkeypatch):
        store, manifest = env

        def broken(_job):
            raise RuntimeError("permanent fault")

        monkeypatch.setattr(executor, "_mine_job", broken)
        with pytest.raises(IngestError) as excinfo:
            run_jobs([job], store, manifest, policy=FAST)
        assert "demo" in str(excinfo.value)
        record = manifest.get(job.key)
        assert record.state == "failed"
        assert record.attempt == FAST.max_attempts
        assert "permanent fault" in record.error
        assert not store.has(job.key)

    def test_exhaustion_without_raise_returns_failed_outcome(
        self, env, job, monkeypatch
    ):
        store, manifest = env
        monkeypatch.setattr(
            executor, "_mine_job", lambda _job: (_ for _ in ()).throw(ValueError("x"))
        )
        tracker = ProgressTracker()
        outcomes = run_jobs(
            [job],
            store,
            manifest,
            policy=FAST,
            progress=tracker,
            raise_on_failure=False,
        )
        assert outcomes[0].state == "failed"
        assert not outcomes[0].ok
        assert outcomes[0].attempts == FAST.max_attempts
        assert "ValueError" in outcomes[0].error
        assert tracker.count("failed") == 1


class TestCaching:
    def test_second_run_hits_cache_without_mining(
        self, env, job, demo_result, monkeypatch
    ):
        store, manifest = env
        calls = {"n": 0}

        def mine(_job):
            calls["n"] += 1
            return demo_result

        monkeypatch.setattr(executor, "_mine_job", mine)
        first = run_jobs([job], store, manifest, policy=FAST)
        assert first[0].state == "done"
        assert calls["n"] == 1

        tracker = ProgressTracker()
        second = run_jobs([job], store, manifest, policy=FAST, progress=tracker)
        assert second[0].state == "cached"
        assert second[0].attempts == 0
        assert calls["n"] == 1  # mining skipped entirely
        assert tracker.count("cached") == 1
        assert tracker.count("started") == 0

    def test_force_remines_despite_cache(self, env, job, demo_result, monkeypatch):
        store, manifest = env
        calls = {"n": 0}

        def mine(_job):
            calls["n"] += 1
            return demo_result

        monkeypatch.setattr(executor, "_mine_job", mine)
        run_jobs([job], store, manifest, policy=FAST)
        forced = run_jobs([job], store, manifest, policy=FAST, force=True)
        assert forced[0].state == "done"
        assert calls["n"] == 2

    def test_cache_hit_restores_manifest_state(self, env, job, demo_result, monkeypatch):
        store, manifest = env
        monkeypatch.setattr(executor, "_mine_job", lambda _job: demo_result)
        run_jobs([job], store, manifest, policy=FAST)
        # Lose the manifest (e.g. deleted by hand); the artifact remains.
        manifest.clear()
        outcomes = run_jobs([job], store, manifest, policy=FAST)
        assert outcomes[0].state == "cached"
        assert manifest.state_of(job.key) == "done"


class TestResume:
    def test_resume_after_mid_ingest_crash(self, env, demo_result, monkeypatch):
        store, manifest = env
        job_a = IngestJob.for_title("demo", seed=0)
        job_b = IngestJob.for_title("demo", seed=1)
        mined = {"n": 0}

        def crashy(job):
            if job.seed == 1:
                raise KeyboardInterrupt  # simulate ctrl-C mid-ingest
            mined["n"] += 1
            return demo_result

        monkeypatch.setattr(executor, "_mine_job", crashy)
        with pytest.raises(KeyboardInterrupt):
            run_jobs([job_a, job_b], store, manifest, policy=FAST)
        # Job A landed before the crash; job B never finished.
        assert manifest.state_of(job_a.key) == "done"
        assert store.has(job_a.key)
        assert not store.has(job_b.key)

        # A new process replays the journal and only re-mines job B.
        monkeypatch.setattr(
            executor,
            "_mine_job",
            lambda job: (mined.__setitem__("n", mined["n"] + 1), demo_result)[1],
        )
        reopened = JobManifest(manifest.path)
        outcomes = run_jobs([job_a, job_b], store, reopened, policy=FAST)
        assert [o.state for o in outcomes] == ["cached", "done"]
        assert mined["n"] == 2  # job A mined exactly once across both runs


class TestPool:
    def test_pool_mines_and_caches(self, env, demo_result, monkeypatch):
        store, manifest = env
        monkeypatch.setattr(executor, "_mine_job", lambda _job: demo_result)
        jobs = [
            IngestJob.for_title("demo", seed=0),
            IngestJob.for_title("demo", seed=1),
        ]
        outcomes = run_jobs(jobs, store, manifest, workers=2, policy=FAST)
        assert [o.state for o in outcomes] == ["done", "done"]
        assert all(store.has(job.key) for job in jobs)
        assert manifest.counts()["done"] == 2

        again = run_jobs(jobs, store, manifest, workers=2, policy=FAST)
        assert [o.state for o in again] == ["cached", "cached"]

    def test_pool_timeout_fails_job(self, env, job, demo_result, monkeypatch):
        store, manifest = env

        def sleepy(_job):
            time.sleep(2.0)
            return demo_result

        monkeypatch.setattr(executor, "_mine_job", sleepy)
        start = time.perf_counter()
        outcomes = run_jobs(
            [job],
            store,
            manifest,
            workers=2,
            timeout=0.4,
            policy=RetryPolicy(retries=0),
            raise_on_failure=False,
        )
        elapsed = time.perf_counter() - start
        assert outcomes[0].state == "failed"
        assert "timed out" in outcomes[0].error
        assert manifest.state_of(job.key) == "failed"
        # The stuck worker is abandoned, not joined to completion.
        assert elapsed < 1.8
