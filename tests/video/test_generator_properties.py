"""Property-based tests for the screenplay compiler.

Random screenplays assembled from the scene builders must always
produce consistent ground truth, deterministic pixels, and audio
aligned with the frame timeline.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.synthesis.generator import generate_video
from repro.video.synthesis.script import (
    Screenplay,
    clinical_scene,
    dialog_scene,
    filler_scene,
    presentation_scene,
    separator_scene,
)

_BUILDERS = {
    "presentation": lambda variant: presentation_scene(
        "p", cycles=2, actor=variant % 5, slide_base=variant, variant=variant
    ),
    "dialog": lambda variant: dialog_scene(
        "d", exchanges=2, actor_a=variant % 5, actor_b=(variant + 2) % 5,
        variant=variant,
    ),
    "clinical": lambda variant: clinical_scene(
        "c", steps=2, actor=variant % 5, variant=variant,
        style=("surgery", "dermatology", "imaging")[variant % 3],
    ),
    "filler": lambda variant: filler_scene(shots_count=2, variant=variant),
    "separator": lambda variant: separator_scene(),
}

scene_choice = st.tuples(
    st.sampled_from(sorted(_BUILDERS)), st.integers(0, 6)
)


@st.composite
def screenplays(draw):
    choices = draw(st.lists(scene_choice, min_size=1, max_size=3))
    scenes = tuple(_BUILDERS[kind](variant) for kind, variant in choices)
    return Screenplay(title="prop", scenes=scenes, fps=10.0)


@given(play=screenplays(), seed=st.integers(0, 99))
@settings(max_examples=10, deadline=None)
def test_ground_truth_always_validates(play, seed):
    video = generate_video(play, seed=seed, with_audio=False)
    video.truth.validate(len(video.stream))
    assert video.truth.shot_count == play.shot_count


@given(play=screenplays())
@settings(max_examples=5, deadline=None)
def test_generation_is_deterministic(play):
    a = generate_video(play, seed=4, with_audio=False)
    b = generate_video(play, seed=4, with_audio=False)
    assert np.array_equal(a.stream.pixel_stack(), b.stream.pixel_stack())


@given(play=screenplays())
@settings(max_examples=4, deadline=None)
def test_audio_tracks_frame_timeline(play):
    video = generate_video(play, seed=1, with_audio=True)
    assert video.stream.audio is not None
    assert video.stream.audio.duration == pytest.approx(
        video.stream.duration, abs=0.01
    )
    # Per-shot windows never run past the audio.
    for span in video.truth.shots:
        stop_seconds = span.stop / video.stream.fps
        assert stop_seconds <= video.stream.audio.duration + 1e-6
