"""Tests for stream persistence."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.io import load_stream, save_stream


class TestStreamIo:
    def test_round_trip_with_audio(self, demo_stream, tmp_path):
        path = tmp_path / "demo.npz"
        save_stream(demo_stream, path)
        loaded = load_stream(path)
        assert loaded.title == demo_stream.title
        assert loaded.fps == demo_stream.fps
        assert len(loaded) == len(demo_stream)
        assert np.array_equal(loaded.pixel_stack(), demo_stream.pixel_stack())
        assert loaded.audio is not None
        assert np.allclose(loaded.audio.samples, demo_stream.audio.samples)
        assert loaded.audio.sample_rate == demo_stream.audio.sample_rate

    def test_round_trip_without_audio(self, demo_stream, tmp_path):
        from repro.video.stream import VideoStream

        silent = VideoStream(
            frames=list(demo_stream.frames[:5]), fps=demo_stream.fps, title="t"
        )
        path = tmp_path / "silent.npz"
        save_stream(silent, path)
        loaded = load_stream(path)
        assert loaded.audio is None
        assert len(loaded) == 5

    def test_missing_file(self, tmp_path):
        with pytest.raises(VideoError):
            load_stream(tmp_path / "nope.npz")

    def test_corrupt_file(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"this is not a zip archive")
        with pytest.raises(VideoError):
            load_stream(bad)

    def test_wrong_version(self, demo_stream, tmp_path):
        path = tmp_path / "versioned.npz"
        np.savez_compressed(
            path,
            version=np.array(99),
            frames=demo_stream.pixel_stack()[:2],
            fps=np.array(10.0),
            title=np.array("x"),
        )
        with pytest.raises(VideoError):
            load_stream(path)

    def test_mining_loaded_stream_matches(self, demo_stream, demo_structure, tmp_path):
        """A reloaded stream mines to the identical structure."""
        from repro.core.structure import mine_content_structure

        path = tmp_path / "demo.npz"
        save_stream(demo_stream, path)
        loaded = load_stream(path)
        structure = mine_content_structure(loaded)
        assert structure.level_sizes() == demo_structure.level_sizes()
