"""Tests for VideoStream."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.frame import blank_frame
from repro.video.stream import VideoStream, stream_from_arrays


def _frames(n, height=4, width=5):
    return [blank_frame(height, width, (i % 256, 0, 0)) for i in range(n)]


class TestVideoStream:
    def test_restamps_indices_and_timestamps(self):
        stream = VideoStream(frames=_frames(5), fps=10.0)
        assert [f.index for f in stream] == [0, 1, 2, 3, 4]
        assert stream[3].timestamp == pytest.approx(0.3)

    def test_duration_and_counts(self):
        stream = VideoStream(frames=_frames(20), fps=10.0)
        assert stream.frame_count == 20
        assert stream.duration == pytest.approx(2.0)
        assert len(stream) == 20

    def test_rejects_empty(self):
        with pytest.raises(VideoError):
            VideoStream(frames=[], fps=10.0)

    def test_rejects_bad_fps(self):
        with pytest.raises(VideoError):
            VideoStream(frames=_frames(2), fps=0.0)

    def test_rejects_mixed_shapes(self):
        frames = _frames(2) + [blank_frame(6, 5)]
        with pytest.raises(VideoError):
            VideoStream(frames=frames, fps=10.0)

    def test_slice_restamps(self):
        stream = VideoStream(frames=_frames(10), fps=10.0)
        part = stream.slice(3, 7)
        assert len(part) == 4
        assert part[0].index == 0
        assert np.array_equal(part[0].pixels, stream[3].pixels)

    def test_slice_rejects_bad_range(self):
        stream = VideoStream(frames=_frames(5), fps=10.0)
        with pytest.raises(VideoError):
            stream.slice(3, 3)
        with pytest.raises(VideoError):
            stream.slice(0, 99)

    def test_timestamp_of(self):
        stream = VideoStream(frames=_frames(5), fps=5.0)
        assert stream.timestamp_of(4) == pytest.approx(0.8)
        with pytest.raises(VideoError):
            stream.timestamp_of(5)

    def test_pixel_stack_shape(self):
        stream = VideoStream(frames=_frames(4, 6, 7), fps=10.0)
        stack = stream.pixel_stack()
        assert stack.shape == (4, 6, 7, 3)

    def test_stream_from_arrays(self):
        arrays = [np.zeros((3, 3, 3), dtype=np.uint8) for _ in range(3)]
        stream = stream_from_arrays(arrays, fps=2.0, title="t")
        assert stream.title == "t"
        assert stream.duration == pytest.approx(1.5)
