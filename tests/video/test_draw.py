"""Tests for the drawing primitives."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.synthesis.draw import (
    add_noise,
    adjust_brightness,
    camera_jitter,
    draw_hline,
    draw_vline,
    fill_ellipse,
    fill_rect,
    new_canvas,
    value_noise_texture,
    vertical_gradient,
)


class TestCanvas:
    def test_new_canvas_color(self):
        canvas = new_canvas(4, 5, (0.25, 0.5, 0.75))
        assert canvas.shape == (4, 5, 3)
        assert np.allclose(canvas[2, 3], (0.25, 0.5, 0.75))

    def test_new_canvas_rejects_bad_size(self):
        with pytest.raises(VideoError):
            new_canvas(0, 5)


class TestShapes:
    def test_fill_rect_covers_expected_pixels(self):
        canvas = new_canvas(10, 10)
        fill_rect(canvas, 0.0, 0.0, 0.5, 0.5, (1.0, 0.0, 0.0))
        assert np.allclose(canvas[0:5, 0:5, 0], 1.0)
        assert np.allclose(canvas[5:, :, 0], 0.0)

    def test_fill_rect_degenerate_is_noop(self):
        canvas = new_canvas(10, 10)
        fill_rect(canvas, 0.5, 0.5, 0.5, 0.9, (1.0, 1.0, 1.0))
        assert canvas.sum() == 0.0

    def test_fill_ellipse_centre_filled_corner_not(self):
        canvas = new_canvas(20, 20)
        fill_ellipse(canvas, 0.5, 0.5, 0.3, 0.3, (0.0, 1.0, 0.0))
        assert canvas[10, 10, 1] == 1.0
        assert canvas[0, 0, 1] == 0.0

    def test_fill_ellipse_zero_radius_noop(self):
        canvas = new_canvas(10, 10)
        fill_ellipse(canvas, 0.5, 0.5, 0.0, 0.3, (1.0, 1.0, 1.0))
        assert canvas.sum() == 0.0

    def test_lines(self):
        canvas = new_canvas(10, 10)
        draw_hline(canvas, 0.5, 0.0, 1.0, (1.0, 1.0, 1.0), thickness=1)
        lit_rows = np.nonzero(canvas[:, :, 0].sum(axis=1))[0]
        assert list(lit_rows) == [4]  # mid-height row, full width
        assert canvas[4, :, 0].sum() == pytest.approx(10.0)
        canvas2 = new_canvas(10, 10)
        draw_vline(canvas2, 0.5, 0.0, 1.0, (1.0, 1.0, 1.0), thickness=1)
        lit_cols = np.nonzero(canvas2[:, :, 0].sum(axis=0))[0]
        assert list(lit_cols) == [4]


class TestEffects:
    def test_vertical_gradient_monotone(self):
        canvas = new_canvas(16, 4)
        vertical_gradient(canvas, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        column = canvas[:, 0, 0]
        assert np.all(np.diff(column) >= 0)
        assert column[0] == pytest.approx(0.0)
        assert column[-1] == pytest.approx(1.0)

    def test_add_noise_stays_in_range(self, rng):
        canvas = new_canvas(8, 8, (0.99, 0.01, 0.5))
        add_noise(canvas, rng, sigma=0.2)
        assert canvas.min() >= 0.0
        assert canvas.max() <= 1.0

    def test_adjust_brightness_clips(self):
        canvas = new_canvas(4, 4, (0.9, 0.9, 0.9))
        adjust_brightness(canvas, 2.0)
        assert np.allclose(canvas, 1.0)

    def test_camera_jitter_is_permutation(self, rng):
        canvas = new_canvas(8, 8)
        canvas[2, 3] = (1.0, 0.5, 0.25)
        rolled = camera_jitter(canvas, rng, max_shift=1)
        assert rolled.sum() == pytest.approx(canvas.sum())

    def test_value_noise_bounded_and_smooth(self, rng):
        field = value_noise_texture(32, 40, rng, cells=4, amplitude=0.1)
        assert field.shape == (32, 40)
        assert np.abs(field).max() <= 0.1 + 1e-12
        # Smoothness: neighbouring pixels differ far less than the range.
        assert np.abs(np.diff(field, axis=0)).max() < 0.05
