"""Tests for ground-truth annotations."""

import pytest

from repro.errors import VideoError
from repro.types import EventKind
from repro.video.ground_truth import GroundTruth, SceneSpan, ShotSpan


def _simple_truth():
    shots = [
        ShotSpan(0, 0, 10, speaker="a", scene_id=0),
        ShotSpan(1, 10, 25, speaker="b", scene_id=0),
        ShotSpan(2, 25, 40, speaker=None, scene_id=1),
    ]
    scenes = [
        SceneSpan(0, 0, 1, event=EventKind.DIALOG, subject="talk", topic_relevant=True),
        SceneSpan(1, 2, 2, event=EventKind.UNKNOWN),
    ]
    return GroundTruth(shots=shots, groups=[[0, 1], [2]], scenes=scenes)


class TestSpans:
    def test_shot_span_validation(self):
        with pytest.raises(VideoError):
            ShotSpan(0, 5, 5)
        with pytest.raises(VideoError):
            ShotSpan(0, -1, 5)

    def test_shot_contains(self):
        span = ShotSpan(0, 10, 20)
        assert span.contains(10)
        assert span.contains(19)
        assert not span.contains(20)
        assert span.length == 10

    def test_scene_span_validation(self):
        with pytest.raises(VideoError):
            SceneSpan(0, 3, 2)

    def test_scene_shot_ids(self):
        scene = SceneSpan(0, 2, 5)
        assert list(scene.shot_ids) == [2, 3, 4, 5]
        assert scene.shot_count == 4


class TestGroundTruth:
    def test_validate_passes(self):
        _simple_truth().validate(40)

    def test_validate_frame_count_mismatch(self):
        with pytest.raises(VideoError):
            _simple_truth().validate(41)

    def test_validate_bad_groups(self):
        truth = _simple_truth()
        truth.groups = [[0], [2]]
        with pytest.raises(VideoError):
            truth.validate(40)

    def test_validate_gap_between_shots(self):
        truth = _simple_truth()
        truth.shots[1] = ShotSpan(1, 11, 25)
        with pytest.raises(VideoError):
            truth.validate(40)

    def test_validate_empty(self):
        with pytest.raises(VideoError):
            GroundTruth().validate(10)

    def test_validate_unknown_duplicate_scene(self):
        truth = _simple_truth()
        truth.duplicate_scene_sets = [[0, 99]]
        with pytest.raises(VideoError):
            truth.validate(40)

    def test_shot_boundaries(self):
        assert _simple_truth().shot_boundaries() == [10, 25]

    def test_scene_of_shot(self):
        truth = _simple_truth()
        assert truth.scene_of_shot(1).scene_id == 0
        assert truth.scene_of_shot(2).scene_id == 1
        with pytest.raises(VideoError):
            truth.scene_of_shot(99)

    def test_event_and_speaker_lookup(self):
        truth = _simple_truth()
        assert truth.event_of_shot(0) is EventKind.DIALOG
        assert truth.speaker_of_shot(1) == "b"
        assert truth.speaker_of_shot(2) is None
        with pytest.raises(VideoError):
            truth.speaker_of_shot(5)


class TestGeneratedTruth:
    def test_demo_truth_is_consistent(self, demo_video):
        demo_video.truth.validate(len(demo_video.stream))

    def test_demo_truth_has_all_event_kinds(self, demo_truth):
        events = {scene.event for scene in demo_truth.scenes}
        assert EventKind.PRESENTATION in events
        assert EventKind.DIALOG in events
        assert EventKind.CLINICAL_OPERATION in events
