"""Tests for the five-video corpus screenplays (structure only).

Rendering full corpus videos is covered by the benchmarks; here we
check the screenplays themselves so the suite stays fast.
"""

import pytest

from repro.errors import VideoError
from repro.types import EventKind
from repro.video.synthesis.corpus import (
    CORPUS_TITLES,
    build_screenplay,
    demo_screenplay,
)


class TestCorpusScreenplays:
    def test_five_titles(self):
        assert len(CORPUS_TITLES) == 5
        assert "face_repair" in CORPUS_TITLES
        assert "laser_eye_surgery" in CORPUS_TITLES

    @pytest.mark.parametrize("title", CORPUS_TITLES)
    def test_screenplay_builds(self, title):
        play = build_screenplay(title)
        assert play.title == title
        assert play.shot_count >= 25
        assert play.duration > 60.0

    @pytest.mark.parametrize("title", CORPUS_TITLES)
    def test_every_video_has_known_events(self, title):
        play = build_screenplay(title)
        events = {scene.event for scene in play.scenes}
        assert EventKind.PRESENTATION in events or EventKind.DIALOG in events
        # Every corpus video shows some clinical content (it is a
        # medical corpus).
        assert EventKind.CLINICAL_OPERATION in events

    @pytest.mark.parametrize("title", CORPUS_TITLES)
    def test_separators_between_content(self, title):
        play = build_screenplay(title)
        subjects = [scene.subject for scene in play.scenes]
        assert subjects.count("black separator") >= 2

    def test_repeats_exist_in_each_video(self):
        for title in CORPUS_TITLES:
            play = build_screenplay(title)
            keys = [s.repeat_key for s in play.scenes if s.repeat_key]
            assert keys, f"{title} has no repeated scenes"

    def test_unknown_title_raises(self):
        with pytest.raises(VideoError):
            build_screenplay("does_not_exist")

    def test_demo_screenplay_is_compact(self):
        play = demo_screenplay()
        assert play.shot_count < 20
        assert play.duration < 60.0
