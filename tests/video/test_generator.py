"""Tests for the screenplay compiler."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.types import EventKind
from repro.video.synthesis.generator import generate_video
from repro.video.synthesis.script import (
    Screenplay,
    ShotSpec,
    SceneSpec,
    dialog_scene,
    presentation_scene,
    separator_scene,
)


def _tiny_screenplay(repeat=False):
    scenes = [
        presentation_scene("p", cycles=2, repeat_key="rk" if repeat else None),
        separator_scene(),
        dialog_scene("d", exchanges=2),
    ]
    if repeat:
        scenes.append(
            presentation_scene("p2", cycles=2, repeat_key="rk", slide_base=5)
        )
    return Screenplay(title="tiny", scenes=tuple(scenes))


class TestGenerateVideo:
    def test_determinism(self):
        a = generate_video(_tiny_screenplay(), seed=3, with_audio=False)
        b = generate_video(_tiny_screenplay(), seed=3, with_audio=False)
        assert np.array_equal(a.stream.pixel_stack(), b.stream.pixel_stack())

    def test_seed_changes_noise(self):
        a = generate_video(_tiny_screenplay(), seed=1, with_audio=False)
        b = generate_video(_tiny_screenplay(), seed=2, with_audio=False)
        assert not np.array_equal(a.stream.pixel_stack(), b.stream.pixel_stack())

    def test_truth_matches_stream(self):
        video = generate_video(_tiny_screenplay(), with_audio=False)
        video.truth.validate(len(video.stream))
        assert video.truth.shot_count == video.screenplay.shot_count

    def test_frame_counts_follow_durations(self):
        video = generate_video(_tiny_screenplay(), with_audio=False)
        fps = video.screenplay.fps
        expected = [
            max(2, int(round(shot.seconds * fps)))
            for scene in video.screenplay.scenes
            for shot in scene.shots
        ]
        actual = [span.length for span in video.truth.shots]
        assert actual == expected

    def test_audio_duration_matches_video(self):
        video = generate_video(_tiny_screenplay(), with_audio=True)
        assert video.stream.audio is not None
        assert video.stream.audio.duration == pytest.approx(
            video.stream.duration, abs=0.01
        )

    def test_speakers_recorded(self):
        video = generate_video(_tiny_screenplay(), with_audio=False)
        speakers = {span.speaker for span in video.truth.shots}
        assert "narrator" in speakers
        assert None in speakers  # black separators are silent

    def test_repeat_key_creates_duplicate_sets(self):
        video = generate_video(_tiny_screenplay(repeat=True), with_audio=False)
        assert len(video.truth.duplicate_scene_sets) == 1
        dup = video.truth.duplicate_scene_sets[0]
        assert len(dup) == 2

    def test_repeated_scenes_share_scenery(self):
        video = generate_video(_tiny_screenplay(repeat=True), with_audio=False)
        dup = video.truth.duplicate_scene_sets[0]
        first, second = (video.truth.scenes[i] for i in dup)
        # Compare the podium shots of both occurrences: identical scenery
        # means very small pixel distance despite different noise.
        frame_a = video.stream[video.truth.shots[first.first_shot + 1].start + 5]
        frame_b = video.stream[video.truth.shots[second.first_shot + 1].start + 5]
        diff = np.abs(frame_a.as_float() - frame_b.as_float()).mean()
        assert diff < 0.05

    def test_unknown_speaker_raises(self):
        scene = SceneSpec(
            subject="bad",
            event=EventKind.UNKNOWN,
            shots=(ShotSpec(composition="black", seconds=2.1, speaker="ghost"),),
            groups=((0,),),
        )
        play = Screenplay(title="bad", scenes=(scene,))
        with pytest.raises(VideoError):
            generate_video(play)


class TestDemoVideo:
    def test_demo_video_scene_events(self, demo_video):
        events = [s.event for s in demo_video.truth.scenes]
        assert EventKind.PRESENTATION in events
        assert EventKind.DIALOG in events
        assert EventKind.CLINICAL_OPERATION in events

    def test_demo_video_has_synchronised_audio(self, demo_video):
        audio = demo_video.stream.audio
        assert audio is not None
        assert audio.duration == pytest.approx(demo_video.stream.duration, abs=0.01)
