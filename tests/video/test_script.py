"""Tests for the screenplay model and scene builders."""

import pytest

from repro.errors import VideoError
from repro.types import EventKind
from repro.video.synthesis.script import (
    SceneSpec,
    Screenplay,
    ShotSpec,
    clinical_scene,
    dialog_scene,
    filler_scene,
    presentation_scene,
    separator_scene,
)


class TestShotSpec:
    def test_rejects_unknown_composition(self):
        with pytest.raises(VideoError):
            ShotSpec(composition="nope", seconds=1.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(VideoError):
            ShotSpec(composition="black", seconds=0.0)


class TestSceneSpec:
    def test_groups_must_partition(self):
        shots = (ShotSpec(composition="black", seconds=1.0),) * 2
        with pytest.raises(VideoError):
            SceneSpec(
                subject="x",
                event=EventKind.UNKNOWN,
                shots=shots,
                groups=((0,),),
            )

    def test_duration_sums_shots(self):
        scene = separator_scene()
        assert scene.duration == pytest.approx(1.0)
        assert scene.shot_count == 1


class TestBuilders:
    def test_presentation_scene_structure(self):
        scene = presentation_scene("p", cycles=3)
        assert scene.event is EventKind.PRESENTATION
        assert scene.shot_count == 7  # wide + 3 * (podium, slide)
        compositions = [shot.composition for shot in scene.shots]
        assert compositions[1::2].count("podium_speaker") == 3
        # One narrator throughout: the Presentation rule needs this.
        assert len({shot.speaker for shot in scene.shots}) == 1

    def test_presentation_scene_clipart_variant(self):
        scene = presentation_scene("p", cycles=2, use_clipart=True)
        assert any(s.composition == "clipart_fullscreen" for s in scene.shots)

    def test_presentation_rejects_single_cycle(self):
        with pytest.raises(VideoError):
            presentation_scene("p", cycles=1)

    def test_dialog_scene_alternates_speakers(self):
        scene = dialog_scene("d", exchanges=2)
        speakers = [shot.speaker for shot in scene.shots[1:]]
        assert speakers == ["dr_adams", "patient_chen"] * 2
        assert scene.event is EventKind.DIALOG

    def test_dialog_rejects_single_exchange(self):
        with pytest.raises(VideoError):
            dialog_scene("d", exchanges=1)

    def test_clinical_styles(self):
        surgery = clinical_scene("s", steps=2, style="surgery")
        assert any(s.composition == "surgical_closeup" for s in surgery.shots)
        derm = clinical_scene("s", steps=2, style="dermatology")
        assert all(s.composition == "limb_exam" for s in derm.shots)
        imaging = clinical_scene("s", steps=2, style="imaging")
        assert all(s.composition == "scan_display" for s in imaging.shots)
        with pytest.raises(VideoError):
            clinical_scene("s", style="nope")

    def test_clinical_rejects_too_few_steps(self):
        with pytest.raises(VideoError):
            clinical_scene("s", steps=1)

    def test_filler_scene_has_no_event(self):
        scene = filler_scene(shots_count=2)
        assert scene.event is EventKind.UNKNOWN
        assert not scene.topic_relevant


class TestScreenplay:
    def test_counts(self):
        play = Screenplay(
            title="t",
            scenes=(separator_scene(), filler_scene(shots_count=2)),
        )
        assert play.shot_count == 3
        assert play.duration == pytest.approx(1.0 + 5.0)

    def test_rejects_empty(self):
        with pytest.raises(VideoError):
            Screenplay(title="t", scenes=())

    def test_rejects_bad_fps(self):
        with pytest.raises(VideoError):
            Screenplay(title="t", scenes=(separator_scene(),), fps=0)
