"""Tests for the Frame model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VideoError
from repro.video.frame import Frame, blank_frame, validate_pixels


class TestValidatePixels:
    def test_accepts_uint8(self):
        pixels = np.zeros((4, 5, 3), dtype=np.uint8)
        assert validate_pixels(pixels) is pixels

    def test_converts_unit_floats(self):
        pixels = np.full((2, 2, 3), 0.5)
        out = validate_pixels(pixels)
        assert out.dtype == np.uint8
        assert out[0, 0, 0] == 128

    def test_rejects_wrong_shape(self):
        with pytest.raises(VideoError):
            validate_pixels(np.zeros((4, 5), dtype=np.uint8))

    def test_rejects_wrong_channel_count(self):
        with pytest.raises(VideoError):
            validate_pixels(np.zeros((4, 5, 4), dtype=np.uint8))

    def test_rejects_out_of_range_floats(self):
        with pytest.raises(VideoError):
            validate_pixels(np.full((2, 2, 3), 1.5))

    def test_rejects_non_array(self):
        with pytest.raises(VideoError):
            validate_pixels([[1, 2, 3]])

    def test_rejects_int32(self):
        with pytest.raises(VideoError):
            validate_pixels(np.zeros((2, 2, 3), dtype=np.int32))

    def test_rejects_empty(self):
        with pytest.raises(VideoError):
            validate_pixels(np.zeros((0, 5, 3), dtype=np.uint8))


class TestFrame:
    def test_properties(self):
        frame = blank_frame(10, 20, (1, 2, 3), index=4, timestamp=0.4)
        assert frame.height == 10
        assert frame.width == 20
        assert frame.shape == (10, 20, 3)
        assert frame.index == 4
        assert frame.timestamp == 0.4

    def test_rejects_negative_index(self):
        with pytest.raises(VideoError):
            Frame(pixels=np.zeros((2, 2, 3), dtype=np.uint8), index=-1)

    def test_rejects_negative_timestamp(self):
        with pytest.raises(VideoError):
            Frame(pixels=np.zeros((2, 2, 3), dtype=np.uint8), timestamp=-0.1)

    def test_as_float_range(self):
        frame = blank_frame(2, 2, (255, 0, 128))
        out = frame.as_float()
        assert out.max() <= 1.0
        assert out[0, 0, 0] == 1.0

    def test_gray_is_luma(self):
        frame = blank_frame(2, 2, (255, 255, 255))
        assert np.allclose(frame.gray(), 1.0)
        red = blank_frame(2, 2, (255, 0, 0))
        assert np.allclose(red.gray(), 0.299)

    def test_with_index_preserves_pixels(self):
        frame = blank_frame(3, 3, (9, 9, 9))
        moved = frame.with_index(7, 0.7)
        assert moved.index == 7
        assert moved.timestamp == 0.7
        assert np.array_equal(moved.pixels, frame.pixels)

    def test_equality_and_hash(self):
        a = blank_frame(2, 2, (5, 5, 5), index=1, timestamp=0.1)
        b = blank_frame(2, 2, (5, 5, 5), index=1, timestamp=0.1)
        c = blank_frame(2, 2, (6, 5, 5), index=1, timestamp=0.1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_equality_against_other_type(self):
        assert blank_frame(2, 2) != "not a frame"


@given(
    r=st.integers(0, 255),
    g=st.integers(0, 255),
    b=st.integers(0, 255),
)
@settings(max_examples=25, deadline=None)
def test_gray_always_in_unit_interval(r, g, b):
    frame = blank_frame(2, 2, (r, g, b))
    gray = frame.gray()
    assert 0.0 <= gray.min() and gray.max() <= 1.0
