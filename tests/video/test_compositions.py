"""Tests for the composition registry (every camera setup must render)."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.synthesis.compositions import (
    COMPOSITION_REGISTRY,
    ShotParams,
    render_composition,
)
from repro.video.synthesis.sets import SET_REGISTRY, render_set
from repro.video.synthesis.draw import new_canvas


class TestCompositionRegistry:
    @pytest.mark.parametrize("name", sorted(COMPOSITION_REGISTRY))
    def test_renders_in_range(self, name):
        canvas = render_composition(name, 64, 80, seed=5, params=ShotParams(), t=0.5)
        assert canvas.shape == (64, 80, 3)
        assert canvas.min() >= 0.0
        assert canvas.max() <= 1.0

    @pytest.mark.parametrize("name", sorted(COMPOSITION_REGISTRY))
    def test_static_given_seed_and_t(self, name):
        a = render_composition(name, 64, 80, seed=5, params=ShotParams(), t=0.25)
        b = render_composition(name, 64, 80, seed=5, params=ShotParams(), t=0.25)
        assert np.array_equal(a, b)

    def test_seed_changes_scenery(self):
        a = render_composition("surgical_closeup", 64, 80, seed=1, params=ShotParams(), t=0.0)
        b = render_composition("surgical_closeup", 64, 80, seed=2, params=ShotParams(), t=0.0)
        assert not np.array_equal(a, b)

    def test_talking_animates(self):
        a = render_composition("interview_a", 64, 80, seed=1, params=ShotParams(), t=0.1)
        b = render_composition("interview_a", 64, 80, seed=1, params=ShotParams(), t=0.5)
        assert not np.array_equal(a, b)

    def test_unknown_composition_raises(self):
        with pytest.raises(VideoError):
            render_composition("steadicam", 64, 80, seed=0, params=ShotParams(), t=0.0)


class TestSetRegistry:
    @pytest.mark.parametrize("name", sorted(SET_REGISTRY))
    def test_sets_paint_full_canvas(self, name, rng):
        canvas = new_canvas(64, 80)
        render_set(name, canvas, rng)
        # A painted background should not be predominantly black.
        assert canvas.mean() > 0.05

    def test_unknown_set_raises(self, rng):
        with pytest.raises(VideoError):
            render_set("holodeck", new_canvas(8, 8), rng)

    def test_variants_differ(self, rng):
        import numpy as np

        a = new_canvas(64, 80)
        b = new_canvas(64, 80)
        render_set("lecture_hall", a, np.random.default_rng(1), variant=0)
        render_set("lecture_hall", b, np.random.default_rng(1), variant=1)
        assert not np.array_equal(a, b)
