"""Tests for the actor/anatomy and slide renderers."""

import numpy as np
import pytest

from repro.video.frame import Frame
from repro.video.synthesis import actors, slides
from repro.video.synthesis.draw import new_canvas
from repro.vision.colormodel import chromaticity
from repro.vision.skin import DEFAULT_SKIN_MODEL


class TestSkinTones:
    @pytest.mark.parametrize("tone", actors.SKIN_TONES)
    def test_every_tone_matches_the_skin_model(self, tone):
        """The cast's skin tones must be detectable by the default model."""
        pixels = np.full((8, 8, 3), [int(c * 255) for c in tone], dtype=np.uint8)
        assert DEFAULT_SKIN_MODEL.segment(pixels).all()

    def test_blood_red_does_not_match_skin(self):
        pixels = np.full(
            (8, 8, 3), [int(c * 255) for c in actors.BLOOD_RED], dtype=np.uint8
        )
        assert not DEFAULT_SKIN_MODEL.segment(pixels).any()


class TestDrawPerson:
    def _person_canvas(self, talking_phase=0.0, head_ry=0.25):
        canvas = new_canvas(64, 80, (0.6, 0.7, 0.8))
        actors.draw_person(
            canvas, 0.5, 0.4, head_ry,
            actors.SKIN_TONES[0], actors.WARDROBE[0],
            talking_phase=talking_phase,
        )
        return canvas

    def test_head_is_skin_toned(self):
        canvas = self._person_canvas()
        head = canvas[int(0.4 * 64), int(0.5 * 80)]
        assert np.allclose(head, actors.SKIN_TONES[0])

    def test_eyes_are_dark(self):
        canvas = self._person_canvas()
        frame = Frame(pixels=canvas)
        gray = frame.gray()
        eye_band = gray[int(0.32 * 64) : int(0.42 * 64), :]
        assert eye_band.min() < 0.2

    def test_mouth_opens_with_phase(self):
        closed = self._person_canvas(talking_phase=0.0)
        open_ = self._person_canvas(talking_phase=0.5)
        assert not np.array_equal(closed, open_)


class TestAnatomy:
    def test_surgical_field_coverage(self, rng):
        canvas = new_canvas(64, 80, (0.1, 0.4, 0.4))
        actors.draw_surgical_field(
            canvas, rng, actors.SKIN_TONES[0], incision=False, coverage=0.4,
            center=(0.5, 0.5),
        )
        chroma = chromaticity((canvas * 255).astype(np.uint8))
        skin_like = np.abs(chroma[:, :, 0] - 0.46) < 0.1
        assert 0.25 < skin_like.mean() < 0.6

    def test_incision_adds_blood(self, rng):
        canvas = new_canvas(64, 80, (0.1, 0.4, 0.4))
        actors.draw_surgical_field(
            canvas, rng, actors.SKIN_TONES[0], incision=True, center=(0.5, 0.5)
        )
        reds = canvas[:, :, 0] > 2.0 * canvas[:, :, 1]
        assert reds.any()

    def test_organ_is_mostly_dark_with_red_mass(self, rng):
        canvas = new_canvas(64, 80)
        actors.draw_organ(canvas, rng)
        frame = Frame(pixels=canvas)
        assert frame.gray().mean() < 0.3
        assert (canvas[:, :, 0] > 0.4).mean() > 0.1

    def test_scan_hot_spots_use_palette(self, rng):
        canvas = new_canvas(64, 80)
        actors.draw_scan_image(canvas, rng, hot_spots=3, hot_color=(0.3, 0.9, 0.45))
        greens = canvas[:, :, 1] > 0.8
        assert greens.any()


class TestSlides:
    def test_slide_layout_deterministic_per_id(self, rng):
        a = new_canvas(64, 80)
        b = new_canvas(64, 80)
        slides.draw_slide(a, rng, slide_id=7)
        slides.draw_slide(b, np.random.default_rng(999), slide_id=7)
        assert np.array_equal(a, b)

    def test_different_slide_ids_differ(self, rng):
        a = new_canvas(64, 80)
        b = new_canvas(64, 80)
        slides.draw_slide(a, rng, slide_id=1)
        slides.draw_slide(b, rng, slide_id=2)
        assert not np.array_equal(a, b)

    def test_black_frame_is_black(self):
        canvas = new_canvas(8, 8, (0.5, 0.5, 0.5))
        slides.draw_black_frame(canvas)
        assert canvas.max() < 0.05

    def test_clipart_has_saturated_shapes(self, rng):
        canvas = new_canvas(64, 80)
        slides.draw_clipart(canvas, rng, variant=0)
        saturation = canvas.max(axis=2) - canvas.min(axis=2)
        assert (saturation > 0.3).mean() > 0.1

    def test_sketch_is_mostly_white(self, rng):
        canvas = new_canvas(64, 80)
        slides.draw_sketch(canvas, rng, variant=0)
        assert canvas.mean() > 0.8
