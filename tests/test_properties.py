"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *any* input, spanning module boundaries:
similarity bounds and symmetry, partition invariants of the mining
stages, monotonicity of access control, and metric sanity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import cluster_scenes
from repro.core.features import Shot
from repro.core.groups import Group, detect_groups
from repro.core.scenes import Scene, detect_scenes
from repro.core.shots import boundary_spans, detect_boundaries
from repro.core.similarity import group_similarity, shot_similarity
from repro.database.access import AccessController, User
from repro.database.hierarchy import build_medical_hierarchy
from repro.video.frame import blank_frame


# ---------------------------------------------------------------------------
# Builders.
# ---------------------------------------------------------------------------


def _shot_from_seed(shot_id: int, seed: int) -> Shot:
    rng = np.random.default_rng(seed)
    histogram = rng.random(256)
    histogram /= histogram.sum()
    return Shot(
        shot_id=shot_id,
        start=shot_id * 10,
        stop=(shot_id + 1) * 10,
        fps=10.0,
        representative_frame=blank_frame(4, 4),
        histogram=histogram,
        texture=rng.random(10),
    )


shot_seeds = st.lists(st.integers(0, 10_000), min_size=3, max_size=12)


# ---------------------------------------------------------------------------
# Similarity.
# ---------------------------------------------------------------------------


@given(seeds=st.tuples(st.integers(0, 9999), st.integers(0, 9999)))
@settings(max_examples=40, deadline=None)
def test_shot_similarity_symmetric_and_bounded(seeds):
    a = _shot_from_seed(0, seeds[0])
    b = _shot_from_seed(1, seeds[1])
    ab = shot_similarity(a, b)
    ba = shot_similarity(b, a)
    assert ab == pytest.approx(ba)
    assert 0.0 <= ab <= 1.0 + 1e-9


@given(seeds=shot_seeds)
@settings(max_examples=25, deadline=None)
def test_group_similarity_self_is_maximal(seeds):
    shots = [_shot_from_seed(i, seed) for i, seed in enumerate(seeds)]
    half = len(shots) // 2
    a, b = shots[:half], shots[half:]
    if not a or not b:
        return
    self_sim = group_similarity(a, a)
    cross = group_similarity(a, b)
    assert self_sim == pytest.approx(1.0)
    assert cross <= self_sim + 1e-9


# ---------------------------------------------------------------------------
# Mining-stage partition invariants.
# ---------------------------------------------------------------------------


@given(seeds=shot_seeds)
@settings(max_examples=20, deadline=None)
def test_groups_always_partition_shots(seeds):
    shots = [_shot_from_seed(i, seed) for i, seed in enumerate(seeds)]
    groups, _ = detect_groups(shots)
    covered = [shot_id for group in groups for shot_id in group.shot_ids]
    assert covered == [shot.shot_id for shot in shots]
    # Groups are contiguous runs.
    for group in groups:
        ids = group.shot_ids
        assert ids == list(range(ids[0], ids[-1] + 1))


@given(seeds=shot_seeds)
@settings(max_examples=20, deadline=None)
def test_scene_detection_preserves_shots(seeds):
    shots = [_shot_from_seed(i, seed) for i, seed in enumerate(seeds)]
    groups, _ = detect_groups(shots)
    result = detect_scenes(groups)
    kept = {s for scene in result.scenes for s in scene.shot_ids}
    dropped = {
        shot.shot_id
        for unit in result.eliminated
        for group in unit
        for shot in group.shots
    }
    assert kept | dropped == {shot.shot_id for shot in shots}
    assert kept & dropped == set()
    for scene in result.scenes:
        assert scene.shot_count >= 3


@given(
    seeds=st.lists(st.integers(0, 9999), min_size=4, max_size=9, unique=True)
)
@settings(max_examples=15, deadline=None)
def test_clustering_partitions_scenes(seeds):
    scenes = []
    for index, seed in enumerate(seeds):
        shots = [_shot_from_seed(index * 10 + k, seed + k) for k in range(3)]
        group = Group(group_id=index, shots=shots, representative_shots=[shots[0]])
        scenes.append(
            Scene(scene_id=index, groups=[group], representative_group=group)
        )
    result = cluster_scenes(scenes)
    member_ids = sorted(
        scene_id for cluster in result.clusters for scene_id in cluster.scene_ids
    )
    assert member_ids == sorted(s.scene_id for s in scenes)
    assert 1 <= result.cluster_count <= len(scenes)


# ---------------------------------------------------------------------------
# Shot boundaries.
# ---------------------------------------------------------------------------


@given(
    diffs=st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=0, max_size=120)
)
@settings(max_examples=40, deadline=None)
def test_boundaries_are_valid_spans(diffs):
    signal = np.asarray(diffs)
    boundaries, thresholds = detect_boundaries(signal)
    assert thresholds.shape == signal.shape
    assert boundaries == sorted(set(boundaries))
    frame_count = signal.size + 1
    spans = boundary_spans(boundaries, frame_count)
    assert spans[0][0] == 0
    assert spans[-1][1] == frame_count
    for (_, stop), (start, _) in zip(spans, spans[1:]):
        assert stop == start


# ---------------------------------------------------------------------------
# Access control monotonicity.
# ---------------------------------------------------------------------------


@given(low=st.integers(0, 5), extra=st.integers(0, 5))
@settings(max_examples=25, deadline=None)
def test_higher_clearance_sees_superset(low, extra):
    controller = AccessController(build_medical_hierarchy())
    junior = User(name="junior", clearance=low)
    senior = User(name="senior", clearance=low + extra)
    junior_leaves = controller.permitted_leaves(junior)
    senior_leaves = controller.permitted_leaves(senior)
    assert junior_leaves <= senior_leaves
