"""Tests for the hierarchical index machinery."""

import numpy as np
import pytest

from repro.database.index import (
    IndexNode,
    LeafHashIndex,
    ShotEntry,
    build_node,
    combine_features,
    discriminating_dimensions,
    feature_similarity,
    leaf_signature,
    route_child,
)
from repro.errors import DatabaseError


def _entry(video: str, shot_id: int, hot_bin: int) -> ShotEntry:
    histogram = np.zeros(256)
    histogram[hot_bin] = 0.9
    histogram[(hot_bin + 7) % 256] = 0.1
    return ShotEntry(
        video_title=video,
        shot_id=shot_id,
        scene_id=0,
        features=combine_features(histogram, np.full(10, 0.5)),
    )


class TestCombineFeatures:
    def test_length(self):
        features = combine_features(np.ones(256) / 256, np.zeros(10))
        assert features.shape == (266,)


class TestFeatureSimilarity:
    def test_identical_is_one(self):
        entry = _entry("v", 0, 3)
        assert feature_similarity(entry.features, entry.features) == pytest.approx(1.0)

    def test_reduced_subspace(self):
        a = _entry("v", 0, 3).features
        b = _entry("v", 1, 3).features
        dims = np.array([3, 10, 256])
        value = feature_similarity(a, b, dims=dims)
        assert value == pytest.approx(np.minimum(a[dims], b[dims]).sum())


class TestDiscriminatingDimensions:
    def test_picks_varying_dims(self, rng):
        population = np.zeros((20, 266))
        population[:, 5] = rng.random(20)  # the only varying dimension
        dims = discriminating_dimensions(population, keep=1)
        assert list(dims) == [5]

    def test_caps_at_dimensionality(self):
        population = np.random.default_rng(0).random((5, 8))
        dims = discriminating_dimensions(population, keep=100)
        assert dims.shape == (8,)


class TestLeafHashIndex:
    def test_probe_returns_same_bucket(self):
        leaf = LeafHashIndex()
        same = [_entry("v", i, 3) for i in range(4)]
        other = [_entry("v", 10 + i, 200) for i in range(4)]
        for entry in same + other:
            leaf.insert(entry)
        hits = leaf.probe(same[0].features)
        assert {h.shot_id for h in hits} == {0, 1, 2, 3}
        assert leaf.bucket_count == 2
        assert len(leaf) == 8

    def test_probe_falls_back_when_bucket_empty(self):
        leaf = LeafHashIndex()
        leaf.insert(_entry("v", 0, 3))
        # Query signature that matches no bucket.
        query = _entry("v", 99, 150).features
        assert len(leaf.probe(query)) == 1

    def test_signature_stable_under_noise(self, rng):
        entry = _entry("v", 0, 3)
        noisy = entry.features + rng.normal(0, 1e-4, entry.features.shape)
        assert leaf_signature(entry.features) == leaf_signature(noisy)


class TestBuildNode:
    def test_leaf_node(self):
        entries = [_entry("v", i, 3) for i in range(5)]
        node = build_node("leaf", 3, entries=entries)
        assert node.is_leaf
        assert node.shot_count() == 5
        assert node.centers is not None
        assert node.dims is not None

    def test_internal_node(self):
        leaf_a = build_node("a", 3, entries=[_entry("v", 0, 3)])
        leaf_b = build_node("b", 3, entries=[_entry("v", 1, 200)])
        parent = build_node("p", 2, children=[leaf_a, leaf_b])
        assert not parent.is_leaf
        assert parent.shot_count() == 2
        assert parent.centers is not None

    def test_rejects_both_or_neither(self):
        with pytest.raises(DatabaseError):
            build_node("x", 0)
        with pytest.raises(DatabaseError):
            build_node("x", 0, children=[], entries=[])


class TestRouting:
    def test_routes_to_matching_child(self):
        leaf_a = build_node("a", 3, entries=[_entry("v", i, 3) for i in range(3)])
        leaf_b = build_node("b", 3, entries=[_entry("v", i, 200) for i in range(3)])
        parent = build_node("p", 2, children=[leaf_a, leaf_b])
        child, comparisons = route_child(parent, _entry("q", 9, 3).features)
        assert child is leaf_a
        assert comparisons > 0
        child, _ = route_child(parent, _entry("q", 9, 200).features)
        assert child is leaf_b

    def test_empty_children_are_skipped(self):
        leaf_a = build_node("a", 3, entries=[_entry("v", 0, 3)])
        empty = IndexNode(name="empty", depth=3, leaf=None, children=[])
        parent = build_node("p", 2, children=[leaf_a])
        parent.children.append(empty)
        child, _ = route_child(parent, _entry("q", 9, 3).features)
        assert child is leaf_a

    def test_routing_inside_leaf_raises(self):
        leaf = build_node("a", 3, entries=[_entry("v", 0, 3)])
        with pytest.raises(DatabaseError):
            route_child(leaf, _entry("q", 9, 3).features)
