"""Tests for event-based queries over the catalog."""

import pytest

from repro.database.access import FilterRule, Permission, User
from repro.database.catalog import VideoDatabase
from repro.database.events_query import event_census, query_events
from repro.errors import DatabaseError
from repro.types import EventKind


@pytest.fixture(scope="module")
def database(demo_result):
    db = VideoDatabase()
    db.register(demo_result)
    return db


class TestQueryEvents:
    def test_dialog_query_returns_dialog_scenes(self, database, demo_result):
        hits = query_events(database, EventKind.DIALOG)
        mined = demo_result.scene_events()
        expected = {
            scene_id for scene_id, kind in mined.items() if kind is EventKind.DIALOG
        }
        assert {hit.scene_id for hit in hits} == expected
        assert all(hit.event is EventKind.DIALOG for hit in hits)
        assert all(hit.video_title == "demo" for hit in hits)

    def test_hits_carry_concept_paths(self, database):
        for hit in query_events(database, EventKind.PRESENTATION):
            assert hit.concept.endswith("/presentation")

    def test_video_filter(self, database):
        hits = query_events(database, EventKind.DIALOG, video_title="demo")
        assert all(hit.video_title == "demo" for hit in hits)
        with pytest.raises(DatabaseError):
            query_events(database, EventKind.DIALOG, video_title="nope")

    def test_access_control_filters_results(self, database):
        dialogs = query_events(database, EventKind.DIALOG)
        if not dialogs:
            pytest.skip("demo produced no dialog scenes")
        blocked = User(
            name="blocked",
            clearance=9,
            rules=(FilterRule("dialog", Permission.DENY),),
        )
        assert query_events(database, EventKind.DIALOG, user=blocked) == []
        cleared = User(name="chief", clearance=9)
        assert query_events(database, EventKind.DIALOG, user=cleared) == dialogs

    def test_denials_are_audited(self, database):
        blocked = User(
            name="auditee2",
            clearance=9,
            rules=(FilterRule("dialog", Permission.DENY),),
        )
        before = len(database.controller.audit_log)
        query_events(database, EventKind.DIALOG, user=blocked)
        assert len(database.controller.audit_log) > before


class TestEventCensus:
    def test_census_counts_match_queries(self, database):
        census = event_census(database)
        for kind in EventKind:
            assert census[kind] == len(query_events(database, kind))

    def test_census_respects_user(self, database):
        public = User(name="student", clearance=0)
        census = event_census(database, user=public)
        # Clearance 0 only reaches presentations.
        assert census[EventKind.DIALOG] == 0
        assert census[EventKind.CLINICAL_OPERATION] == 0
