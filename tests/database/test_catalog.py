"""Tests for the VideoDatabase catalog, queries and persistence."""

import numpy as np
import pytest

from repro.database.access import FilterRule, Permission, User
from repro.database.catalog import VideoDatabase
from repro.database.index import combine_features
from repro.errors import DatabaseError


@pytest.fixture(scope="module")
def database(demo_result):
    db = VideoDatabase()
    db.register(demo_result)
    db.build_index()
    return db


def _query_features(demo_result, shot_index=2):
    shot = demo_result.structure.shots[shot_index]
    return combine_features(shot.histogram, shot.texture)


class TestRegistration:
    def test_counts(self, database, demo_result):
        assert database.shot_count == demo_result.structure.shot_count
        record = database.videos["demo"]
        assert record.scene_count == demo_result.structure.scene_count

    def test_double_registration_raises(self, database, demo_result):
        with pytest.raises(DatabaseError):
            database.register(demo_result)

    def test_empty_database_cannot_index(self):
        with pytest.raises(DatabaseError):
            VideoDatabase().build_index()


class TestSearch:
    def test_exact_query_finds_itself(self, database, demo_result):
        features = _query_features(demo_result, 2)
        result = database.search(features, k=3)
        assert result.top.entry.key == ("demo", demo_result.structure.shots[2].shot_id)
        # Reduced-subspace scores are not normalised, but an exact match
        # must dominate every other candidate.
        others = [hit.score for hit in result.hits[1:]]
        assert all(result.top.score >= score for score in others)

    def test_flat_and_hierarchical_agree_on_top_hit(self, database, demo_result):
        features = _query_features(demo_result, 5)
        hier = database.search(features, k=1)
        flat = database.search_flat(features, k=1)
        assert hier.top.entry.key == flat.top.entry.key

    def test_flat_scan_touches_everything(self, database, demo_result):
        features = _query_features(demo_result, 5)
        flat = database.search_flat(features, k=5)
        assert flat.stats.comparisons == database.shot_count

    def test_hierarchy_does_less_work_at_scale(self):
        """With enough shots per leaf, the descent beats the scan.
        (The Sec. 6.2 bench demonstrates this on the full corpus; here a
        hand-built database keeps the unit test fast.)"""
        import numpy as np

        from repro.database.flat import FlatIndex
        from repro.database.index import ShotEntry, build_node
        from repro.database.query import search_hierarchical

        rng = np.random.default_rng(0)
        leaves = []
        flat = FlatIndex()
        for leaf_idx in range(4):
            entries = []
            for i in range(50):
                hist = np.zeros(256)
                hot = leaf_idx * 64 + int(rng.integers(0, 30))
                hist[hot] = 1.0
                entry = ShotEntry(
                    video_title="v",
                    shot_id=leaf_idx * 100 + i,
                    scene_id=0,
                    features=np.concatenate([hist, np.full(10, 0.5)]),
                )
                entries.append(entry)
                flat.insert(entry)
            leaves.append(build_node(f"leaf{leaf_idx}", 1, entries=entries))
        root = build_node("root", 0, children=leaves)
        query = flat.entries[10].features
        hier = search_hierarchical(root, query, k=5)
        scan = flat.search(query, k=5)
        assert hier.stats.comparisons < scan.stats.comparisons

    def test_descent_path_recorded(self, database, demo_result):
        result = database.search(_query_features(demo_result), k=1)
        assert result.stats.visited_path[0] == "medical_video_database"
        assert len(result.stats.visited_path) >= 3

    def test_access_filtered_search(self, database, demo_result):
        # demo is an unknown title -> shots live under 'general/...'.
        features = _query_features(demo_result, 2)
        denied = User(
            name="blocked",
            clearance=9,
            rules=(FilterRule("general", Permission.DENY),),
        )
        result = database.search(features, user=denied, k=3)
        assert result.hits == []

    def test_access_reroutes_to_permitted_leaf(self, database, demo_result):
        features = _query_features(demo_result, 2)
        open_user = User(name="chief", clearance=9)
        result = database.search(features, user=open_user, k=3)
        assert result.hits


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, database, demo_result):
        path = tmp_path / "db.json"
        database.save(path)
        restored = VideoDatabase.load(path)
        assert restored.shot_count == database.shot_count
        assert set(restored.videos) == {"demo"}
        features = _query_features(demo_result, 2)
        original = database.search_flat(features, k=1)
        loaded = restored.search_flat(features, k=1)
        assert original.top.entry.key == loaded.top.entry.key
        # Hierarchical search works on the restored catalog too.
        restored.build_index()
        assert restored.search(features, k=1).top.entry.key == original.top.entry.key

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DatabaseError):
            VideoDatabase.load(tmp_path / "nope.json")

    def test_load_corrupt_file_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(DatabaseError):
            VideoDatabase.load(bad)

    def test_save_is_atomic(self, tmp_path, database, monkeypatch):
        # A serialisation failure mid-save must leave the previous
        # catalog intact and no temp file behind.
        path = tmp_path / "db.json"
        database.save(path)
        before = path.read_bytes()

        import json as json_module

        def boom(*_args, **_kwargs):
            raise RuntimeError("serialisation exploded")

        monkeypatch.setattr(json_module, "dump", boom)
        monkeypatch.setattr(json_module, "dumps", boom)
        with pytest.raises(RuntimeError):
            database.save(path)
        assert path.read_bytes() == before
        assert not list(tmp_path.glob(".*tmp*"))


class TestBeamDescent:
    def test_wider_beam_costs_more_finds_no_less(self, database, demo_result):
        from repro.database.query import search_hierarchical

        features = _query_features(demo_result, 2)
        narrow = search_hierarchical(database.index_root, features, k=3, beam=1)
        wide = search_hierarchical(database.index_root, features, k=3, beam=3)
        assert wide.stats.comparisons >= narrow.stats.comparisons
        assert wide.top.score >= narrow.top.score - 1e-9

    def test_beam_zero_rejected(self, database, demo_result):
        from repro.database.query import search_hierarchical

        features = _query_features(demo_result, 2)
        with pytest.raises(DatabaseError):
            search_hierarchical(database.index_root, features, beam=0)
