"""Tests for hierarchy serialisation (custom taxonomies)."""

import pytest

from repro.database.hierarchy import (
    ConceptLevel,
    ConceptNode,
    build_medical_hierarchy,
    hierarchy_from_dict,
    hierarchy_to_dict,
)
from repro.errors import DatabaseError


class TestRoundTrip:
    def test_medical_hierarchy_round_trips(self):
        root = build_medical_hierarchy()
        data = hierarchy_to_dict(root)
        rebuilt = hierarchy_from_dict(data)
        assert [n.name for n in rebuilt.walk()] == [n.name for n in root.walk()]
        assert [n.level for n in rebuilt.walk()] == [n.level for n in root.walk()]

    def test_parents_are_restored(self):
        root = build_medical_hierarchy()
        rebuilt = hierarchy_from_dict(hierarchy_to_dict(root))
        leaf = rebuilt.find("surgery/dialog")
        assert leaf is not None
        assert leaf.parent.name == "surgery"
        assert leaf.path()[0] == "medical_video_database"

    def test_custom_taxonomy(self):
        data = {
            "name": "veterinary_db",
            "level": "database",
            "children": [
                {
                    "name": "small_animal",
                    "level": "cluster",
                    "children": [
                        {"name": "feline", "level": "subcluster", "children": []}
                    ],
                }
            ],
        }
        root = hierarchy_from_dict(data)
        assert root.find("feline").level is ConceptLevel.SUBCLUSTER


class TestValidation:
    def test_missing_keys(self):
        with pytest.raises(DatabaseError):
            hierarchy_from_dict({"level": "database"})

    def test_unknown_level(self):
        with pytest.raises(DatabaseError):
            hierarchy_from_dict({"name": "x", "level": "galaxy"})

    def test_level_ordering_enforced(self):
        data = {
            "name": "root",
            "level": "scene",
            "children": [{"name": "bad", "level": "database", "children": []}],
        }
        with pytest.raises(DatabaseError):
            hierarchy_from_dict(data)

    def test_empty_children_default(self):
        root = hierarchy_from_dict({"name": "r", "level": "database"})
        assert root.children == []
        assert isinstance(root, ConceptNode)
