"""Tests for hierarchical access control."""

import pytest

from repro.database.access import (
    AccessController,
    FilterRule,
    Permission,
    User,
)
from repro.database.hierarchy import build_medical_hierarchy
from repro.errors import AccessDeniedError, DatabaseError


@pytest.fixture()
def controller():
    return AccessController(build_medical_hierarchy())


class TestClearance:
    def test_public_user_sees_presentations_only(self, controller):
        public = User(name="student", clearance=0)
        assert controller.check(public, "surgery/presentation")
        assert not controller.check(public, "surgery/dialog")
        assert not controller.check(public, "surgery/clinical_operation")

    def test_clearance_ladder(self, controller):
        resident = User(name="resident", clearance=2)
        assert controller.check(resident, "surgery/dialog")
        assert not controller.check(resident, "surgery/clinical_operation")
        attending = User(name="attending", clearance=3)
        assert controller.check(attending, "surgery/clinical_operation")

    def test_internal_nodes_accessible_at_zero(self, controller):
        public = User(name="student", clearance=0)
        assert controller.check(public, "medical_education")


class TestRules:
    def test_explicit_deny_beats_clearance(self, controller):
        admin = User(
            name="admin",
            clearance=9,
            rules=(FilterRule("surgery/dialog", Permission.DENY, "privacy study"),),
        )
        assert not controller.check(admin, "surgery/dialog")
        assert controller.check(admin, "dermatology/dialog")

    def test_explicit_allow_beats_clearance(self, controller):
        student = User(
            name="student",
            clearance=0,
            rules=(FilterRule("dermatology/clinical_operation", Permission.ALLOW),),
        )
        assert controller.check(student, "dermatology/clinical_operation")
        assert not controller.check(student, "surgery/clinical_operation")

    def test_rule_on_ancestor_applies_to_subtree(self, controller):
        blocked = User(
            name="blocked",
            clearance=9,
            rules=(FilterRule("surgery", Permission.DENY),),
        )
        assert not controller.check(blocked, "surgery/presentation")
        assert controller.check(blocked, "imaging/presentation")

    def test_deeper_rule_overrides_shallower(self, controller):
        user = User(
            name="u",
            clearance=0,
            rules=(
                FilterRule("surgery", Permission.DENY),
                FilterRule("surgery/presentation", Permission.ALLOW),
            ),
        )
        assert controller.check(user, "surgery/presentation")
        assert not controller.check(user, "surgery/dialog")

    def test_deny_wins_ties_at_same_depth(self, controller):
        user = User(
            name="u",
            clearance=0,
            rules=(
                FilterRule("surgery/dialog", Permission.ALLOW),
                FilterRule("surgery/dialog", Permission.DENY),
            ),
        )
        assert not controller.check(user, "surgery/dialog")

    def test_global_rules(self, controller):
        controller.add_rule(FilterRule("clinical_operation", Permission.DENY))
        chief = User(name="chief", clearance=9)
        assert not controller.check(chief, "surgery/clinical_operation")
        assert not controller.check(chief, "imaging/clinical_operation")


class TestApi:
    def test_require_raises(self, controller):
        public = User(name="student", clearance=0)
        with pytest.raises(AccessDeniedError):
            controller.require(public, "surgery/clinical_operation")
        controller.require(public, "surgery/presentation")  # no raise

    def test_unknown_concept_raises(self, controller):
        with pytest.raises(DatabaseError):
            controller.check(User(name="u"), "no/such/concept")

    def test_permitted_leaves(self, controller):
        public = User(name="student", clearance=0)
        leaves = controller.permitted_leaves(public)
        assert "surgery/presentation" in leaves
        assert "surgery/clinical_operation" not in leaves

    def test_audit_log_records_decisions(self, controller):
        user = User(name="auditee", clearance=0)
        controller.check(user, "surgery/presentation")
        controller.check(user, "surgery/dialog")
        log = controller.audit_log
        assert len(log) == 2
        assert log[0].granted and not log[1].granted
        assert log[0].user == "auditee"
        assert "clearance" in log[1].reason
