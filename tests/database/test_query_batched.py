"""Regression: batched query scoring reproduces the scalar descent.

The hierarchical search now ranks leaf candidates and scores child
centres through the batched kernels.  These tests pin the contract the
serving metrics rely on: ``QueryStats.comparisons`` still counts
*logical* pair evaluations (identical to the pre-batch scalar path),
and hit ordering/scores are unchanged.  The scalar reference below is
the pre-batch implementation, kept verbatim as the oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.database.flat import FlatIndex
from repro.database.index import (
    IndexNode,
    ShotEntry,
    build_node,
    combine_features,
    feature_similarity,
    route_child,
)
from repro.database.query import (
    QueryStats,
    RankedShot,
    search_hierarchical,
)

TOLERANCE = 1e-9


def _random_entries(
    rng: np.random.Generator, video: str, scene_id: int, count: int
) -> list[ShotEntry]:
    entries = []
    for shot_id in range(count):
        histogram = rng.random(256)
        histogram /= histogram.sum()
        entries.append(
            ShotEntry(
                video_title=video,
                shot_id=scene_id * 1000 + shot_id,
                scene_id=scene_id,
                features=combine_features(histogram, rng.random(10) * 0.3),
            )
        )
    return entries


@pytest.fixture()
def index_tree(rng):
    """Root -> 2 clusters -> 4 scene leaves over random entries."""
    leaves = [
        build_node(f"scene-{i}", depth=2, entries=_random_entries(rng, "v", i, 12))
        for i in range(4)
    ]
    clusters = [
        build_node("cluster-a", depth=1, children=leaves[:2]),
        build_node("cluster-b", depth=1, children=leaves[2:]),
    ]
    return build_node("root", depth=0, children=clusters)


def _scalar_child_scores(node, features, stats):
    """Pre-batch `_child_scores`, kept as the oracle."""
    scored = []
    for child in node.children:
        if child.centers is None:
            continue
        best = -np.inf
        for center in child.centers:
            value = feature_similarity(features, center)
            stats.comparisons += 1
            if value > best:
                best = value
        scored.append((best, child))
    return scored


def _scalar_search(root, features, k=10, allowed_leaves=None, beam=2):
    """Pre-batch `search_hierarchical`, kept verbatim as the oracle."""
    stats = QueryStats()
    stats.visited_path.append(root.name)
    frontier = [root]
    leaves = []
    while frontier:
        next_frontier = []
        for node in frontier:
            if node.is_leaf:
                leaves.append(node)
                continue
            next_frontier.extend(_scalar_child_scores(node, features, stats))
        if not next_frontier:
            break
        next_frontier.sort(key=lambda item: item[0], reverse=True)
        frontier = [child for _, child in next_frontier[:beam]]
        for node in frontier:
            stats.visited_path.append(node.name)
    if allowed_leaves is not None:
        leaves = [leaf for leaf in leaves if leaf.name in allowed_leaves]
    scored = []
    seen = set()
    for leaf in leaves:
        for entry in leaf.leaf.probe(features):
            if entry.key in seen:
                continue
            seen.add(entry.key)
            scored.append(
                RankedShot(
                    entry=entry,
                    score=feature_similarity(features, entry.features, dims=leaf.dims),
                )
            )
            stats.comparisons += 1
    scored.sort(key=lambda hit: hit.score, reverse=True)
    stats.ranked = len(scored)
    return scored[:k], stats


def _query(rng) -> np.ndarray:
    histogram = rng.random(256)
    histogram /= histogram.sum()
    return combine_features(histogram, rng.random(10) * 0.3)


class TestBatchedSearchRegression:
    @pytest.mark.parametrize("beam", [1, 2, 4])
    def test_same_comparisons_and_ordering(self, rng, index_tree, beam):
        for _ in range(5):
            features = _query(rng)
            batched = search_hierarchical(index_tree, features, k=8, beam=beam)
            hits, stats = _scalar_search(index_tree, features, k=8, beam=beam)
            assert batched.stats.comparisons == stats.comparisons
            assert batched.stats.ranked == stats.ranked
            assert batched.stats.visited_path == stats.visited_path
            assert [h.entry.key for h in batched.hits] == [
                h.entry.key for h in hits
            ]
            for got, want in zip(batched.hits, hits):
                assert got.score == pytest.approx(want.score, abs=TOLERANCE)

    def test_access_filtered_descent(self, rng, index_tree):
        allowed = {"scene-1", "scene-3"}
        features = _query(rng)
        batched = search_hierarchical(
            index_tree, features, k=5, allowed_leaves=set(allowed), beam=4
        )
        hits, stats = _scalar_search(
            index_tree, features, k=5, allowed_leaves=allowed, beam=4
        )
        assert batched.stats.comparisons == stats.comparisons
        assert [h.entry.key for h in batched.hits] == [h.entry.key for h in hits]
        assert all(h.entry.scene_id in (1, 3) for h in batched.hits)


class TestRouteChildRegression:
    def test_comparisons_count_logical_pairs(self, rng, index_tree):
        features = _query(rng)
        child, comparisons = route_child(index_tree, features)
        stats = QueryStats()
        scored = _scalar_child_scores(index_tree, features, stats)
        assert comparisons == stats.comparisons
        best_score, best_child = max(scored, key=lambda item: item[0])
        assert child is best_child

    def test_empty_branch_skipped(self, rng):
        populated = build_node(
            "scene", depth=1, entries=_random_entries(rng, "v", 0, 4)
        )
        empty = IndexNode(name="empty", depth=1, leaf=None)
        root = IndexNode(name="root", depth=0, children=[empty, populated])
        child, comparisons = route_child(root, _query(rng))
        assert child is populated
        assert comparisons == populated.centers.shape[0]


class TestFlatScanRegression:
    def test_same_counts_and_ordering(self, rng):
        entries = _random_entries(rng, "v", 0, 30)
        flat = FlatIndex(entries)
        features = _query(rng)
        result = flat.search(features, k=10)
        assert result.stats.comparisons == len(entries)
        assert result.stats.ranked == len(entries)
        expected = sorted(
            (
                RankedShot(entry=e, score=feature_similarity(features, e.features))
                for e in entries
            ),
            key=lambda hit: hit.score,
            reverse=True,
        )
        assert [h.entry.key for h in result.hits] == [
            h.entry.key for h in expected[:10]
        ]
        for got, want in zip(result.hits, expected):
            assert got.score == pytest.approx(want.score, abs=TOLERANCE)

    def test_insert_invalidates_cached_matrix(self, rng):
        entries = _random_entries(rng, "v", 0, 6)
        flat = FlatIndex(entries[:5])
        flat.search(_query(rng))  # builds the cache
        flat.insert(entries[5])
        result = flat.search(_query(rng))
        assert result.stats.comparisons == 6
