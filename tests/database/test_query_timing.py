"""QueryStats timing must come from the monotonic clock.

Serving latency histograms are built straight from
``QueryStats.elapsed_seconds``; if any search path measured with the
wall clock (``time.time()``), an NTP step or DST change could produce
negative or wildly wrong latencies.  These tests sabotage the wall
clock and assert the measured search paths never notice.
"""

from __future__ import annotations

import time

import pytest

from repro.database.catalog import VideoDatabase
from repro.database.index import combine_features


@pytest.fixture(scope="module")
def database(demo_result):
    db = VideoDatabase()
    db.register(demo_result)
    db.build_index()
    return db


def _features(demo_result, index=2):
    shot = demo_result.structure.shots[index]
    return combine_features(shot.histogram, shot.texture)


def _sabotaged_wall_clock():
    raise AssertionError("search timing must not read the wall clock")


def test_hierarchical_search_never_reads_wall_clock(
    database, demo_result, monkeypatch
):
    monkeypatch.setattr(time, "time", _sabotaged_wall_clock)
    result = database.search(_features(demo_result), k=3)
    assert result.hits
    assert result.stats.elapsed_seconds >= 0.0


def test_flat_search_never_reads_wall_clock(database, demo_result, monkeypatch):
    monkeypatch.setattr(time, "time", _sabotaged_wall_clock)
    result = database.search_flat(_features(demo_result), k=3)
    assert result.hits
    assert result.stats.elapsed_seconds >= 0.0


def test_elapsed_is_positive_and_subsecond_resolution(database, demo_result):
    result = database.search(_features(demo_result), k=3)
    # perf_counter gives sub-millisecond resolution: a real search takes
    # more than zero time, and this one far less than a second.
    assert 0.0 < result.stats.elapsed_seconds < 1.0
