"""Tests for scene-level retrieval."""

import numpy as np
import pytest

from repro.database.index import combine_features
from repro.database.scene_search import SceneIndex
from repro.errors import DatabaseError
from repro.types import EventKind


@pytest.fixture(scope="module")
def index(demo_result):
    scene_index = SceneIndex()
    scene_index.register(demo_result)
    return scene_index


class TestSceneIndex:
    def test_register_counts_scenes(self, index, demo_result):
        assert len(index) == demo_result.structure.scene_count

    def test_entries_carry_events(self, index, demo_result):
        mined = demo_result.scene_events()
        for entry in index.entries:
            assert entry.event is mined[entry.scene_id]

    def test_centroid_is_mean_of_shots(self, index, demo_result):
        scene = demo_result.structure.scenes[0]
        expected = np.stack(
            [combine_features(s.histogram, s.texture) for s in scene.shots]
        ).mean(axis=0)
        entry = next(e for e in index.entries if e.scene_id == scene.scene_id)
        assert np.allclose(entry.centroid, expected)


class TestSearch:
    def test_scene_query_finds_itself_first(self, index, demo_result):
        scene = demo_result.structure.scenes[1]
        entry = next(e for e in index.entries if e.scene_id == scene.scene_id)
        hits = index.search(entry.centroid, k=3)
        assert hits[0].entry.scene_id == scene.scene_id

    def test_event_filter(self, index, demo_result):
        mined = demo_result.scene_events()
        target = next(iter(mined.values()))
        entry = index.entries[0]
        hits = index.search(entry.centroid, k=10, event=target)
        assert all(hit.entry.event is target for hit in hits)

    def test_shot_query_lands_in_its_scene(self, index, demo_result):
        scene = demo_result.structure.scenes[0]
        shot = scene.shots[1]
        features = combine_features(shot.histogram, shot.texture)
        hits = index.search(features, k=1)
        assert hits[0].entry.scene_id == scene.scene_id

    def test_empty_index_raises(self):
        with pytest.raises(DatabaseError):
            SceneIndex().search(np.zeros(266))


class TestSimilarScenes:
    def test_excludes_query_scene(self, index, demo_result):
        scene = demo_result.structure.scenes[0]
        hits = index.similar_scenes("demo", scene.scene_id, k=3)
        assert all(hit.entry.scene_id != scene.scene_id for hit in hits)

    def test_unknown_scene_raises(self, index):
        with pytest.raises(DatabaseError):
            index.similar_scenes("demo", 999)

    def test_scores_sorted(self, index, demo_result):
        scene = demo_result.structure.scenes[0]
        hits = index.similar_scenes("demo", scene.scene_id, k=5)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)
