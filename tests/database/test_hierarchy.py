"""Tests for the concept hierarchy."""

import pytest

from repro.database.hierarchy import (
    ConceptLevel,
    ConceptNode,
    build_medical_hierarchy,
    scene_node_for,
)
from repro.errors import DatabaseError
from repro.types import EventKind


class TestConceptNode:
    def test_add_child_levels(self):
        root = ConceptNode("root", ConceptLevel.DATABASE)
        cluster = root.add_child("c", ConceptLevel.CLUSTER)
        assert cluster.parent is root
        with pytest.raises(DatabaseError):
            cluster.add_child("x", ConceptLevel.CLUSTER)  # not deeper
        with pytest.raises(DatabaseError):
            root.add_child("c", ConceptLevel.CLUSTER)  # duplicate name

    def test_find_and_path(self):
        root = build_medical_hierarchy()
        node = root.find("surgery")
        assert node is not None
        assert node.path() == ["medical_video_database", "medical_education", "surgery"]
        assert root.find("nonexistent") is None

    def test_walk_and_leaves(self):
        root = build_medical_hierarchy()
        names = [node.name for node in root.walk()]
        assert names[0] == "medical_video_database"
        assert len(names) == len(set(names))
        leaves = root.leaves()
        assert all(not leaf.children for leaf in leaves)

    def test_is_ancestor_of(self):
        root = build_medical_hierarchy()
        surgery = root.find("surgery")
        leaf = root.find("surgery/presentation")
        assert root.is_ancestor_of(leaf)
        assert surgery.is_ancestor_of(leaf)
        assert not leaf.is_ancestor_of(surgery)
        assert not surgery.is_ancestor_of(surgery)


class TestMedicalHierarchy:
    def test_fig2_clusters(self):
        root = build_medical_hierarchy()
        clusters = [c.name for c in root.children]
        assert clusters == ["health_care", "medical_education", "medical_report"]

    def test_every_area_has_all_scene_concepts(self):
        root = build_medical_hierarchy()
        education = root.find("medical_education")
        for area in education.children:
            concepts = {c.name.split("/", 1)[1] for c in area.children}
            assert concepts == {k.value for k in EventKind}

    def test_level_depths(self):
        assert ConceptLevel.DATABASE.depth == 0
        assert ConceptLevel.SHOT.depth == 4


class TestSceneNodeFor:
    def test_known_video(self):
        root = build_medical_hierarchy()
        node = scene_node_for(root, "laparoscopy", EventKind.DIALOG)
        assert node.name == "surgery/dialog"

    def test_unknown_video_creates_general_area(self):
        root = build_medical_hierarchy()
        node = scene_node_for(root, "mystery_video", EventKind.PRESENTATION)
        assert node.name == "general/presentation"
        # Idempotent: calling again reuses the same subtree.
        again = scene_node_for(root, "mystery_video", EventKind.PRESENTATION)
        assert again is node
