"""Tests for catalog management operations (unregister, describe)."""

import pytest

from repro.database.catalog import VideoDatabase
from repro.errors import DatabaseError


@pytest.fixture()
def database(demo_result):
    db = VideoDatabase()
    db.register(demo_result)
    return db


class TestUnregister:
    def test_removes_all_entries(self, database, demo_result):
        removed = database.unregister("demo")
        assert removed == demo_result.structure.shot_count
        assert database.shot_count == 0
        assert database.videos == {}

    def test_unknown_title_raises(self, database):
        with pytest.raises(DatabaseError):
            database.unregister("nope")

    def test_reregistration_after_unregister(self, database, demo_result):
        database.unregister("demo")
        database.register(demo_result)
        assert database.shot_count == demo_result.structure.shot_count

    def test_index_invalidated(self, database, demo_result):
        database.build_index()
        database.unregister("demo")
        with pytest.raises(DatabaseError):
            database.build_index()  # nothing registered any more


class TestDescribe:
    def test_counts_sum_to_shots(self, database):
        stats = database.describe()
        assert sum(stats.values()) == database.shot_count
        assert all(leaf.count("/") == 1 or leaf for leaf in stats)

    def test_leaves_named_by_concept(self, database, demo_result):
        stats = database.describe()
        events = {event.value for event in demo_result.scene_events().values()}
        for leaf in stats:
            assert leaf.split("/")[-1] in events | {"unknown"}
