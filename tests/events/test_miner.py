"""Tests for the EventMiner orchestration (uses the mined demo video)."""

import pytest

from repro.errors import EventMiningError
from repro.events.miner import EventMiner
from repro.types import EventKind


class TestEventMiner:
    def test_mine_labels_every_scene(self, demo_structure, demo_video):
        miner = EventMiner()
        result = miner.mine(demo_structure.scenes, demo_video.stream.audio)
        assert len(result.events) == len(demo_structure.scenes)
        indices = {event.scene_index for event in result.events}
        assert indices == {scene.scene_id for scene in demo_structure.scenes}

    def test_event_of_scene_lookup(self, demo_result):
        events = demo_result.events
        first = demo_result.structure.scenes[0].scene_id
        assert events.event_of_scene(first).scene_index == first
        with pytest.raises(EventMiningError):
            events.event_of_scene(12345)

    def test_cue_cache_is_reused(self, demo_structure):
        miner = EventMiner()
        first = miner.visual_cues(demo_structure.shots[:3])
        second = miner.visual_cues(demo_structure.shots[:3])
        for shot in demo_structure.shots[:3]:
            assert first[shot.shot_id] is second[shot.shot_id]

    def test_no_audio_means_no_speech(self, demo_structure):
        miner = EventMiner()
        audio = miner.shot_audio(demo_structure.shots[:3], None)
        for analysis in audio.values():
            assert not analysis.has_speech
            assert analysis.mfcc_vectors.shape == (0, 14)

    def test_mining_without_audio_never_finds_dialog(self, demo_structure):
        miner = EventMiner()
        result = miner.mine(demo_structure.scenes, audio=None)
        kinds = {event.kind for event in result.events}
        assert EventKind.DIALOG not in kinds
