"""Tests for the event vocabulary."""

import pytest

from repro.events.model import SceneEvent
from repro.types import EventKind


class TestEventKind:
    def test_known_kinds(self):
        kinds = EventKind.known_kinds()
        assert len(kinds) == 3
        assert EventKind.UNKNOWN not in kinds

    def test_from_label_variants(self):
        assert EventKind.from_label("Presentation") is EventKind.PRESENTATION
        assert EventKind.from_label("clinical operation") is EventKind.CLINICAL_OPERATION
        assert EventKind.from_label("Clinical-Operation") is EventKind.CLINICAL_OPERATION
        assert EventKind.from_label("  dialog ") is EventKind.DIALOG

    def test_from_label_rejects_unknown(self):
        with pytest.raises(ValueError):
            EventKind.from_label("sports")

    def test_is_string_enum(self):
        assert EventKind.DIALOG.value == "dialog"
        assert EventKind("dialog") is EventKind.DIALOG


class TestSceneEvent:
    def test_is_known(self):
        known = SceneEvent(scene_index=0, kind=EventKind.DIALOG)
        unknown = SceneEvent(scene_index=1, kind=EventKind.UNKNOWN)
        assert known.is_known()
        assert not unknown.is_known()

    def test_evidence_tuple(self):
        event = SceneEvent(
            scene_index=0, kind=EventKind.DIALOG, evidence=("a", "b")
        )
        assert event.evidence == ("a", "b")
