"""Unit tests for the Sec. 4.3 decision rules on constructed evidence."""

import numpy as np
import pytest

from repro.core.features import Shot
from repro.core.groups import Group, GroupKind
from repro.core.scenes import Scene
from repro.errors import EventMiningError
from repro.events import rules as event_rules
from repro.events.rules import SceneEvidence, classify_scene
from repro.types import EventKind
from repro.video.frame import blank_frame
from repro.vision.blood import BloodDetection
from repro.vision.face import FaceDetection
from repro.vision.frames import SpecialFrameKind
from repro.vision.skin import SkinDetection
from repro.vision.cues import VisualCues

# Local aliases: the rule functions are named test_* in the library
# (after the paper's wording), so they must not be imported under those
# names or pytest would try to collect them.
rule_presentation = event_rules.test_presentation
rule_dialog = event_rules.test_dialog
rule_clinical = event_rules.test_clinical_operation


def _shot(shot_id: int) -> Shot:
    histogram = np.zeros(256)
    histogram[shot_id % 256] = 1.0
    return Shot(
        shot_id=shot_id,
        start=shot_id * 10,
        stop=(shot_id + 1) * 10,
        fps=10.0,
        representative_frame=blank_frame(4, 4),
        histogram=histogram,
        texture=np.zeros(10),
    )


def _scene(num_shots: int, temporal: bool = True) -> Scene:
    shots = [_shot(i) for i in range(num_shots)]
    group = Group(
        group_id=0,
        shots=shots,
        kind=GroupKind.TEMPORAL if temporal else GroupKind.SPATIAL,
    )
    return Scene(scene_id=0, groups=[group], representative_group=group)


def _cues(
    special: SpecialFrameKind = SpecialFrameKind.NATURAL,
    face: bool = False,
    face_closeup: bool = False,
    skin: bool = False,
    skin_closeup: bool = False,
    blood: bool = False,
) -> VisualCues:
    return VisualCues(
        special=special,
        face=FaceDetection(
            faces=(),
            has_face=face or face_closeup,
            has_closeup=face_closeup,
            largest_fraction=0.15 if face_closeup else (0.05 if face else 0.0),
        ),
        skin=SkinDetection(
            regions=(),
            mask_fraction=0.0,
            largest_fraction=0.3 if skin_closeup else (0.05 if skin else 0.0),
            has_skin=skin or skin_closeup,
            has_closeup=skin_closeup,
        ),
        blood=BloodDetection(
            regions=(), mask_fraction=0.0,
            largest_fraction=0.1 if blood else 0.0, has_blood=blood,
        ),
    )


def _evidence(scene, cue_list, changes, same_pairs=()):
    return SceneEvidence(
        scene=scene,
        cues={i: cue for i, cue in enumerate(cue_list)},
        audio={},
        adjacent_changes=list(changes),
        same_speaker_pairs=set(same_pairs),
    )


class TestPresentationRule:
    def _good(self):
        scene = _scene(4, temporal=True)
        cues = [
            _cues(face_closeup=True, skin=True),
            _cues(special=SpecialFrameKind.SLIDE),
            _cues(face_closeup=True, skin=True),
            _cues(special=SpecialFrameKind.SLIDE),
        ]
        return scene, cues

    def test_fires_on_full_evidence(self):
        scene, cues = self._good()
        ok, notes = rule_presentation(_evidence(scene, cues, [False] * 3))
        assert ok
        assert any("slide" in note for note in notes)

    def test_clipart_counts_as_slide(self):
        scene, cues = self._good()
        cues[1] = _cues(special=SpecialFrameKind.CLIPART)
        ok, _ = rule_presentation(_evidence(scene, cues, [False] * 3))
        assert ok

    def test_requires_slide(self):
        scene, cues = self._good()
        cues[1] = _cues()
        cues[3] = _cues()
        ok, notes = rule_presentation(_evidence(scene, cues, [False] * 3))
        assert not ok
        assert "no slide or clip-art frame" in notes

    def test_requires_face_closeup(self):
        scene, cues = self._good()
        cues[0] = _cues(face=True)
        cues[2] = _cues(face=True)
        ok, notes = rule_presentation(_evidence(scene, cues, [False] * 3))
        assert not ok
        assert "no face close-up" in notes[-1]

    def test_requires_temporal_group(self):
        scene = _scene(4, temporal=False)
        _, cues = self._good()
        ok, notes = rule_presentation(_evidence(scene, cues, [False] * 3))
        assert not ok
        assert "spatially related" in notes[-1]

    def test_rejects_speaker_change(self):
        scene, cues = self._good()
        ok, notes = rule_presentation(_evidence(scene, cues, [False, True, False]))
        assert not ok
        assert "speaker change" in notes[-1]

    def test_untestable_changes_do_not_block(self):
        scene, cues = self._good()
        ok, _ = rule_presentation(_evidence(scene, cues, [None, None, None]))
        assert ok


class TestDialogRule:
    def _good(self):
        scene = _scene(4, temporal=True)
        cues = [_cues(face_closeup=True, skin=True) for _ in range(4)]
        changes = [True, True, True]
        same_pairs = {(0, 2), (1, 3)}
        return scene, cues, changes, same_pairs

    def test_fires_on_full_evidence(self):
        scene, cues, changes, pairs = self._good()
        ok, _ = rule_dialog(_evidence(scene, cues, changes, pairs))
        assert ok

    def test_requires_adjacent_faces(self):
        scene, cues, changes, pairs = self._good()
        cues[1] = _cues()
        cues[3] = _cues()
        ok, notes = rule_dialog(_evidence(scene, cues, changes, pairs))
        assert not ok
        assert "no adjacent face-bearing shots" in notes

    def test_requires_temporal_group(self):
        scene = _scene(4, temporal=False)
        _, cues, changes, pairs = self._good()
        ok, _ = rule_dialog(_evidence(scene, cues, changes, pairs))
        assert not ok

    def test_requires_speaker_change_between_faces(self):
        scene, cues, _, pairs = self._good()
        ok, notes = rule_dialog(_evidence(scene, cues, [False] * 3, pairs))
        assert not ok
        assert "no speaker change" in notes[-1]

    def test_requires_duplicated_speaker(self):
        scene, cues, changes, _ = self._good()
        ok, notes = rule_dialog(_evidence(scene, cues, changes, set()))
        assert not ok
        assert "no duplicated speaker" in notes[-1]


class TestClinicalRule:
    def test_fires_on_skin_closeup(self):
        scene = _scene(3)
        cues = [_cues(skin_closeup=True), _cues(), _cues()]
        ok, _ = rule_clinical(_evidence(scene, cues, [False, False]))
        assert ok

    def test_fires_on_blood(self):
        scene = _scene(3)
        cues = [_cues(), _cues(blood=True), _cues()]
        ok, _ = rule_clinical(_evidence(scene, cues, [None, None]))
        assert ok

    def test_fires_on_majority_skin(self):
        scene = _scene(3)
        cues = [_cues(skin=True), _cues(skin=True), _cues()]
        ok, notes = rule_clinical(_evidence(scene, cues, [False, False]))
        assert ok
        assert "skin regions in 2/3" in notes[-1]

    def test_rejects_speaker_change(self):
        scene = _scene(3)
        cues = [_cues(skin_closeup=True), _cues(), _cues()]
        ok, _ = rule_clinical(_evidence(scene, cues, [True, False]))
        assert not ok

    def test_rejects_without_evidence(self):
        scene = _scene(3)
        cues = [_cues(), _cues(), _cues()]
        ok, notes = rule_clinical(_evidence(scene, cues, [False, False]))
        assert not ok
        assert "insufficient" in notes[-1]


class TestClassifyScene:
    def test_priority_order(self):
        """A scene satisfying presentation AND clinical goes to
        presentation: the rules are tested in the paper's order."""
        scene = _scene(4, temporal=True)
        cues = [
            _cues(face_closeup=True, skin_closeup=True, blood=True),
            _cues(special=SpecialFrameKind.SLIDE),
            _cues(face_closeup=True, skin=True),
            _cues(special=SpecialFrameKind.SLIDE),
        ]
        event = classify_scene(_evidence(scene, cues, [False] * 3))
        assert event.kind is EventKind.PRESENTATION

    def test_unknown_when_nothing_matches(self):
        scene = _scene(3)
        cues = [_cues(), _cues(), _cues()]
        event = classify_scene(_evidence(scene, cues, [True, True]))
        assert event.kind is EventKind.UNKNOWN
        assert event.evidence == ("no rule matched",)

    def test_missing_cues_raise(self):
        scene = _scene(2)
        with pytest.raises(EventMiningError):
            SceneEvidence(scene=scene, cues={0: _cues()}, audio={})
