"""Tests for the event colour bar."""

import pytest

from repro.errors import SkimmingError
from repro.skimming.colorbar import (
    build_color_bar,
    event_at_frame,
    render_text_bar,
)
from repro.types import EventKind


@pytest.fixture(scope="module")
def bar(demo_result):
    return build_color_bar(demo_result.structure, demo_result.events.events)


class TestColorBar:
    def test_tiles_entire_video(self, bar, demo_structure):
        assert bar[0].start == 0
        assert bar[-1].stop == demo_structure.shots[-1].stop
        for left, right in zip(bar, bar[1:]):
            assert left.stop == right.start

    def test_scene_spans_carry_events(self, bar, demo_result):
        mined = demo_result.scene_events()
        for scene in demo_result.structure.scenes:
            start, _ = scene.frame_span
            assert event_at_frame(bar, start) is mined[scene.scene_id]

    def test_gaps_are_unknown(self, bar, demo_structure):
        scene_frames = set()
        for scene in demo_structure.scenes:
            start, stop = scene.frame_span
            scene_frames.update(range(start, stop))
        gap_frames = [
            f for f in range(demo_structure.shots[-1].stop) if f not in scene_frames
        ]
        if gap_frames:
            assert event_at_frame(bar, gap_frames[0]) is EventKind.UNKNOWN

    def test_event_outside_bar_raises(self, bar, demo_structure):
        with pytest.raises(SkimmingError):
            event_at_frame(bar, demo_structure.shots[-1].stop + 100)

    def test_text_rendering(self, bar):
        text = render_text_bar(bar, width=40)
        assert len(text) == 40
        assert set(text) <= {"P", "D", "C", "."}

    def test_render_empty_raises(self):
        with pytest.raises(SkimmingError):
            render_text_bar([])

    def test_span_color_names(self, bar):
        names = {span.color_name for span in bar}
        assert names <= {"blue", "green", "red", "gray"}
