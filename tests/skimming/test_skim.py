"""Tests for skim construction and playback."""

import pytest

from repro.errors import SkimmingError
from repro.skimming.levels import build_level_shots
from repro.skimming.skim import build_skim
from repro.types import EventKind


@pytest.fixture(scope="module")
def skim(demo_result):
    return build_skim(demo_result.structure, demo_result.events.events)


class TestLevels:
    def test_levels_are_nested_in_size(self, demo_structure):
        levels = build_level_shots(demo_structure)
        assert len(levels[1]) >= len(levels[2]) >= len(levels[3]) >= len(levels[4])
        assert len(levels[4]) >= 1

    def test_level1_is_all_shots(self, demo_structure):
        levels = build_level_shots(demo_structure)
        assert [s.shot_id for s in levels[1]] == [
            s.shot_id for s in demo_structure.shots
        ]

    def test_level_shots_are_sorted(self, demo_structure):
        levels = build_level_shots(demo_structure)
        for level, shots in levels.items():
            ids = [s.shot_id for s in shots]
            assert ids == sorted(ids), f"level {level} unsorted"

    def test_higher_levels_use_representatives(self, demo_structure):
        levels = build_level_shots(demo_structure)
        group_reps = {
            rep.shot_id
            for group in demo_structure.groups
            for rep in group.representative_shots
        }
        assert {s.shot_id for s in levels[2]} <= group_reps


class TestScalableSkim:
    def test_default_level_is_three(self, skim):
        assert skim.current_level == 3

    def test_switching(self, skim):
        skim.switch_level(4)
        assert skim.current_level == 4
        assert skim.coarser() == 4  # clamped at the top
        assert skim.finer() == 3
        skim.switch_level(1)
        assert skim.finer() == 1  # clamped at the bottom
        skim.switch_level(3)

    def test_switch_to_bad_level_raises(self, skim):
        with pytest.raises(SkimmingError):
            skim.switch_level(9)

    def test_play_yields_segments_in_order(self, skim):
        segments = list(skim.play(level=2))
        starts = [s.shot.start for s in segments]
        assert starts == sorted(starts)

    def test_events_attached(self, skim):
        kinds = {segment.event for segment in skim.segments(1)}
        assert kinds & set(EventKind.known_kinds())

    def test_frame_count_decreases_with_level(self, skim):
        assert skim.frame_count(4) <= skim.frame_count(3) <= skim.frame_count(1)

    def test_scroll_position_monotone(self, skim):
        segments = skim.segments(2)
        positions = [skim.scroll_position(i, 2) for i in range(len(segments))]
        assert positions == sorted(positions)
        assert all(0.0 <= p <= 1.0 for p in positions)

    def test_scroll_position_bounds(self, skim):
        with pytest.raises(SkimmingError):
            skim.scroll_position(999, 2)

    def test_seek(self, skim):
        first = skim.seek(0.0, level=1)
        last = skim.seek(1.0, level=1)
        assert first.shot.start <= last.shot.start
        with pytest.raises(SkimmingError):
            skim.seek(1.5)

    def test_seek_hits_nearest_segment(self, skim):
        target = skim.segments(1)[3]
        centre = (target.shot.start + target.shot.stop) / 2
        position = centre / (skim.total_frames - 1)
        assert skim.seek(position, level=1).shot.shot_id == target.shot.shot_id
