"""Tests for the hierarchical browser."""

import pytest

from repro.errors import SkimmingError
from repro.skimming.browser import BrowseLevel, HierarchyBrowser


@pytest.fixture()
def browser(demo_result):
    return HierarchyBrowser(demo_result.structure, demo_result.events.events)


class TestNavigation:
    def test_starts_at_clusters(self, browser, demo_structure):
        assert browser.level is BrowseLevel.CLUSTERS
        assert len(browser.entries()) == len(demo_structure.clustered_scenes)

    def test_descend_to_shots(self, browser):
        assert browser.enter() is BrowseLevel.SCENES
        assert browser.enter() is BrowseLevel.GROUPS
        assert browser.enter() is BrowseLevel.SHOTS
        assert browser.entries()
        with pytest.raises(SkimmingError):
            browser.enter()

    def test_up_restores_cursor(self, browser):
        browser.next()
        position = browser.cursor
        browser.enter()
        assert browser.cursor == 0
        browser.up()
        assert browser.cursor == position
        assert browser.level is BrowseLevel.CLUSTERS

    def test_up_from_top_raises(self, browser):
        with pytest.raises(SkimmingError):
            browser.up()

    def test_cursor_clamps(self, browser):
        for _ in range(100):
            browser.next()
        assert browser.cursor == len(browser.entries()) - 1
        for _ in range(100):
            browser.previous()
        assert browser.cursor == 0

    def test_entries_have_detail(self, browser):
        browser.enter()  # scenes
        for entry in browser.entries():
            assert "event=" in entry.detail

    def test_group_listing_shows_kind(self, browser):
        browser.enter()
        browser.enter()
        details = [entry.detail for entry in browser.entries()]
        assert all(("temporal" in d) or ("spatial" in d) for d in details)


class TestRendering:
    def test_breadcrumb_deepens(self, browser, demo_structure):
        assert browser.breadcrumb() == demo_structure.title
        browser.enter()
        assert "cluster" in browser.breadcrumb()
        browser.enter()
        assert "scene" in browser.breadcrumb()

    def test_render_marks_cursor(self, browser):
        browser.next()
        text = browser.render()
        lines = text.splitlines()[1:]
        marked = [line for line in lines if line.startswith(" >")]
        assert len(marked) == 1


class TestLevels:
    def test_level_stepping(self):
        assert BrowseLevel.CLUSTERS.finer() is BrowseLevel.SCENES
        assert BrowseLevel.SHOTS.finer() is BrowseLevel.SHOTS
        assert BrowseLevel.SHOTS.coarser() is BrowseLevel.GROUPS
        assert BrowseLevel.CLUSTERS.coarser() is BrowseLevel.CLUSTERS
