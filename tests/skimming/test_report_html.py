"""Tests for the HTML report generator and BMP encoder."""

import base64
import struct

import numpy as np
import pytest

from repro.errors import SkimmingError
from repro.skimming.report_html import (
    bmp_data_uri,
    encode_bmp,
    render_report,
    save_report,
)


class TestBmp:
    def test_header_fields(self):
        image = np.zeros((2, 3, 3), dtype=np.uint8)
        data = encode_bmp(image)
        assert data[:2] == b"BM"
        file_size = struct.unpack("<I", data[2:6])[0]
        assert file_size == len(data)
        width, height = struct.unpack("<ii", data[18:26])
        assert (width, height) == (3, 2)
        bpp = struct.unpack("<H", data[28:30])[0]
        assert bpp == 24

    def test_pixel_order_bottom_up_bgr(self):
        image = np.zeros((1, 1, 3), dtype=np.uint8)
        image[0, 0] = (10, 20, 30)  # RGB
        data = encode_bmp(image)
        # Payload starts at offset 54; stored as BGR.
        assert data[54:57] == bytes([30, 20, 10])

    def test_row_padding(self):
        image = np.zeros((2, 1, 3), dtype=np.uint8)  # 3 bytes/row -> pad 1
        data = encode_bmp(image)
        assert len(data) == 54 + 2 * 4

    def test_rejects_bad_input(self):
        with pytest.raises(SkimmingError):
            encode_bmp(np.zeros((2, 2, 3)))

    def test_data_uri_prefix(self):
        uri = bmp_data_uri(np.zeros((1, 1, 3), dtype=np.uint8))
        assert uri.startswith("data:image/bmp;base64,")
        decoded = base64.b64decode(uri.split(",", 1)[1])
        assert decoded[:2] == b"BM"


class TestReport:
    def test_render_contains_sections(self, demo_result):
        text = render_report(demo_result)
        assert "<!DOCTYPE html>" in text
        assert "ClassMiner report — demo" in text
        assert "Event colour bar" in text
        assert "Level 4 storyboard" in text
        assert text.count("data:image/bmp;base64,") >= 2

    def test_scene_table_lists_every_scene(self, demo_result):
        text = render_report(demo_result)
        for scene in demo_result.structure.scenes:
            assert f"<td>{scene.scene_id}</td>" in text

    def test_save_report(self, demo_result, tmp_path):
        path = tmp_path / "report.html"
        save_report(demo_result, path, storyboard_levels=(4,))
        content = path.read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert "Level 3" not in content  # only level 4 requested

    def test_requires_events(self, demo_video):
        from repro.core import ClassMiner

        bare = ClassMiner().mine(demo_video.stream, mine_events=False)
        with pytest.raises(SkimmingError):
            render_report(bare)
