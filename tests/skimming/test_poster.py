"""Tests for pictorial-summary poster composition and PPM IO."""

import numpy as np
import pytest

from repro.errors import SkimmingError
from repro.skimming.poster import (
    BORDER,
    BORDER_COLORS,
    GUTTER,
    compose_poster,
    read_ppm,
    save_poster,
    write_ppm,
)
from repro.skimming.skim import build_skim


@pytest.fixture(scope="module")
def skim(demo_result):
    return build_skim(demo_result.structure, demo_result.events.events)


class TestCompose:
    def test_dimensions(self, skim):
        segments = skim.segments(3)
        frame_h, frame_w, _ = segments[0].shot.representative_frame.shape
        columns = 2
        rows = -(-len(segments) // columns)
        poster = compose_poster(skim, level=3, columns=columns)
        assert poster.shape == (
            rows * (frame_h + 2 * BORDER) + (rows + 1) * GUTTER,
            columns * (frame_w + 2 * BORDER) + (columns + 1) * GUTTER,
            3,
        )
        assert poster.dtype == np.uint8

    def test_frames_are_embedded(self, skim):
        poster = compose_poster(skim, level=3, columns=3)
        first = skim.segments(3)[0].shot.representative_frame.pixels
        top = GUTTER + BORDER
        left = GUTTER + BORDER
        window = poster[top : top + first.shape[0], left : left + first.shape[1]]
        assert np.array_equal(window, first)

    def test_border_color_matches_event(self, skim):
        poster = compose_poster(skim, level=3, columns=3)
        first = skim.segments(3)[0]
        expected = BORDER_COLORS[first.event]
        assert tuple(poster[GUTTER, GUTTER]) == expected

    def test_rejects_bad_columns(self, skim):
        with pytest.raises(SkimmingError):
            compose_poster(skim, columns=0)


class TestPpm:
    def test_round_trip(self, tmp_path, rng):
        image = rng.integers(0, 256, (10, 14, 3), dtype=np.uint8)
        path = tmp_path / "img.ppm"
        write_ppm(image, path)
        loaded = read_ppm(path)
        assert np.array_equal(loaded, image)

    def test_header(self, tmp_path):
        image = np.zeros((2, 3, 3), dtype=np.uint8)
        path = tmp_path / "img.ppm"
        write_ppm(image, path)
        assert path.read_bytes().startswith(b"P6\n3 2\n255\n")

    def test_write_rejects_bad_dtype(self, tmp_path):
        with pytest.raises(SkimmingError):
            write_ppm(np.zeros((2, 2, 3)), tmp_path / "x.ppm")

    def test_read_rejects_non_ppm(self, tmp_path):
        bad = tmp_path / "bad.ppm"
        bad.write_bytes(b"GIF89a...")
        with pytest.raises(SkimmingError):
            read_ppm(bad)

    def test_read_rejects_truncated(self, tmp_path):
        bad = tmp_path / "trunc.ppm"
        bad.write_bytes(b"P6")
        with pytest.raises(SkimmingError):
            read_ppm(bad)

    def test_save_poster(self, skim, tmp_path):
        path = tmp_path / "poster.ppm"
        poster = save_poster(skim, path, level=4, columns=2)
        assert np.array_equal(read_ppm(path), poster)
