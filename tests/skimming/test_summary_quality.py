"""Tests for FCR accounting, storyboards and the viewer panel."""

import pytest

from repro.errors import SkimmingError
from repro.skimming.quality import (
    best_level,
    evaluate_all_levels,
    objective_scores,
    panel_scores,
)
from repro.skimming.skim import build_skim
from repro.skimming.summary import (
    fcr_by_level,
    frame_compression_ratio,
    pictorial_summary,
    render_storyboard,
)


@pytest.fixture(scope="module")
def skim(demo_result):
    return build_skim(demo_result.structure, demo_result.events.events)


class TestFcr:
    def test_level1_is_full_video(self, skim):
        assert frame_compression_ratio(skim, 1) == pytest.approx(1.0)

    def test_monotone_decreasing_with_level(self, skim):
        fcr = fcr_by_level(skim)
        assert fcr[4] <= fcr[3] <= fcr[2] <= fcr[1]

    def test_top_level_strongly_compressed(self, skim):
        # Fig. 15: about 10% at the top layer; allow slack on a tiny demo.
        assert frame_compression_ratio(skim, 4) < 0.6


class TestStoryboard:
    def test_cells_match_segments(self, skim):
        cells = pictorial_summary(skim, level=3)
        assert len(cells) == len(skim.segments(3))
        for cell in cells:
            assert cell.caption().startswith("shot ")

    def test_render(self, skim):
        text = render_storyboard(skim, level=3, columns=2)
        assert "shot" in text
        assert "\n" in text or len(skim.segments(3)) <= 2


class TestQualityPanel:
    def test_objective_scores_in_range(self, skim, demo_truth):
        for level in (1, 2, 3, 4):
            scores = objective_scores(skim, demo_truth, level)
            assert all(0.0 <= q <= 5.0 for q in scores)

    def test_level1_covers_everything(self, skim, demo_truth):
        q1, q2, _ = objective_scores(skim, demo_truth, 1)
        assert q1 == pytest.approx(5.0)
        assert q2 == pytest.approx(5.0)

    def test_conciseness_improves_with_level(self, skim, demo_truth):
        _, _, q3_fine = objective_scores(skim, demo_truth, 1)
        _, _, q3_coarse = objective_scores(skim, demo_truth, 4)
        assert q3_coarse > q3_fine

    def test_panel_is_deterministic_per_seed(self, skim, demo_truth):
        a = panel_scores(skim, demo_truth, 3, seed=5)
        b = panel_scores(skim, demo_truth, 3, seed=5)
        assert a == b

    def test_panel_close_to_objective(self, skim, demo_truth):
        objective = objective_scores(skim, demo_truth, 3)
        panel = panel_scores(skim, demo_truth, 3, viewers=25, seed=1)
        for subjective, true_value in zip(panel.as_tuple(), objective):
            assert subjective == pytest.approx(true_value, abs=0.5)

    def test_evaluate_all_levels(self, skim, demo_truth):
        scores = evaluate_all_levels(skim, demo_truth)
        assert [s.level for s in scores] == [1, 2, 3, 4]
        winner = best_level(scores)
        assert winner in (2, 3)  # paper finds the mid levels optimal

    def test_zero_viewers_rejected(self, skim, demo_truth):
        with pytest.raises(SkimmingError):
            panel_scores(skim, demo_truth, 3, viewers=0)

    def test_best_level_requires_scores(self):
        with pytest.raises(SkimmingError):
            best_level([])
