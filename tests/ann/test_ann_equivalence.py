"""ANN-tier contracts against the exact hierarchical path.

Three pinned properties:

* ``nprobe >= cells`` with an unbounded re-rank tail is **bit-identical**
  to the exact path — hits, scores, tie-break order, stats, access
  scoping, any ``k``;
* recall@10 grows monotonically in ``nprobe`` when every survivor is
  re-ranked exactly (nested candidate sets under exact scoring);
* a finite ``rerank_k`` is the only thing that triggers the uint8 scan,
  and its work is reported through ``approx_comparisons``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann.index import AnnLeafIndex, build_leaf_ann, resolve_ann
from repro.database.access import User
from repro.database.query import search_hierarchical
from repro.errors import DatabaseError

#: Larger than any leaf's trained cell count: prunes nothing.
NPROBE_ALL = 1_000_000


def hits(result):
    return [
        (h.entry.video_title, h.entry.shot_id, h.score) for h in result.hits
    ]


class TestBitIdenticalAtFullProbe:
    def test_hits_scores_and_stats_match_exact(self, ann_db, probes):
        for probe in probes:
            exact = search_hierarchical(ann_db.index_root, probe, k=10)
            ann = search_hierarchical(
                ann_db.index_root, probe, k=10, nprobe=NPROBE_ALL
            )
            assert hits(ann) == hits(exact)
            assert ann.stats.comparisons == exact.stats.comparisons
            assert ann.stats.ranked == exact.stats.ranked
            assert ann.stats.visited_path == exact.stats.visited_path
            # No cell pruned and no tail bound: the uint8 scan never ran.
            assert ann.stats.approx_comparisons == 0
            assert ann.stats.reranked == ann.stats.ranked
            assert not ann.stats.ann_degraded

    def test_k_sweep_matches_exact(self, ann_db, probes):
        for k in (1, 3, 1000):
            exact = search_hierarchical(ann_db.index_root, probes[0], k=k)
            ann = search_hierarchical(
                ann_db.index_root, probes[0], k=k, nprobe=NPROBE_ALL
            )
            assert hits(ann) == hits(exact)

    def test_tie_break_order_matches_exact(self):
        # Identical registered shots tie exactly; the ANN path must keep
        # the exact path's insertion-order tie-break.
        from repro.storage import build_synthetic_database
        from repro.types import EventKind

        database = build_synthetic_database(videos=6, shots_per_video=4, seed=5)
        dup = np.random.default_rng(9).random(266)
        database.register_entries(
            "dup_video", [(0, EventKind.DIALOG, [dup, dup.copy(), dup.copy()])]
        )
        exact = search_hierarchical(database.index_root, dup, k=25)
        ann = search_hierarchical(
            database.index_root, dup, k=25, nprobe=NPROBE_ALL
        )
        scores = [h.score for h in exact.hits]
        assert len(set(scores)) < len(scores)  # the duplicates really tie
        assert hits(ann) == hits(exact)

    def test_access_scoped_search_matches_exact(self, ann_db, probes):
        for user in (
            User(name="student", clearance=1),
            User(name="surgeon", clearance=3),
        ):
            allowed = set(ann_db.controller.permitted_leaves(user))
            for probe in probes[:3]:
                exact = search_hierarchical(
                    ann_db.index_root, probe, k=10, allowed_leaves=allowed
                )
                ann = search_hierarchical(
                    ann_db.index_root,
                    probe,
                    k=10,
                    allowed_leaves=allowed,
                    nprobe=NPROBE_ALL,
                )
                assert hits(ann) == hits(exact)
                assert ann.stats.comparisons == exact.stats.comparisons

    def test_empty_scope_stays_empty(self, ann_db, probes):
        result = search_hierarchical(
            ann_db.index_root,
            probes[0],
            k=10,
            allowed_leaves=set(),
            nprobe=NPROBE_ALL,
        )
        assert result.hits == []


class TestRecallMonotonicity:
    def test_recall_at_10_monotone_in_nprobe(self, ann_db, probes):
        for probe in probes:
            exact_keys = {
                (h.entry.video_title, h.entry.shot_id)
                for h in search_hierarchical(ann_db.index_root, probe, k=10).hits
            }
            recalls = []
            for nprobe in (1, 2, 4, 8, 16, NPROBE_ALL):
                got = {
                    (h.entry.video_title, h.entry.shot_id)
                    for h in search_hierarchical(
                        ann_db.index_root, probe, k=10, nprobe=nprobe
                    ).hits
                }
                recalls.append(len(got & exact_keys) / len(exact_keys))
            assert recalls == sorted(recalls)
            assert recalls[-1] == 1.0

    def test_pruning_reduces_exact_work(self, ann_db, probes):
        exact = search_hierarchical(ann_db.index_root, probes[4], k=10)
        pruned = search_hierarchical(
            ann_db.index_root, probes[4], k=10, nprobe=1
        )
        assert pruned.stats.comparisons <= exact.stats.comparisons


class TestRerankTail:
    def test_finite_tail_triggers_and_reports_uint8_scan(self, ann_db, probes):
        bounded = search_hierarchical(
            ann_db.index_root, probes[4], k=10, nprobe=NPROBE_ALL, rerank_k=4
        )
        full = search_hierarchical(
            ann_db.index_root, probes[4], k=10, nprobe=NPROBE_ALL
        )
        assert bounded.stats.approx_comparisons > 0
        assert bounded.stats.reranked <= full.stats.reranked
        assert bounded.stats.reranked > 0
        # Every survivor was still scored by the exact kernel.
        assert bounded.stats.reranked <= bounded.stats.comparisons

    def test_top_hit_survives_small_tail_for_near_probe(self, ann_db, probes):
        # probes[0] is a near-duplicate of a stored entry: even a tiny
        # exact tail must keep the true best hit.
        exact_top = search_hierarchical(ann_db.index_root, probes[0], k=1).top
        ann_top = search_hierarchical(
            ann_db.index_root, probes[0], k=1, nprobe=NPROBE_ALL, rerank_k=8
        ).top
        assert ann_top.entry.key == exact_top.entry.key
        assert ann_top.score == exact_top.score

    def test_validation(self, ann_db, probes):
        with pytest.raises(DatabaseError, match="nprobe"):
            search_hierarchical(ann_db.index_root, probes[0], nprobe=0)
        with pytest.raises(DatabaseError, match="rerank_k"):
            search_hierarchical(
                ann_db.index_root, probes[0], nprobe=2, rerank_k=0
            )


class TestResolveAnn:
    def test_eager_leaf_builds_once_and_caches(self, ann_db):
        leaf = next(
            node
            for node in _iter_leaves(ann_db.index_root)
            if node.leaf is not None and len(node.leaf) > 0
        )
        leaf.ann = None
        first, degraded = resolve_ann(leaf)
        assert isinstance(first, AnnLeafIndex)
        assert not degraded
        again, _ = resolve_ann(leaf)
        assert again is first

    def test_rebuild_is_deterministic(self, ann_db):
        leaf = next(
            node
            for node in _iter_leaves(ann_db.index_root)
            if node.leaf is not None and len(node.leaf) > 0
        )
        _entries, matrix = leaf.leaf.fallback_block()
        a = build_leaf_ann(matrix, leaf.dims)
        b = build_leaf_ann(matrix, leaf.dims)
        assert a.digest() == b.digest()

    def test_bucket_rows_match_hash_index(self, ann_db, probes):
        leaf = next(
            node
            for node in _iter_leaves(ann_db.index_root)
            if node.leaf is not None and len(node.leaf) > 2
        )
        index, _ = resolve_ann(leaf)
        entries = leaf.leaf.all_entries()
        from repro.database.index import leaf_signature

        for probe in probes:
            sig = leaf_signature(probe)
            expected = [
                e.key for e in leaf.leaf.bucket_block(probe)[0]
            ]
            got = [entries[int(r)].key for r in index.bucket_rows(sig)]
            assert got == expected


def _iter_leaves(node):
    if node.is_leaf:
        yield node
        return
    for child in node.children:
        yield from _iter_leaves(child)
