"""Quantizer determinism + code fidelity.

The ANN tier only stays trustworthy if training is a pure function of
``(data, cells, seed)`` — including across processes, which is what
lets every shard train its own quantizer and still agree with a
rebuild.  These tests pin that, plus the scalar codes' error bound and
the monotone decomposition the uint8 kernel relies on.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.ann.index import build_leaf_ann
from repro.ann.quantizer import (
    kmeans_cells,
    quantize_queries,
    scalar_quantize,
)
from repro.core.kernels import (
    intersection_to_many,
    quantized_intersection_to_many,
)
from repro.errors import DatabaseError

_DIGEST_SCRIPT = """
import numpy as np
from repro.ann.index import build_leaf_ann
from repro.database.index import discriminating_dimensions

rng = np.random.default_rng(7)
population = rng.random((80, 266))
dims = discriminating_dimensions(population, 64)
print(build_leaf_ann(population, dims, cells=8, seed=3).digest())
"""


def _population(n=80, seed=7):
    return np.random.default_rng(seed).random((n, 266))


class TestKMeans:
    def test_same_inputs_same_output(self):
        data = _population()[:, :64]
        c1, a1 = kmeans_cells(data, cells=8, seed=3)
        c2, a2 = kmeans_cells(data, cells=8, seed=3)
        assert c1.tobytes() == c2.tobytes()
        assert a1.tobytes() == a2.tobytes()

    def test_seed_changes_clustering(self):
        data = _population()[:, :64]
        _, a1 = kmeans_cells(data, cells=8, seed=0)
        _, a2 = kmeans_cells(data, cells=8, seed=99)
        assert not np.array_equal(a1, a2)

    def test_cells_clamp_to_population(self):
        data = _population(n=3)[:, :10]
        centroids, assign = kmeans_cells(data, cells=16)
        assert centroids.shape[0] == 3
        assert assign.shape == (3,)
        assert set(assign) <= {0, 1, 2}

    def test_empty_population_rejected(self):
        with pytest.raises(DatabaseError):
            kmeans_cells(np.empty((0, 8)))

    def test_assignment_is_nearest_centroid(self):
        data = _population()[:, :32]
        centroids, assign = kmeans_cells(data, cells=6, seed=1)
        d2 = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assert np.array_equal(assign, np.argmin(d2, axis=1))


class TestScalarCodes:
    def test_reconstruction_error_bounded(self):
        data = _population()[:, :64]
        codes, scale, offset = scalar_quantize(data)
        rebuilt = offset[None, :] + codes.astype(np.float64) * scale[None, :]
        # Round-to-nearest: at most half a scale step per dimension.
        assert np.all(np.abs(rebuilt - data) <= scale[None, :] / 2 + 1e-12)

    def test_constant_dimension_is_exact(self):
        data = _population()[:, :8].copy()
        data[:, 3] = 0.25
        codes, scale, offset = scalar_quantize(data)
        assert scale[3] == 0.0
        assert np.all(codes[:, 3] == 0)
        assert offset[3] == 0.25

    def test_quantized_kernel_matches_dequantized_interserction(self):
        data = _population()[:, :64]
        codes, scale, offset = scalar_quantize(data)
        query = _population(n=1, seed=11)[0, :64]
        qcodes = quantize_queries(query, scale, offset)[0]
        approx = quantized_intersection_to_many(
            qcodes, codes, scale, float(offset.sum())
        )
        # The monotone decomposition must equal the min-sum computed on
        # the dequantized values to float precision.
        deq_rows = offset[None, :] + codes.astype(np.float64) * scale[None, :]
        deq_query = offset + qcodes.astype(np.float64) * scale
        expected = intersection_to_many(deq_query, deq_rows)
        assert np.allclose(approx, expected, atol=1e-9)

    def test_approximation_tracks_exact_scores(self):
        data = _population(n=200)[:, :64]
        codes, scale, offset = scalar_quantize(data)
        query = data[17] + np.random.default_rng(0).normal(0, 0.01, 64)
        qcodes = quantize_queries(query, scale, offset)[0]
        approx = quantized_intersection_to_many(
            qcodes, codes, scale, float(offset.sum())
        )
        exact = intersection_to_many(query, data)
        # Within the summed quantization error bound of the exact score.
        assert np.all(np.abs(approx - exact) <= scale.sum() + 1e-9)


class TestCrossProcessDeterminism:
    def test_leaf_index_digest_matches_across_processes(self):
        import repro

        src = str(next(iter(repro.__path__)))
        local = None
        rng = np.random.default_rng(7)
        population = rng.random((80, 266))
        from repro.database.index import discriminating_dimensions

        dims = discriminating_dimensions(population, 64)
        local = build_leaf_ann(population, dims, cells=8, seed=3).digest()
        out = subprocess.run(
            [sys.executable, "-c", _DIGEST_SCRIPT],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": src.rsplit("/repro", 1)[0], "PATH": "/usr/bin:/bin"},
        )
        assert out.stdout.strip() == local
