"""Shared corpus + probes for the ANN tier tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import build_synthetic_database


@pytest.fixture(scope="module")
def ann_db():
    """Eager synthetic corpus large enough for multi-cell leaves."""
    return build_synthetic_database(videos=24, shots_per_video=8, seed=0)


@pytest.fixture(scope="module")
def probes(ann_db):
    """Near-duplicate entry probes plus unseen vectors."""
    entries = ann_db.flat_index.entries
    rng = np.random.default_rng(7)
    near = [
        np.clip(entries[i].features + rng.normal(0, 0.01, 266), 0, None)
        for i in (0, len(entries) // 3, len(entries) - 1)
    ]
    return near + [
        entries[len(entries) // 2].features,
        rng.random(266),
        rng.random(266),
    ]
