"""QueryServer integration: knobs, cache identity, degrade semantics."""

from __future__ import annotations

import pytest

from repro.database.query import search_hierarchical
from repro.errors import ServingError
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serving.server import QueryRequest, QueryServer, ServerConfig
from repro.storage import SQLVideoDatabase, save_database

from .test_ann_equivalence import NPROBE_ALL


def result_keys(result):
    return [
        (h.entry.video_title, h.entry.shot_id, h.score) for h in result.hits
    ]


class TestServerKnobs:
    def test_request_nprobe_all_matches_exact(self, ann_db, probes):
        with QueryServer(ann_db, ServerConfig(workers=2)) as server:
            exact = server.query(QueryRequest(kind="shot", features=probes[0]))
            ann = server.query(
                QueryRequest(kind="shot", features=probes[0], nprobe=NPROBE_ALL)
            )
            assert result_keys(ann) == result_keys(exact)
            assert ann.comparisons == exact.comparisons
            assert ann.reranked > 0
            assert exact.reranked == 0
            # Distinct cache identities: neither ran as a hit.
            assert not exact.cache_hit and not ann.cache_hit
            again = server.query(
                QueryRequest(kind="shot", features=probes[0], nprobe=NPROBE_ALL)
            )
            assert again.cache_hit

    def test_config_default_applies_and_shares_cache_with_explicit(
        self, ann_db, probes
    ):
        config = ServerConfig(workers=2, ann_nprobe=4, ann_rerank_k=8)
        with QueryServer(ann_db, config) as server:
            implicit = server.query(QueryRequest(kind="shot", features=probes[1]))
            assert implicit.reranked > 0  # the default really kicked in
            explicit = server.query(
                QueryRequest(
                    kind="shot", features=probes[1], nprobe=4, rerank_k=8
                )
            )
            assert explicit.cache_hit  # same resolved identity
            assert result_keys(explicit) == result_keys(implicit)

    def test_config_default_matches_unserved_search(self, ann_db, probes):
        config = ServerConfig(workers=1, ann_nprobe=4, ann_rerank_k=8)
        with QueryServer(ann_db, config) as server:
            served = server.query(QueryRequest(kind="shot", features=probes[2]))
        direct = search_hierarchical(
            ann_db.index_root, probes[2], k=10, nprobe=4, rerank_k=8
        )
        assert result_keys(served) == [
            (h.entry.video_title, h.entry.shot_id, h.score) for h in direct.hits
        ]

    def test_validation(self, ann_db, probes):
        with QueryServer(ann_db, ServerConfig(workers=1)) as server:
            with pytest.raises(ServingError, match="shot"):
                server.query(
                    QueryRequest(kind="scene", features=probes[0], nprobe=2)
                )
            with pytest.raises(ServingError, match="nprobe"):
                server.query(
                    QueryRequest(kind="shot", features=probes[0], nprobe=0)
                )
        with pytest.raises(ServingError, match="ann_nprobe"):
            ServerConfig(ann_nprobe=0)
        with pytest.raises(ServingError, match="ann_rerank_k"):
            ServerConfig(ann_rerank_k=-1)


class TestDegradedNotCached:
    def test_degraded_answer_recomputes_until_healthy(
        self, ann_db, probes, tmp_path
    ):
        save_database(ann_db, tmp_path)
        lazy = SQLVideoDatabase.open(tmp_path)
        try:
            with QueryServer(lazy, ServerConfig(workers=1)) as server:
                plan = FaultPlan(
                    [FaultSpec(point="storage.ann_block_missing", kind="error")],
                    seed=0,
                )
                request = QueryRequest(
                    kind="shot", features=probes[0], nprobe=NPROBE_ALL
                )
                with inject(plan):
                    degraded = server.query(request)
                assert degraded.degraded
                healthy = server.query(request)
                # Not served from cache: the degraded answer was never
                # stored, and the healed path drops the flag.
                assert not healthy.cache_hit
                assert not healthy.degraded
                assert result_keys(healthy) == result_keys(degraded)
        finally:
            lazy.close()

    def test_prewarm_resolves_ann_on_generation_install(self, ann_db, tmp_path):
        save_database(ann_db, tmp_path)
        lazy = SQLVideoDatabase.open(tmp_path)
        try:
            config = ServerConfig(workers=1, ann_nprobe=4)
            with QueryServer(lazy, config) as server:
                # Installing the generation (no ANN query yet) resolves
                # every leaf's index, so the first query pays no load.
                snapshot = server.manager.current()
                from repro.ann.index import AnnLeafIndex

                leaves = list(_iter_leaves(snapshot.index_root))
                assert leaves
                assert all(
                    isinstance(leaf.ann, AnnLeafIndex) for leaf in leaves
                )
        finally:
            lazy.close()


def _iter_leaves(node):
    if node.is_leaf:
        yield node
        return
    for child in node.children:
        yield from _iter_leaves(child)
