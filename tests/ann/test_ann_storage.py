"""The persisted ANN tier: round-trip fidelity and degrade paths.

A saved catalog carries each leaf's trained quantizer; the lazy view
must answer ANN queries bit-identically to the eager path, a missing
or fault-injected code block must *degrade* to the exact scan (and
recover once the block is back), and a pre-v2 catalog with no
``ann_leaves`` rows must still serve ANN queries via the deterministic
in-process build.
"""

from __future__ import annotations

import sqlite3

import numpy as np
import pytest

from repro.ann.index import build_leaf_ann
from repro.database.query import search_hierarchical
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.storage import SQLVideoDatabase, save_database
from repro.storage.schema import catalog_path

from .test_ann_equivalence import NPROBE_ALL, hits


@pytest.fixture(scope="module")
def ann_dir(tmp_path_factory, ann_db):
    db_dir = tmp_path_factory.mktemp("ann-db")
    save_database(ann_db, db_dir)
    return db_dir


@pytest.fixture()
def lazy_db(ann_dir):
    database = SQLVideoDatabase.open(ann_dir)
    yield database
    database.close()


class TestPersistedRoundTrip:
    def test_lazy_ann_matches_eager_exact(self, ann_db, lazy_db, probes):
        for probe in probes:
            exact = search_hierarchical(ann_db.index_root, probe, k=10)
            lazy_ann = search_hierarchical(
                lazy_db.index_root, probe, k=10, nprobe=NPROBE_ALL
            )
            assert hits(lazy_ann) == hits(exact)
            assert lazy_ann.stats.comparisons == exact.stats.comparisons
            assert not lazy_ann.stats.ann_degraded

    def test_lazy_and_eager_ann_agree_when_pruning(self, ann_db, lazy_db, probes):
        for probe in probes[:3]:
            eager = search_hierarchical(
                ann_db.index_root, probe, k=10, nprobe=2, rerank_k=8
            )
            lazy = search_hierarchical(
                lazy_db.index_root, probe, k=10, nprobe=2, rerank_k=8
            )
            assert hits(lazy) == hits(eager)
            assert lazy.stats.approx_comparisons == eager.stats.approx_comparisons

    def test_every_leaf_has_a_stored_quantizer(self, ann_db, lazy_db):
        catalog = lazy_db.catalog
        for info in catalog.leaf_infos():
            row = catalog.ann_leaf_row(info.name)
            assert row is not None
            assert row.rows == info.block.rows
            # The stored state reproduces a fresh build bit for bit.
            population = catalog.features.open(info.block.sha)
            rebuilt = build_leaf_ann(np.asarray(population), info.dims)
            loaded = _load_ann(catalog, info)
            assert loaded.digest() == rebuilt.digest()

    def test_code_blocks_are_uint8_and_gc_protected(self, lazy_db):
        catalog = lazy_db.catalog
        info = catalog.leaf_infos()[0]
        row = catalog.ann_leaf_row(info.name)
        codes = catalog.features.open(row.code_sha)
        assert codes.dtype == np.uint8
        assert row.code_sha in catalog._referenced_blocks()


class TestDegradeAndRecover:
    def test_fault_injection_degrades_to_exact(self, ann_dir, ann_db, probes):
        lazy = SQLVideoDatabase.open(ann_dir)
        try:
            exact = search_hierarchical(ann_db.index_root, probes[0], k=10)
            plan = FaultPlan(
                [FaultSpec(point="storage.ann_block_missing", kind="error")],
                seed=1,
            )
            with inject(plan):
                degraded = search_hierarchical(
                    lazy.index_root, probes[0], k=10, nprobe=NPROBE_ALL
                )
            assert degraded.stats.ann_degraded
            assert hits(degraded) == hits(exact)
            # Fault cleared: the kept thunk resolves and the flag drops.
            recovered = search_hierarchical(
                lazy.index_root, probes[0], k=10, nprobe=NPROBE_ALL
            )
            assert not recovered.stats.ann_degraded
            assert hits(recovered) == hits(exact)
        finally:
            lazy.close()

    def test_missing_code_block_degrades_to_exact(self, ann_db, probes, tmp_path):
        save_database(ann_db, tmp_path)
        lazy = SQLVideoDatabase.open(tmp_path)
        try:
            catalog = lazy.catalog
            for info in catalog.leaf_infos():
                row = catalog.ann_leaf_row(info.name)
                catalog.features.path_for(row.code_sha).unlink()
            exact = search_hierarchical(ann_db.index_root, probes[0], k=10)
            result = search_hierarchical(
                lazy.index_root, probes[0], k=10, nprobe=NPROBE_ALL
            )
            assert result.stats.ann_degraded
            assert hits(result) == hits(exact)
        finally:
            lazy.close()


class TestPreAnnCatalog:
    def test_v1_catalog_upgrades_and_serves_ann(self, ann_db, probes, tmp_path):
        save_database(ann_db, tmp_path)
        # Rewind the catalog to its v1 shape: no ann_leaves table, old
        # user_version stamp.
        conn = sqlite3.connect(catalog_path(tmp_path))
        with conn:
            conn.execute("DROP TABLE ann_leaves")
            conn.execute("PRAGMA user_version = 1")
        conn.close()
        lazy = SQLVideoDatabase.open(tmp_path)
        try:
            version = lazy.catalog._run(
                lambda c: c.execute("PRAGMA user_version").fetchone()[0]
            )
            assert int(version) == 2  # upgraded in place on open
            exact = search_hierarchical(ann_db.index_root, probes[0], k=10)
            # No stored rows: resolve_ann falls through to the eager
            # deterministic build, not a degrade.
            result = search_hierarchical(
                lazy.index_root, probes[0], k=10, nprobe=NPROBE_ALL
            )
            assert not result.stats.ann_degraded
            assert hits(result) == hits(exact)
        finally:
            lazy.close()


def _load_ann(catalog, info):
    from repro.storage.lazy import _ann_index_for

    return _ann_index_for(catalog, info)
