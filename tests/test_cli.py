"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_skim_level_validation(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["skim", "demo", "--level", "7"])
        capsys.readouterr()

    def test_render_requires_output(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "demo"])
        capsys.readouterr()


class TestCommands:
    def test_corpus_lists_titles(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "face_repair" in out
        assert "demo" in out

    def test_mine_demo(self, capsys):
        assert main(["mine", "demo"]) == 0
        out = capsys.readouterr().out
        assert "hierarchy:" in out
        assert "CRF" in out

    def test_events_demo(self, capsys):
        assert main(["events", "demo"]) == 0
        out = capsys.readouterr().out
        assert "presentation" in out or "dialog" in out

    def test_evaluate_demo(self, capsys):
        assert main(["evaluate", "demo"]) == 0
        out = capsys.readouterr().out
        assert "A (ours)" in out
        assert "precision" in out

    def test_skim_demo(self, capsys):
        assert main(["skim", "demo", "--level", "2", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "shot" in out

    def test_render_demo(self, tmp_path, capsys):
        target = tmp_path / "demo.npz"
        assert main(["render", "demo", "-o", str(target)]) == 0
        assert target.exists()
        capsys.readouterr()

    def test_unknown_title_is_an_error(self, capsys):
        assert main(["mine", "atlantis"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err

    def test_report_demo(self, tmp_path, capsys):
        target = tmp_path / "report.html"
        assert main(["report", "demo", "-o", str(target)]) == 0
        assert target.read_text().startswith("<!DOCTYPE html>")
        capsys.readouterr()

    def test_poster_demo(self, tmp_path, capsys):
        target = tmp_path / "poster.ppm"
        assert main(["poster", "demo", "-o", str(target), "--level", "4"]) == 0
        assert target.read_bytes().startswith(b"P6")
        capsys.readouterr()
