"""Tests for the Table 1 event-evaluation machinery."""

import pytest

from repro.errors import EvaluationError
from repro.evaluation.event_eval import (
    EventBenchmarkCase,
    build_benchmark,
    dominant_event,
    tabulate_events,
)
from repro.types import EventKind
from repro.video.ground_truth import GroundTruth, SceneSpan, ShotSpan


@pytest.fixture()
def truth():
    shots = [
        ShotSpan(0, 0, 30, scene_id=0),
        ShotSpan(1, 30, 60, scene_id=0),
        ShotSpan(2, 60, 70, scene_id=1),  # separator
        ShotSpan(3, 70, 100, scene_id=2),
        ShotSpan(4, 100, 130, scene_id=2),
    ]
    scenes = [
        SceneSpan(0, 0, 1, event=EventKind.PRESENTATION),
        SceneSpan(1, 2, 2, event=EventKind.UNKNOWN),
        SceneSpan(2, 3, 4, event=EventKind.DIALOG),
    ]
    return GroundTruth(shots=shots, groups=[[0, 1], [2], [3, 4]], scenes=scenes)


class TestDominantEvent:
    def test_pure_span(self, truth):
        assert dominant_event(truth, 0, 60) is EventKind.PRESENTATION
        assert dominant_event(truth, 70, 130) is EventKind.DIALOG

    def test_mixed_span_is_not_distinct(self, truth):
        assert dominant_event(truth, 30, 100) is None

    def test_separator_heavy_span_is_not_distinct(self, truth):
        # 60-72: mostly separator frames -> no benchmark.
        assert dominant_event(truth, 59, 71) is None

    def test_rejects_empty_span(self, truth):
        with pytest.raises(EvaluationError):
            dominant_event(truth, 5, 5)


class TestTabulate:
    def _cases(self):
        return [
            EventBenchmarkCase(0, EventKind.PRESENTATION, EventKind.PRESENTATION),
            EventBenchmarkCase(1, EventKind.PRESENTATION, EventKind.CLINICAL_OPERATION),
            EventBenchmarkCase(2, EventKind.DIALOG, EventKind.DIALOG),
            EventBenchmarkCase(3, EventKind.DIALOG, EventKind.UNKNOWN),
            EventBenchmarkCase(4, EventKind.CLINICAL_OPERATION, EventKind.CLINICAL_OPERATION),
        ]

    def test_counts(self):
        table = tabulate_events(self._cases())
        presentation = table.rows[EventKind.PRESENTATION]
        assert (presentation.selected, presentation.detected, presentation.true) == (2, 1, 1)
        clinical = table.rows[EventKind.CLINICAL_OPERATION]
        assert (clinical.selected, clinical.detected, clinical.true) == (1, 2, 1)
        assert clinical.precision == pytest.approx(0.5)

    def test_average_row_pools(self):
        table = tabulate_events(self._cases())
        assert table.average.selected == 5
        assert table.average.true == 3

    def test_correct_flag(self):
        case = EventBenchmarkCase(0, EventKind.DIALOG, EventKind.DIALOG)
        assert case.correct
        case = EventBenchmarkCase(0, EventKind.DIALOG, EventKind.UNKNOWN)
        assert not case.correct

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            tabulate_events([])


class TestBuildBenchmarkOnDemo:
    def test_benchmark_covers_content_scenes(self, demo_video, demo_result):
        cases = build_benchmark(
            demo_video.truth,
            demo_result.structure.scenes,
            demo_result.scene_events(),
        )
        assert cases  # the demo has distinct content scenes
        truth_kinds = {case.truth_event for case in cases}
        assert truth_kinds <= set(EventKind.known_kinds())
