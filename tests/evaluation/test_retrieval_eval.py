"""Tests for retrieval-quality evaluation."""

import pytest

from repro.database.catalog import VideoDatabase
from repro.errors import EvaluationError
from repro.evaluation.retrieval_eval import evaluate_retrieval


@pytest.fixture(scope="module")
def database(demo_result):
    db = VideoDatabase()
    db.register(demo_result)
    return db


class TestEvaluateRetrieval:
    def test_both_strategies_reported(self, database):
        quality = evaluate_retrieval(database, k=3)
        assert set(quality) == {"hierarchical", "flat"}
        for report in quality.values():
            assert 0.0 <= report.precision_at_k <= 1.0
            assert 0.0 <= report.self_hit_rate <= 1.0
            assert report.queries > 0

    def test_flat_finds_itself(self, database):
        quality = evaluate_retrieval(database, k=3)
        # The exhaustive scan always ranks the exact query first.
        assert quality["flat"].self_hit_rate == 1.0

    def test_hierarchy_quality_holds_up(self, database):
        # On a tiny database routing overhead can exceed the scan (the
        # cost advantage at scale is covered by the Sec. 6.2 bench and
        # test_catalog); what must hold everywhere is that the descent
        # does not wreck retrieval quality.
        quality = evaluate_retrieval(database, k=3)
        assert (
            quality["hierarchical"].precision_at_k
            >= quality["flat"].precision_at_k - 0.35
        )
        assert quality["hierarchical"].mean_comparisons > 0

    def test_max_queries_sampling_is_deterministic(self, database):
        a = evaluate_retrieval(database, k=3, max_queries=5, seed=1)
        b = evaluate_retrieval(database, k=3, max_queries=5, seed=1)
        assert a["flat"] == b["flat"]
        assert a["flat"].queries == 5

    def test_rejects_bad_k(self, database):
        with pytest.raises(EvaluationError):
            evaluate_retrieval(database, k=0)
