"""Tests for the one-call paper reproduction API (on the demo video)."""

import pytest

from repro.errors import EvaluationError
from repro.evaluation.paper import (
    event_mining_table,
    fcr_series,
    mine_corpus,
    reproduce_all,
    scene_detection_results,
    skim_quality_series,
)


@pytest.fixture(scope="module")
def runs(demo_video, demo_result):
    return [(demo_video, demo_result)]


class TestSceneDetection:
    def test_all_methods_scored(self, runs):
        results = scene_detection_results(runs, methods=("A", "B", "C", "STG"))
        assert set(results) == {"A", "B", "C", "STG"}
        for result in results.values():
            assert 0.0 <= result.precision <= 1.0
            assert 0.0 < result.crf <= 1.0

    def test_empty_runs_rejected(self):
        with pytest.raises(EvaluationError):
            scene_detection_results([])


class TestOtherSeries:
    def test_event_table(self, runs):
        table = event_mining_table(runs)
        assert table.average.selected >= 1

    def test_fcr_series_shape(self, runs):
        fcr = fcr_series(runs)
        assert fcr[1] == pytest.approx(1.0)
        assert fcr[4] <= fcr[1]

    def test_skim_quality_levels(self, runs):
        quality = skim_quality_series(runs, viewers=3, seed=1)
        assert set(quality) == {1, 2, 3, 4}
        for scores in quality.values():
            assert len(scores) == 3
            assert all(0.0 <= q <= 5.0 for q in scores)


class TestReproduceAll:
    def test_structure(self, runs):
        results = reproduce_all(runs)
        assert set(results) == {
            "scene_detection",
            "event_mining",
            "fcr",
            "skim_quality",
        }
        assert "average" in results["event_mining"]

    def test_json_serialisable(self, runs):
        import json

        results = reproduce_all(runs)
        results["scene_detection"] = {
            m: {"precision": r.precision, "crf": r.crf}
            for m, r in results["scene_detection"].items()
        }
        json.dumps(results)  # must not raise


class TestMineCorpus:
    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            mine_corpus([])

    def test_mines_given_videos(self, demo_video):
        runs = mine_corpus([demo_video])
        assert len(runs) == 1
        assert runs[0][1].structure.shot_count > 0
