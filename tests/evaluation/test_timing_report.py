"""Tests for the cost models (Eqs. 24-25) and text reporting."""

import pytest

from repro.errors import EvaluationError
from repro.evaluation.report import render_series, render_table
from repro.evaluation.timing import FlatCost, HierarchicalCost, speedup


class TestFlatCost:
    def test_comparisons_equal_database_size(self):
        assert FlatCost(total_shots=1000).comparisons() == 1000

    def test_cost_includes_ranking(self):
        cost = FlatCost(total_shots=1024).cost()
        assert cost == pytest.approx(1024 + 1024 * 10)  # log2(1024) = 10

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            FlatCost(total_shots=0).cost()


class TestHierarchicalCost:
    def test_comparisons(self):
        cost = HierarchicalCost(level_nodes=(3, 4, 4), leaf_shots=50)
        assert cost.comparisons() == 61

    def test_cost_much_less_than_flat_at_scale(self):
        flat = FlatCost(total_shots=100_000)
        hier = HierarchicalCost(level_nodes=(12, 16, 16), leaf_shots=200)
        assert speedup(flat, hier) > 100

    def test_reduced_compare_models_cheaper_subspace(self):
        slow = HierarchicalCost(level_nodes=(4,), leaf_shots=100, reduced_compare=1.0)
        fast = HierarchicalCost(level_nodes=(4,), leaf_shots=100, reduced_compare=0.25)
        assert fast.cost() < slow.cost()

    def test_rejects_negative_leaf(self):
        with pytest.raises(EvaluationError):
            HierarchicalCost(level_nodes=(1,), leaf_shots=-1).cost()


class TestReport:
    def test_render_table(self):
        text = render_table(
            ["Events", "PR", "RE"],
            [["Presentation", 0.81, 0.87], ["Dialog", 0.73, 0.85]],
            title="Table 1",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "Presentation" in text
        assert "0.81" in text

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(EvaluationError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_table_rejects_no_headers(self):
        with pytest.raises(EvaluationError):
            render_table([], [])

    def test_render_series(self):
        text = render_series("FCR", [(4, 0.10), (3, 0.2), (1, 1.0)])
        assert "FCR" in text
        assert text.count("#") >= 3

    def test_render_series_rejects_empty(self):
        with pytest.raises(EvaluationError):
            render_series("x", [])
