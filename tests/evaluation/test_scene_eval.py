"""Tests for the Eq. (20) scene judging rule."""

import pytest

from repro.errors import EvaluationError
from repro.evaluation.scene_eval import (
    annotated_scene_of_span,
    judge_scene_spans,
)
from repro.types import EventKind
from repro.video.ground_truth import GroundTruth, SceneSpan, ShotSpan


@pytest.fixture()
def truth():
    """Three annotated scenes: A (2 shots), separator (1), B (2 shots)."""
    shots = [
        ShotSpan(0, 0, 20, scene_id=0),
        ShotSpan(1, 20, 40, scene_id=0),
        ShotSpan(2, 40, 45, scene_id=1),  # black separator
        ShotSpan(3, 45, 70, scene_id=2),
        ShotSpan(4, 70, 100, scene_id=2),
    ]
    scenes = [
        SceneSpan(0, 0, 1, event=EventKind.DIALOG),
        SceneSpan(1, 2, 2),
        SceneSpan(2, 3, 4, event=EventKind.CLINICAL_OPERATION),
    ]
    return GroundTruth(shots=shots, groups=[[0, 1], [2], [3, 4]], scenes=scenes)


class TestAnnotatedSceneOfSpan:
    def test_exact_match(self, truth):
        assert annotated_scene_of_span(truth, 0, 20) == 0
        assert annotated_scene_of_span(truth, 45, 100) == 2

    def test_majority_rule(self, truth):
        # Span mostly in scene 2, slightly into the separator.
        assert annotated_scene_of_span(truth, 42, 70) == 2

    def test_rejects_empty_span(self, truth):
        with pytest.raises(EvaluationError):
            annotated_scene_of_span(truth, 10, 10)

    def test_rejects_outside_span(self, truth):
        with pytest.raises(EvaluationError):
            annotated_scene_of_span(truth, 200, 220)


class TestJudging:
    def test_pure_scene_is_right(self, truth):
        evaluation = judge_scene_spans(
            truth, [[(0, 20), (20, 40)]], "A", shot_count=5
        )
        assert evaluation.precision == 1.0
        assert evaluation.crf == pytest.approx(1 / 5)

    def test_mixed_scene_is_wrong(self, truth):
        evaluation = judge_scene_spans(
            truth, [[(0, 20), (20, 40), (45, 70)]], "A", shot_count=5
        )
        assert evaluation.precision == 0.0

    def test_separator_is_neutral(self, truth):
        # A detected scene spanning scene A plus the black separator
        # still counts as rightly detected.
        evaluation = judge_scene_spans(
            truth, [[(0, 20), (20, 40), (40, 45)]], "A", shot_count=5
        )
        assert evaluation.precision == 1.0

    def test_over_segmentation_is_right(self, truth):
        # Splitting one semantic unit into two detected scenes keeps
        # both pure (this is why method A trades CRF for precision).
        evaluation = judge_scene_spans(
            truth, [[(0, 20)], [(20, 40)]], "A", shot_count=5
        )
        assert evaluation.precision == 1.0
        assert evaluation.crf == pytest.approx(2 / 5)

    def test_mixed_and_pure_average(self, truth):
        evaluation = judge_scene_spans(
            truth,
            [[(0, 40)], [(45, 70), (70, 100)], [(20, 40), (45, 70)]],
            "A",
            shot_count=5,
        )
        assert evaluation.rightly_detected == 2
        assert evaluation.detected == 3
        assert evaluation.precision == pytest.approx(2 / 3)

    def test_rejects_empty_scene_list(self, truth):
        with pytest.raises(EvaluationError):
            judge_scene_spans(truth, [], "A", shot_count=5)

    def test_rejects_scene_without_shots(self, truth):
        with pytest.raises(EvaluationError):
            judge_scene_spans(truth, [[]], "A", shot_count=5)
