"""Tests for the paper's metrics (Eqs. 20-23)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.evaluation.metrics import (
    PrecisionRecall,
    compression_rate_factor,
    scene_precision,
)


class TestScenePrecision:
    def test_basic(self):
        assert scene_precision(13, 20) == pytest.approx(0.65)

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            scene_precision(0, 0)

    def test_rejects_inconsistent(self):
        with pytest.raises(EvaluationError):
            scene_precision(5, 3)
        with pytest.raises(EvaluationError):
            scene_precision(-1, 3)


class TestCrf:
    def test_paper_value(self):
        # "CRF=8.6%, each scene consists of about 11 shots"
        assert compression_rate_factor(10, 116) == pytest.approx(0.086, abs=0.001)

    def test_rejects_zero_shots(self):
        with pytest.raises(EvaluationError):
            compression_rate_factor(5, 0)


class TestPrecisionRecall:
    def test_table1_presentation_row(self):
        row = PrecisionRecall(selected=15, detected=16, true=13)
        assert row.precision == pytest.approx(0.81, abs=0.005)
        assert row.recall == pytest.approx(0.87, abs=0.005)

    def test_zero_detected_precision_is_zero(self):
        row = PrecisionRecall(selected=5, detected=0, true=0)
        assert row.precision == 0.0

    def test_rejects_impossible_counts(self):
        with pytest.raises(EvaluationError):
            PrecisionRecall(selected=5, detected=3, true=4)
        with pytest.raises(EvaluationError):
            PrecisionRecall(selected=2, detected=5, true=3)
        with pytest.raises(EvaluationError):
            PrecisionRecall(selected=-1, detected=0, true=0)

    def test_combine_pools_counts(self):
        rows = [
            PrecisionRecall(selected=15, detected=16, true=13),
            PrecisionRecall(selected=28, detected=33, true=24),
            PrecisionRecall(selected=39, detected=32, true=21),
        ]
        total = PrecisionRecall.combine(rows)
        assert total.selected == 82
        assert total.detected == 81
        assert total.true == 58
        assert total.precision == pytest.approx(0.72, abs=0.005)
        assert total.recall == pytest.approx(0.71, abs=0.005)

    def test_combine_rejects_empty(self):
        with pytest.raises(EvaluationError):
            PrecisionRecall.combine([])


@given(
    true=st.integers(0, 50),
    extra_detected=st.integers(0, 50),
    extra_selected=st.integers(0, 50),
)
@settings(max_examples=50, deadline=None)
def test_pr_re_always_in_unit_interval(true, extra_detected, extra_selected):
    row = PrecisionRecall(
        selected=true + extra_selected,
        detected=true + extra_detected,
        true=true,
    )
    assert 0.0 <= row.precision <= 1.0
    assert 0.0 <= row.recall <= 1.0
