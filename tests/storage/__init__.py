"""Durable storage subsystem: SQL catalog, feature store, lazy views."""
