"""Shared fixtures: one synthetic corpus saved once per module.

Building and persisting the corpus dominates this suite's cost, so the
in-RAM source database and its stored form are module-scoped; tests
that mutate state make their own copies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import SQLVideoDatabase, build_synthetic_database, save_database


@pytest.fixture(scope="module")
def source_db():
    """The in-RAM synthetic corpus every equivalence check compares to."""
    return build_synthetic_database(videos=24, shots_per_video=8, seed=0)


@pytest.fixture(scope="module")
def stored_dir(tmp_path_factory, source_db):
    """A database directory holding the stored form of ``source_db``."""
    db_dir = tmp_path_factory.mktemp("storage-db")
    save_database(source_db, db_dir)
    return db_dir


@pytest.fixture()
def lazy_db(stored_dir):
    """A freshly opened out-of-core view of the stored corpus."""
    database = SQLVideoDatabase.open(stored_dir)
    yield database
    database.close()


@pytest.fixture(scope="module")
def probes(source_db):
    """Entry features plus one unseen probe that ties many scores."""
    entries = source_db.flat_index.entries
    rng = np.random.default_rng(7)
    return [
        entries[0].features,
        entries[len(entries) // 2].features,
        entries[-1].features,
        rng.random(entries[0].features.shape[0]),
    ]
