"""Out-of-core query paths must be bit-identical to the in-RAM ones.

The contract under test: a corpus saved through the SQL catalog and
opened lazily answers every query surface — flat scan, hierarchical
descent, scene search, access-scoped search — with *exactly* the
results the in-RAM source database gives, including tie-break order
and search statistics.  The JSON migration pair is checked against the
eager JSON-loaded database (the legacy loader regroups the flat index
by leaf, so it is its own consistent ordering).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.database.access import User
from repro.database.catalog import VideoDatabase
from repro.errors import StorageError
from repro.serving.snapshot import _derive_scene_index, build_snapshot
from repro.storage import SQLVideoDatabase, build_synthetic_database, migrate_db_dir
from repro.types import EventKind


def shot_hits(result):
    return [(h.entry.video_title, h.entry.shot_id, h.score) for h in result.hits]


def scene_hits(hits):
    return [(h.entry.video_title, h.entry.scene_id, h.score) for h in hits]


class TestFlatEquivalence:
    def test_hits_scores_and_stats_match(self, source_db, lazy_db, probes):
        for probe in probes:
            a = source_db.search_flat(probe, k=10)
            b = lazy_db.search_flat(probe, k=10)
            assert shot_hits(a) == shot_hits(b)
            assert a.stats.comparisons == b.stats.comparisons
            assert a.stats.ranked == b.stats.ranked

    def test_tie_break_order_matches(self, source_db, lazy_db):
        # A saturating probe maxes the intersection kernel for every
        # entry, so all scores tie exactly: ordering must still agree.
        probe = np.full(source_db.flat_index.entries[0].features.shape[0], 10.0)
        result = source_db.search_flat(probe, k=20)
        scores = [h.score for h in result.hits]
        assert len(set(scores)) < len(scores)  # the probe really does tie
        assert shot_hits(result) == shot_hits(lazy_db.search_flat(probe, k=20))

    def test_entry_order_and_features_match(self, source_db, lazy_db):
        eager = source_db.flat_index.entries
        lazy = lazy_db.flat_index.entries
        assert [e.key for e in eager] == [e.key for e in lazy]
        for i in (0, len(eager) // 2, len(eager) - 1):
            np.testing.assert_array_equal(eager[i].features, lazy[i].features)

    def test_out_of_core_flat_is_read_only(self, lazy_db, source_db):
        entry = source_db.flat_index.entries[0]
        with pytest.raises(StorageError, match="read-only"):
            lazy_db.flat_index.insert(entry)


class TestHierarchicalEquivalence:
    def test_hits_and_descent_paths_match(self, source_db, lazy_db, probes):
        for probe in probes:
            a = source_db.search(probe, k=10)
            b = lazy_db.search(probe, k=10)
            assert shot_hits(a) == shot_hits(b)
            assert a.stats.visited_path == b.stats.visited_path
            assert a.stats.comparisons == b.stats.comparisons

    def test_access_scoped_search_matches(self, source_db, lazy_db, probes):
        public = User(name="student", clearance=1)
        cleared = User(name="surgeon", clearance=3)
        for probe in probes[:2]:
            for user in (public, cleared):
                a = source_db.search(probe, user=user, k=10)
                b = lazy_db.search(probe, user=user, k=10)
                assert shot_hits(a) == shot_hits(b)
        # The scope really filters: both views enforce the same leaf set,
        # and the public one may only surface low-sensitivity concepts.
        assert set(source_db.controller.permitted_leaves(public)) != set(
            source_db.controller.permitted_leaves(cleared)
        )
        a = lazy_db.search(probes[0], user=public, k=10)
        for hit in a.hits:
            event = source_db.videos[hit.entry.video_title].events[
                hit.entry.scene_id
            ]
            assert event in (EventKind.PRESENTATION.value, EventKind.UNKNOWN.value)


class TestSceneEquivalence:
    def test_scene_search_matches_derived_index(self, source_db, lazy_db, probes):
        eager = _derive_scene_index(source_db)
        lazy = lazy_db.scene_index
        assert len(lazy) == len(eager)
        for probe in probes:
            assert scene_hits(eager.search(probe, k=5)) == scene_hits(
                lazy.search(probe, k=5)
            )

    def test_event_filter_and_similar_scenes_match(self, source_db, lazy_db, probes):
        eager = _derive_scene_index(source_db)
        lazy = lazy_db.scene_index
        kind = EventKind.PRESENTATION
        assert scene_hits(eager.search(probes[0], k=5, event=kind)) == scene_hits(
            lazy.search(probes[0], k=5, event=kind)
        )
        anchor = eager.entries[0]
        assert scene_hits(
            eager.similar_scenes(anchor.video_title, anchor.scene_id, k=3)
        ) == scene_hits(lazy.similar_scenes(anchor.video_title, anchor.scene_id, k=3))


class TestConcurrentColdProbes:
    def test_racing_threads_see_fully_loaded_indexes(
        self, stored_dir, source_db, probes
    ):
        """Concurrent first probes must never observe a partial load.

        Serving workers share the lazy leaf/scene indexes through an
        out-of-core snapshot; a barrier lines threads up on a cold view
        so they race the materialisation, and every one must still get
        the eager path's exact results.
        """
        expected_shots = shot_hits(source_db.search(probes[0], k=10))
        expected_scenes = scene_hits(
            _derive_scene_index(source_db).search(probes[1], k=5)
        )
        workers = 8
        for _round in range(3):  # fresh cold view each round
            lazy = SQLVideoDatabase.open(stored_dir)
            barrier = threading.Barrier(workers)

            def probe(i: int):
                barrier.wait(timeout=30)
                if i % 2:
                    return "scene", scene_hits(
                        lazy.scene_index.search(probes[1], k=5)
                    )
                return "shot", shot_hits(lazy.search(probes[0], k=10))

            try:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(probe, range(workers)))
            finally:
                lazy.close()
            for kind, hits in results:
                expected = expected_scenes if kind == "scene" else expected_shots
                assert hits == expected


class TestSnapshotIntegration:
    def test_out_of_core_snapshot_shares_indices(self, lazy_db):
        snapshot = build_snapshot(lazy_db, 1)
        assert snapshot.flat is lazy_db.flat_index  # no materialising copy
        assert snapshot.shot_count == lazy_db.shot_count
        result = snapshot.flat.search(lazy_db.flat_index.entries[0].features, k=3)
        assert result.hits

    def test_degraded_flags_roundtrip_into_snapshot(self, tmp_path):
        database = build_synthetic_database(videos=4, shots_per_video=6, seed=3)
        database.register_entries(
            "degraded_video",
            [(0, EventKind.DIALOG, [np.random.default_rng(5).random(266)])],
            degraded_stages=("audio",),
        )
        from repro.storage import save_database

        save_database(database, tmp_path)
        lazy = SQLVideoDatabase.open(tmp_path)
        try:
            assert lazy.videos["degraded_video"].degraded_stages == ("audio",)
            snapshot = build_snapshot(lazy, 1)
            assert snapshot.degraded_videos == ("degraded_video",)
        finally:
            lazy.close()


class TestMigrationRoundTrip:
    @pytest.fixture(scope="class")
    def migrated_pair(self, tmp_path_factory, source_db):
        """(eager JSON-loaded db, lazy db migrated from the same JSON)."""
        legacy = tmp_path_factory.mktemp("legacy")
        source_db.save(legacy / "database.json")
        eager = VideoDatabase.load(legacy / "database.json")
        report = migrate_db_dir(legacy, remove_json=True)
        migrated = SQLVideoDatabase.open(legacy)
        yield eager, migrated, report, legacy
        migrated.close()

    def test_report_and_json_removal(self, migrated_pair, source_db):
        _eager, _migrated, report, legacy = migrated_pair
        assert report.source == "json"
        assert report.videos == len(source_db.videos)
        assert report.entries == source_db.shot_count
        assert report.blocks > 0
        assert report.removed_json
        assert not (legacy / "database.json").exists()
        assert "migrated" in report.render()

    def test_registrations_identical(self, migrated_pair):
        eager, migrated, _report, _legacy = migrated_pair
        assert sorted(eager.videos) == sorted(migrated.videos)
        for title, record in eager.videos.items():
            other = migrated.videos[title]
            assert record.degraded_stages == other.degraded_stages
            assert record.events == other.events
            assert record.shot_count == other.shot_count

    def test_queries_identical(self, migrated_pair, probes):
        eager, migrated, _report, _legacy = migrated_pair
        for probe in probes:
            assert shot_hits(eager.search_flat(probe, k=10)) == shot_hits(
                migrated.search_flat(probe, k=10)
            )
            a = eager.search(probe, k=10)
            b = migrated.search(probe, k=10)
            assert shot_hits(a) == shot_hits(b)
            assert a.stats.visited_path == b.stats.visited_path

    def test_access_scopes_identical(self, migrated_pair, probes):
        eager, migrated, _report, _legacy = migrated_pair
        user = User(name="student", clearance=1)
        for probe in probes[:2]:
            assert shot_hits(eager.search(probe, user=user, k=10)) == shot_hits(
                migrated.search(probe, user=user, k=10)
            )

    def test_empty_dir_is_typed(self, tmp_path):
        with pytest.raises(StorageError, match="nothing to migrate"):
            migrate_db_dir(tmp_path)


class TestMaterialize:
    def test_materialized_database_matches_source(self, stored_dir, source_db, probes):
        lazy = SQLVideoDatabase.open(stored_dir)
        try:
            lazy.materialize()
            assert lazy.out_of_core is False
            assert [e.key for e in lazy.flat_index.entries] == [
                e.key for e in source_db.flat_index.entries
            ]
            assert shot_hits(lazy.search(probes[0], k=5)) == shot_hits(
                source_db.search(probes[0], k=5)
            )
        finally:
            lazy.close()
