"""The SQL catalog: schema, readers, search, the replace writer."""

from __future__ import annotations

import shutil
import sqlite3

import pytest

import repro.storage.sqlcatalog as sqlcatalog_module
from repro.database.catalog import VideoDatabase
from repro.errors import StorageError
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.storage import (
    SQLCatalog,
    build_synthetic_database,
    catalog_path,
    save_database,
)


@pytest.fixture()
def catalog(stored_dir):
    with SQLCatalog(stored_dir) as cat:
        yield cat


@pytest.fixture()
def writable_dir(tmp_path, stored_dir):
    """A private copy of the stored corpus for mutation tests."""
    target = tmp_path / "copy"
    shutil.copytree(stored_dir, target)
    return target


class TestSchema:
    def test_missing_catalog_is_typed(self, tmp_path):
        with pytest.raises(StorageError):
            SQLCatalog(tmp_path)

    def test_version_mismatch_points_at_migrate(self, writable_dir):
        with sqlite3.connect(catalog_path(writable_dir)) as conn:
            conn.execute("PRAGMA user_version = 99")
        with pytest.raises(StorageError, match="classminer migrate"):
            SQLCatalog(writable_dir)


class TestReaders:
    def test_videos_roundtrip(self, catalog, source_db):
        records = catalog.videos()
        assert sorted(records) == sorted(source_db.videos)
        for title, record in records.items():
            source = source_db.videos[title]
            assert record.shot_count == source.shot_count
            assert record.scene_count == source.scene_count
            assert record.degraded_stages == source.degraded_stages
            assert record.events == source.events

    def test_counts_and_describe(self, catalog, source_db):
        assert catalog.entry_count() == source_db.shot_count
        assert catalog.describe() == source_db.describe()
        assert catalog.scene_count() == sum(
            r.scene_count for r in source_db.videos.values()
        )

    def test_subject_areas_preserve_order(self, catalog, source_db):
        education = source_db.hierarchy.find("medical_education")
        assert catalog.subject_areas() == [c.name for c in education.children]

    def test_leaf_infos_cover_every_entry(self, catalog, source_db):
        infos = catalog.leaf_infos()
        assert sum(info.entry_count for info in infos) == source_db.shot_count
        assert [info.position for info in infos] == list(range(len(infos)))
        for info in infos:
            rows = catalog.leaf_rows(info.name)
            assert [r.row for r in rows] == list(range(info.entry_count))
            assert info.block.rows == info.entry_count

    def test_entries_by_ord_batches_over_bind_limit(self, catalog, source_db):
        ords = list(range(source_db.shot_count))
        found = catalog.entries_by_ord(ords)
        assert sorted(found) == ords  # > _BATCH ordinals, chunked IN queries
        entry = source_db.flat_index.entries[0]
        assert (found[0].video_title, found[0].shot_id) == entry.key

    def test_scene_row_lookup(self, catalog):
        rows = catalog.scene_rows()
        first = rows[0]
        hit = catalog.scene_row_for(first.video_title, first.scene_id)
        assert hit == first
        assert catalog.scene_row_for("nope", 0) is None
        by_event = catalog.scene_rows(event=first.event)
        assert all(r.event == first.event for r in by_event)
        assert first in by_event


class TestSearchText:
    def test_fts_surface_ranks_hits(self, catalog):
        hits = catalog.search_text("synthetic", k=5)
        assert hits
        assert len(hits) <= 5
        assert all(hit.kind in ("video", "scene", "concept") for hit in hits)

    def test_empty_query_returns_nothing(self, catalog):
        assert catalog.search_text("   ") == []

    def test_unmatched_query_returns_nothing(self, catalog):
        assert catalog.search_text("laparoscopic unicorn") == []

    def test_like_fallback_without_fts(self, writable_dir):
        with sqlite3.connect(catalog_path(writable_dir)) as conn:
            conn.execute("UPDATE meta SET value = '0' WHERE key = 'fts'")
        with SQLCatalog(writable_dir) as catalog:
            assert not catalog.fts_enabled
            hits = catalog.search_text("synthetic presentation", k=5)
        assert hits
        assert all("presentation" in hit.body for hit in hits)

    def test_like_fallback_escapes_wildcards(self, writable_dir):
        with sqlite3.connect(catalog_path(writable_dir)) as conn:
            conn.execute("UPDATE meta SET value = '0' WHERE key = 'fts'")
        with SQLCatalog(writable_dir) as catalog:
            assert catalog.search_text("synthetic")  # literal tokens still hit
            # LIKE wildcards in the query must match literally, not as
            # any-char / match-all patterns.
            assert catalog.search_text("s_nthetic") == []
            assert catalog.search_text("%") == []


class TestWriter:
    def test_empty_database_is_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="empty"):
            save_database(VideoDatabase(), tmp_path)

    def test_resave_same_corpus_writes_no_new_blocks(self, writable_dir, source_db):
        with SQLCatalog(writable_dir) as catalog:
            before = catalog.features.list_blocks()
            catalog.replace_from(source_db)
            assert catalog.features.list_blocks() == before

    def test_successful_replace_collects_superseded_blocks(self, writable_dir):
        other = build_synthetic_database(videos=6, shots_per_video=4, seed=99)
        with SQLCatalog(writable_dir) as catalog:
            old_blocks = set(catalog.features.list_blocks())
            catalog.replace_from(other)
            now = set(catalog.features.list_blocks())
            # The store holds exactly the live generation's blocks: the
            # superseded corpus was garbage-collected, no orphans remain.
            assert now == catalog._referenced_blocks()
            assert not old_blocks & now

    def test_cleanup_spares_blocks_the_live_catalog_references(self, writable_dir):
        with SQLCatalog(writable_dir) as catalog:
            live = catalog._referenced_blocks()
            assert live
            # Even when offered every live block as a candidate, the
            # cleanup re-checks references at deletion time and keeps
            # them (the concurrent-writer guarantee).
            catalog._drop_unreferenced(set(live))
            assert live <= set(catalog.features.list_blocks())

    def test_failed_replace_keeps_previous_generation(
        self, writable_dir, monkeypatch
    ):
        other = build_synthetic_database(videos=6, shots_per_video=4, seed=99)

        def boom(*_args, **_kwargs):
            raise RuntimeError("doc build exploded")

        monkeypatch.setattr(sqlcatalog_module, "_search_documents", boom)
        with SQLCatalog(writable_dir) as catalog:
            old_videos = sorted(catalog.videos())
            old_blocks = catalog.features.list_blocks()
            with pytest.raises(RuntimeError):
                catalog.replace_from(other)
            # Previous generation intact, aborted blocks cleaned up.
            assert sorted(catalog.videos()) == old_videos
            assert catalog.features.list_blocks() == old_blocks


class TestLockedRetries:
    def test_transient_lock_is_absorbed(self, catalog):
        plan = FaultPlan(
            [FaultSpec(point="storage.db_locked", kind="error", limit=1)], seed=0
        )
        with inject(plan):
            records = catalog.videos()
        assert records
        assert plan.fired("storage.db_locked", "error") == 1

    def test_exhausted_budget_is_typed(self, catalog):
        plan = FaultPlan([FaultSpec(point="storage.db_locked", kind="error")], seed=0)
        with inject(plan):
            with pytest.raises(StorageError, match="locked"):
                catalog.videos()
        assert catalog.videos()  # disarmed: the connection still works
