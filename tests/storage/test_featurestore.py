"""The content-addressed mmap feature store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IntegrityError, StorageError
from repro.storage import FeatureStore


@pytest.fixture()
def store(tmp_path):
    return FeatureStore(tmp_path / "features")


def _block(seed: int, rows: int = 4, cols: int = 6) -> np.ndarray:
    return np.random.default_rng(seed).random((rows, cols))


class TestPut:
    def test_roundtrip_is_exact(self, store):
        matrix = _block(0)
        ref = store.put(matrix)
        assert (ref.rows, ref.cols) == matrix.shape
        assert ref.nbytes == matrix.size * 8
        np.testing.assert_array_equal(store.open(ref.sha), matrix)

    def test_content_addressing_deduplicates(self, store):
        first = store.put(_block(1))
        second = store.put(_block(1))
        assert first.sha == second.sha
        assert store.list_blocks() == [first.sha]

    def test_distinct_content_distinct_blocks(self, store):
        a = store.put(_block(1))
        b = store.put(_block(2))
        assert a.sha != b.sha
        assert sorted(store.list_blocks()) == sorted([a.sha, b.sha])
        assert store.total_bytes() > 0

    def test_rejects_non_2d(self, store):
        with pytest.raises(StorageError):
            store.put(np.zeros(5))

    def test_no_temp_files_left_behind(self, store):
        store.put(_block(3))
        store.put(_block(3))  # dedup path unlinks its temp file too
        assert not list(store.root.glob(".tmp-*"))


class TestOpen:
    def test_missing_block_is_typed(self, store):
        with pytest.raises(StorageError):
            store.open("0" * 64)

    def test_corrupt_block_is_typed(self, store):
        ref = store.put(_block(4))
        path = store.path_for(ref.sha)
        path.write_bytes(path.read_bytes()[:16])
        with pytest.raises(IntegrityError):
            store.open(ref.sha)

    def test_open_returns_readonly_mmap(self, store):
        ref = store.put(_block(5))
        block = store.open(ref.sha)
        assert isinstance(block, np.memmap)
        assert not block.flags.writeable

    def test_cache_hit_returns_same_object(self, store):
        ref = store.put(_block(6))
        assert store.open(ref.sha) is store.open(ref.sha)


class TestLRU:
    def test_max_open_must_be_positive(self, tmp_path):
        with pytest.raises(StorageError):
            FeatureStore(tmp_path, max_open=0)

    def test_eviction_respects_bound_and_recency(self, tmp_path):
        store = FeatureStore(tmp_path, max_open=2)
        refs = [store.put(_block(seed)) for seed in range(3)]
        store.open(refs[0].sha)
        store.open(refs[1].sha)
        store.open(refs[0].sha)  # refresh: ref 1 is now the LRU victim
        store.open(refs[2].sha)
        assert store.open_count == 2
        first = store.open(refs[0].sha)
        assert first is store.open(refs[0].sha)  # survived as a cache hit

    def test_close_releases_all_handles(self, store):
        ref = store.put(_block(7))
        store.open(ref.sha)
        store.close()
        assert store.open_count == 0


class TestVerifyDelete:
    def test_verify_accepts_intact_block(self, store):
        ref = store.put(_block(8))
        store.verify(ref.sha)

    def test_verify_rejects_tampering(self, store):
        ref = store.put(_block(9))
        path = store.path_for(ref.sha)
        payload = bytearray(path.read_bytes())
        payload[-1] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(IntegrityError):
            store.verify(ref.sha)

    def test_verify_missing_block(self, store):
        with pytest.raises(StorageError):
            store.verify("f" * 64)

    def test_delete_drops_block_and_handle(self, store):
        ref = store.put(_block(10))
        store.open(ref.sha)
        assert store.delete(ref.sha)
        assert store.open_count == 0
        assert not store.delete(ref.sha)
        assert store.list_blocks() == []
