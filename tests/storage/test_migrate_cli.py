"""The `classminer migrate` and `classminer search` subcommands."""

from __future__ import annotations

import argparse

import pytest

from repro.cli import build_parser, main
from repro.storage import build_synthetic_database, catalog_path


@pytest.fixture(scope="module")
def legacy_dir(tmp_path_factory):
    """A JSON-era database directory (no SQL catalog yet)."""
    directory = tmp_path_factory.mktemp("cli-legacy")
    database = build_synthetic_database(videos=6, shots_per_video=4, seed=1)
    database.save(directory / "database.json")
    return directory


class TestMigrateCommand:
    def test_migrate_converts_json_dir(self, legacy_dir, capsys):
        assert main(["migrate", "--db-dir", str(legacy_dir)]) == 0
        out = capsys.readouterr().out
        assert catalog_path(legacy_dir).exists()
        assert (legacy_dir / "database.json").exists()  # kept without the flag
        assert "migrated" in out
        assert "6 videos" in out

    def test_remove_json_flag(self, tmp_path, capsys):
        database = build_synthetic_database(videos=3, shots_per_video=4, seed=2)
        database.save(tmp_path / "database.json")
        assert main(["migrate", "--db-dir", str(tmp_path), "--remove-json"]) == 0
        assert catalog_path(tmp_path).exists()
        assert not (tmp_path / "database.json").exists()

    def test_empty_dir_exits_nonzero(self, tmp_path, capsys):
        assert main(["migrate", "--db-dir", str(tmp_path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestSearchCommand:
    def test_search_finds_migrated_metadata(self, legacy_dir, capsys):
        assert main(["search", "synthetic", "--db-dir", str(legacy_dir)]) == 0
        out = capsys.readouterr().out
        assert "search" in out
        assert "synthetic" in out

    def test_search_respects_k(self, legacy_dir, capsys):
        assert main(["search", "synthetic", "--db-dir", str(legacy_dir), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("synthetic_") <= 4  # 2 rows, title + body columns

    def test_no_matches_is_still_success(self, legacy_dir, capsys):
        assert main(["search", "xyzzy", "--db-dir", str(legacy_dir)]) == 0
        assert "no matches" in capsys.readouterr().out

    def test_missing_catalog_suggests_migrate(self, tmp_path, capsys):
        assert main(["search", "anything", "--db-dir", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "classminer migrate" in err

    def test_flags_documented_in_help(self):
        parser = build_parser()
        sub = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        assert "--remove-json" in sub.choices["migrate"].format_help()
        assert "--db-dir" in sub.choices["search"].format_help()
