"""End-to-end integration: generator -> miner -> database -> skim.

Everything here runs on the session-scoped demo video, exercising the
full public API exactly the way the examples do.
"""

import pytest

from repro import ClassMiner, VideoDatabase, build_skim
from repro.database import User, combine_features
from repro.evaluation import evaluate_scene_partition
from repro.skimming import (
    build_color_bar,
    evaluate_all_levels,
    fcr_by_level,
    render_text_bar,
)
from repro.types import EventKind


class TestFullPipeline:
    def test_structure_and_events(self, demo_video, demo_result):
        structure = demo_result.structure
        sizes = structure.level_sizes()
        # The demo has 3 content scenes plus separators -> a sane tree.
        assert sizes["shots"] >= 14
        assert 2 <= sizes["scenes"] <= 6
        mined_kinds = set(demo_result.scene_events().values())
        assert mined_kinds & set(EventKind.known_kinds())

    def test_scene_precision_against_truth(self, demo_video, demo_result):
        structure = demo_result.structure
        evaluation = evaluate_scene_partition(
            demo_video.truth,
            structure.shots,
            [scene.shot_ids for scene in structure.scenes],
            "A",
        )
        assert evaluation.precision >= 0.5
        assert 0.0 < evaluation.crf < 1.0

    def test_database_round_trip(self, demo_result, tmp_path):
        db = VideoDatabase()
        db.register(demo_result)
        shot = demo_result.structure.shots[4]
        features = combine_features(shot.histogram, shot.texture)
        hit = db.search(features, k=1).top
        assert hit.entry.shot_id == shot.shot_id

        db.save(tmp_path / "catalog.json")
        restored = VideoDatabase.load(tmp_path / "catalog.json")
        assert restored.search_flat(features, k=1).top.entry.shot_id == shot.shot_id

    def test_access_controlled_query(self, demo_result):
        db = VideoDatabase()
        db.register(demo_result)
        shot = demo_result.structure.shots[0]
        features = combine_features(shot.histogram, shot.texture)
        public = User(name="student", clearance=0)
        chief = User(name="chief", clearance=9)
        public_hits = db.search(features, user=public, k=5).hits
        chief_hits = db.search(features, user=chief, k=5).hits
        assert chief_hits
        # The public user sees at most what the chief sees.
        assert len(public_hits) <= len(chief_hits) + 5

    def test_skimming_stack(self, demo_video, demo_result):
        skim = build_skim(demo_result.structure, demo_result.events.events)
        fcr = fcr_by_level(skim)
        assert fcr[1] == pytest.approx(1.0)
        assert fcr[4] < fcr[1]

        scores = evaluate_all_levels(skim, demo_video.truth)
        assert len(scores) == 4

        bar = build_color_bar(demo_result.structure, demo_result.events.events)
        text = render_text_bar(bar, width=60)
        assert len(text) == 60

    def test_deterministic_rerun(self, demo_video, demo_result):
        again = ClassMiner().mine(demo_video.stream)
        assert again.structure.level_sizes() == demo_result.structure.level_sizes()
        assert again.scene_events() == demo_result.scene_events()
