"""Process-wide resilience: fault injection, breakers, integrity, health.

The layer that makes "production-scale" testable — failures become
injectable, contained, observable and recoverable by design:

* :mod:`repro.resilience.faults` — seeded, deterministic
  :class:`FaultPlan` (error / latency / corruption faults) armed at
  named fault points instrumented through the mine pipeline, ingest
  executor, artifact store, snapshot rebuild and serving workers;
  zero-cost when disarmed (the :data:`NULL_PLAN` default).
* :mod:`repro.resilience.breaker` — closed/open/half-open
  :class:`CircuitBreaker` guarding snapshot rebuilds and the result
  cache, failing fast with :class:`~repro.errors.CircuitOpenError`.
* :mod:`repro.resilience.watchdog` — :class:`Watchdog` repair loop the
  query server uses to resurrect dead worker threads.
* :mod:`repro.resilience.integrity` — per-artifact content checksums,
  read-time verification, quarantine of corrupt entries
  (:class:`~repro.errors.IntegrityError`), transparent re-mine.
* :mod:`repro.resilience.health` — liveness / readiness / degradation
  :class:`HealthReport` behind the ``classminer health`` CLI.
* :mod:`repro.resilience.smoke` — the seeded fault-matrix chaos smoke
  (``make chaos-smoke``).

See ``docs/RELIABILITY.md`` for the fault-point catalog and the
behaviour each layer guarantees under injection.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.faults import (
    FAULT_KINDS,
    KNOWN_FAULT_POINTS,
    NULL_PLAN,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    NullFaultPlan,
    active_plan,
    corrupt_payload,
    fault_point,
    inject,
    install_plan,
)
from repro.resilience.health import HealthCheck, HealthReport, server_health
from repro.resilience.integrity import (
    ALGORITHM,
    CHECKSUMS_NAME,
    QUARANTINE_DIR,
    file_digest,
    verify_checksums,
    write_checksums,
)
from repro.resilience.watchdog import Watchdog

__all__ = [
    "ALGORITHM",
    "BreakerState",
    "CHECKSUMS_NAME",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "HealthCheck",
    "HealthReport",
    "KNOWN_FAULT_POINTS",
    "NULL_PLAN",
    "NullFaultPlan",
    "QUARANTINE_DIR",
    "Watchdog",
    "active_plan",
    "corrupt_payload",
    "fault_point",
    "file_digest",
    "inject",
    "install_plan",
    "server_health",
    "verify_checksums",
    "write_checksums",
]
