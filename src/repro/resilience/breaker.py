"""Circuit breaker: fail fast while a dependency is known-bad.

A :class:`CircuitBreaker` wraps an operation that can fail repeatedly
(snapshot rebuilds, the result cache) and walks the classic three-state
machine:

* **closed** — calls pass through; ``failure_threshold`` consecutive
  failures trip the breaker open.
* **open** — calls are refused immediately with
  :class:`~repro.errors.CircuitOpenError` (no work attempted), so a
  broken dependency cannot pile up latency.  After ``reset_timeout``
  seconds the breaker lets one probe through.
* **half-open** — exactly one in-flight probe is allowed; its success
  closes the breaker (counters reset), its failure re-opens it and
  restarts the cooldown.

The clock is injectable so tests drive transitions without sleeping.
When a registry is supplied the breaker publishes its state as the
``circuit_breaker_state{breaker=…}`` gauge (0 closed, 1 open,
2 half-open) and trips/resets as counters — the health CLI reads these.
"""

from __future__ import annotations

import threading
import time
from enum import Enum

from repro.errors import CircuitOpenError


class BreakerState(str, Enum):
    """The three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of each state (exported to the registry).
STATE_VALUES = {
    BreakerState.CLOSED: 0.0,
    BreakerState.OPEN: 1.0,
    BreakerState.HALF_OPEN: 2.0,
}


class CircuitBreaker:
    """Thread-safe closed/open/half-open circuit breaker."""

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock=time.monotonic,
        registry=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self._trips = 0
        self._gauge = None
        self._trip_counter = None
        if registry is not None:
            self._gauge = registry.gauge(
                "circuit_breaker_state",
                "Circuit breaker state (0 closed, 1 open, 2 half-open).",
                labelnames=("breaker",),
            ).labels(breaker=name)
            self._trip_counter = registry.counter(
                "circuit_breaker_trips_total",
                "Times a circuit breaker tripped open.",
                labelnames=("breaker",),
            ).labels(breaker=name)
        self._publish()

    def _publish(self) -> None:
        if self._gauge is not None:
            self._gauge.set(STATE_VALUES[self._state])

    @property
    def state(self) -> BreakerState:
        """Current state (open may lazily advance to half-open)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def trips(self) -> int:
        """Times the breaker has tripped open."""
        with self._lock:
            return self._trips

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_inflight = False
            self._publish()

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In half-open state only the first caller gets True (the probe);
        the breaker stays half-open until that probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        """Report a successful protected call."""
        with self._lock:
            self._failures = 0
            self._probe_inflight = False
            if self._state is not BreakerState.CLOSED:
                self._state = BreakerState.CLOSED
                self._publish()

    def record_failure(self) -> None:
        """Report a failed protected call (may trip the breaker)."""
        with self._lock:
            self._probe_inflight = False
            if self._state is BreakerState.HALF_OPEN:
                self._trip(self._clock())
                return
            self._failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self._failures >= self.failure_threshold
            ):
                self._trip(self._clock())

    def _trip(self, now: float) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = now
        self._failures = 0
        self._trips += 1
        if self._trip_counter is not None:
            self._trip_counter.inc()
        self._publish()

    def call(self, fn, *args, **kwargs):
        """Run ``fn`` through the breaker.

        Raises :class:`~repro.errors.CircuitOpenError` without calling
        ``fn`` while the breaker refuses traffic; otherwise records the
        outcome and re-raises any failure.
        """
        if not self.allow():
            with self._lock:
                remaining = max(
                    0.0, self.reset_timeout - (self._clock() - self._opened_at)
                )
            raise CircuitOpenError(
                f"circuit {self.name!r} is {self._state.value}; "
                f"retry in {remaining:.1f}s"
            )
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def reset(self) -> None:
        """Force the breaker closed and clear its counters (tests, ops)."""
        with self._lock:
            self._state = BreakerState.CLOSED
            self._failures = 0
            self._probe_inflight = False
            self._publish()

    def describe(self) -> str:
        """One-line status for health reports."""
        with self._lock:
            self._maybe_half_open()
            return (
                f"{self.name}: {self._state.value} "
                f"({self._failures}/{self.failure_threshold} failures, "
                f"{self._trips} trips)"
            )
