"""Artifact integrity: content checksums, verification, quarantine.

Every artifact directory written by
:class:`~repro.ingest.artifacts.ArtifactStore` gains a third file,
``checksums.json``::

    {"algorithm": "sha256",
     "files": {"meta.json": "<hex>", "arrays.npz": "<hex>"}}

Checksums are computed over the *intended* bytes before the directory
is atomically renamed into place, so any later corruption — a torn
write, bit rot, a truncating copy, an injected corruption fault — is
detected on read: :func:`verify_checksums` raises
:class:`~repro.errors.IntegrityError` naming the first mismatching
file.  The store then *quarantines* the entry (moves it under
``<root>/.quarantine/``) so ``has()`` turns False and the next ingest
run re-mines the video transparently.

Artifacts written before checksums existed carry no manifest; they are
treated as legacy-valid (:func:`verify_checksums` returns ``False``)
rather than quarantined wholesale.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import IntegrityError

#: Name of the per-artifact checksum manifest.
CHECKSUMS_NAME = "checksums.json"

#: Hash algorithm used for artifact content digests.
ALGORITHM = "sha256"

#: Directory (under a store root) corrupt artifacts are moved into.
#: The leading dot keeps it invisible to the store's ``*/*`` globs.
QUARANTINE_DIR = ".quarantine"


def file_digest(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """Streaming sha256 of one file's content (hex)."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_size)
            if not block:
                break
            hasher.update(block)
    return hasher.hexdigest()


def write_checksums(directory: str | Path, names: tuple[str, ...]) -> Path:
    """Write ``checksums.json`` covering ``names`` inside ``directory``."""
    directory = Path(directory)
    manifest = {
        "algorithm": ALGORITHM,
        "files": {name: file_digest(directory / name) for name in names},
    }
    path = directory / CHECKSUMS_NAME
    path.write_text(json.dumps(manifest, indent=0, sort_keys=True))
    return path


def verify_checksums(directory: str | Path) -> bool:
    """Verify every checksummed file inside ``directory``.

    Returns ``True`` when a manifest exists and everything matches,
    ``False`` for a legacy artifact with no manifest.  Raises
    :class:`~repro.errors.IntegrityError` on the first mismatch, a
    missing checksummed file, or an unreadable/garbled manifest.
    """
    directory = Path(directory)
    manifest_path = directory / CHECKSUMS_NAME
    if not manifest_path.exists():
        return False
    try:
        manifest = json.loads(manifest_path.read_text())
        files = dict(manifest["files"])
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise IntegrityError(
            f"unreadable checksum manifest in {directory.name}: {exc}"
        ) from exc
    if manifest.get("algorithm") != ALGORITHM:
        raise IntegrityError(
            f"unsupported checksum algorithm {manifest.get('algorithm')!r} "
            f"in {directory.name}"
        )
    for name, expected in sorted(files.items()):
        target = directory / name
        if not target.exists():
            raise IntegrityError(f"artifact file {name} missing from {directory.name}")
        actual = file_digest(target)
        if actual != expected:
            raise IntegrityError(
                f"artifact file {name} in {directory.name} failed verification: "
                f"expected {expected[:12]}…, got {actual[:12]}…"
            )
    return True
