"""Worker watchdog: detect and repair dead threads.

A :class:`Watchdog` is a small daemon thread that periodically invokes
a *repair check* — a callable that inspects some pool, resurrects
whatever died, and returns how many repairs it made.  The serving layer
hands it :meth:`QueryServer._repair_workers
<repro.serving.server.QueryServer>`; anything long-running with
resurrectable threads can use it the same way.

The check itself must be safe to call at any time (the watchdog holds
no locks for it) and must never raise — a raising check is caught,
counted against the watchdog, and does not kill it.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

#: A repair check: fix what is broken, return the number of repairs.
RepairCheck = Callable[[], int]


class Watchdog:
    """Periodic repair loop on a daemon thread."""

    def __init__(
        self,
        check: RepairCheck,
        interval: float = 0.2,
        name: str = "watchdog",
    ) -> None:
        if interval <= 0:
            raise ValueError("watchdog interval must be > 0")
        self._check = check
        self._interval = interval
        self._name = name
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._repairs = 0
        self._check_errors = 0
        self._lock = threading.Lock()

    @property
    def running(self) -> bool:
        """True while the watchdog thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def repairs(self) -> int:
        """Total repairs reported by the check."""
        with self._lock:
            return self._repairs

    @property
    def check_errors(self) -> int:
        """Times the check itself raised (caught, never fatal)."""
        with self._lock:
            return self._check_errors

    def start(self) -> "Watchdog":
        """Start the loop (idempotent while running)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=self._name, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the loop and join the thread."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None

    def poke(self) -> int:
        """Run one check synchronously (tests, explicit health probes)."""
        return self._run_check()

    def _run_check(self) -> int:
        try:
            repaired = int(self._check())
        except Exception:
            with self._lock:
                self._check_errors += 1
            return 0
        if repaired:
            with self._lock:
                self._repairs += repaired
        return repaired

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self._run_check()
