"""Deterministic fault injection at named fault points.

Every runtime layer instruments its failure-relevant sites with a
*fault point*::

    from repro.resilience.faults import fault_point

    def load(self, key):
        fault_point("ingest.artifact.read")
        ...

When no plan is armed (the shipped default), :func:`fault_point`
dispatches to :data:`NULL_PLAN` — one attribute read plus a no-op
method, mirroring the :class:`~repro.obs.trace.NullTracer` pattern, so
instrumentation is zero-cost in production
(``benchmarks/bench_resilience_overhead.py`` pins the bound).

An armed :class:`FaultPlan` is **seeded and deterministic**: firing
decisions come from one :class:`random.Random` stream plus per-point
hit counters, so the same plan against the same workload injects the
same faults — chaos runs are replayable.  Three fault kinds exist:

* ``error`` — raise :class:`~repro.errors.FaultInjectedError` at the
  point (the containing layer must handle it like any organic failure);
* ``latency`` — sleep ``delay`` seconds before continuing;
* ``corruption`` — flip bytes in a payload passed through
  :func:`corrupt_payload` (used by the artifact store to simulate disk
  corruption *after* checksums were computed).

The canonical fault-point names are listed in
:data:`KNOWN_FAULT_POINTS`; see ``docs/RELIABILITY.md`` for the
catalog with the behaviour each layer guarantees under injection.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import FaultInjectedError, ReproError

#: Recognised fault kinds.
FAULT_KINDS = ("error", "latency", "corruption")

#: The instrumented fault points (catalog; plans may also use globs).
KNOWN_FAULT_POINTS = (
    "mine.shots",
    "mine.groups",
    "mine.scenes",
    "mine.clustering",
    "mine.cues",
    "mine.audio",
    "mine.events",
    "ingest.mine",
    "ingest.artifact.write",
    "ingest.artifact.read",
    "ingest.rebuild",
    "serve.rebuild",
    "serve.query",
    "serve.cache",
    "storage.db_locked",
    "storage.mmap_truncated",
    "storage.ann_block_missing",
    "net.rpc",
    "net.connect_refused",
    "net.frame_corrupt",
    "net.frame_truncated",
    "net.slow_shard",
    "net.conn_reset",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule inside a plan.

    Attributes
    ----------
    point:
        Exact fault-point name, or a prefix glob ending in ``*``
        (``"mine.*"`` matches every pipeline stage).
    kind:
        ``error``, ``latency`` or ``corruption``.
    probability:
        Chance of firing per hit (decided on the plan's seeded RNG).
    every_nth:
        Fire deterministically on every Nth hit of the point instead of
        by probability (1 = every hit).
    delay:
        Seconds to sleep when a latency fault fires.
    limit:
        Maximum total firings of this spec (None = unbounded).
    message:
        Text carried by the injected error.
    """

    point: str
    kind: str = "error"
    probability: float = 1.0
    every_nth: int | None = None
    delay: float = 0.01
    limit: int | None = None
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError("fault probability must be within [0, 1]")
        if self.every_nth is not None and self.every_nth < 1:
            raise ReproError("every_nth must be >= 1")

    def matches(self, point: str) -> bool:
        """Whether this spec applies to a hit at ``point``."""
        if self.point.endswith("*"):
            return point.startswith(self.point[:-1])
        return point == self.point


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (for reports and assertions)."""

    point: str
    kind: str
    hit: int


class FaultPlan:
    """A seeded, deterministic set of fault rules.

    Thread-safe: serving workers and the ingest loop may hit points
    concurrently; decisions and bookkeeping serialise on one lock (the
    cost only exists while a plan is armed).
    """

    enabled = True

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...] = (), seed: int = 0) -> None:
        self._specs = tuple(specs)
        self._seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._firings: dict[int, int] = {}  # spec index -> times fired
        self._events: list[FaultEvent] = []

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        """The plan's fault rules."""
        return self._specs

    @property
    def seed(self) -> int:
        """The seed the firing decisions derive from."""
        return self._seed

    def _should_fire(self, index: int, spec: FaultSpec, hit: int) -> bool:
        if spec.limit is not None and self._firings.get(index, 0) >= spec.limit:
            return False
        if spec.every_nth is not None:
            return hit % spec.every_nth == 0
        if spec.probability >= 1.0:
            return True
        return self._rng.random() < spec.probability

    def _fire(self, index: int, spec: FaultSpec, point: str, hit: int) -> None:
        self._firings[index] = self._firings.get(index, 0) + 1
        self._events.append(FaultEvent(point=point, kind=spec.kind, hit=hit))

    def hit(self, point: str) -> None:
        """Evaluate a hit at ``point``: maybe sleep, maybe raise."""
        delay = 0.0
        error: FaultInjectedError | None = None
        with self._lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
            for index, spec in enumerate(self._specs):
                if spec.kind == "corruption" or not spec.matches(point):
                    continue
                if not self._should_fire(index, spec, hit):
                    continue
                self._fire(index, spec, point, hit)
                if spec.kind == "latency":
                    delay += spec.delay
                elif error is None:
                    error = FaultInjectedError(f"{point}: {spec.message}")
        if delay > 0.0:
            time.sleep(delay)
        if error is not None:
            raise error

    def corrupt(self, point: str, payload: bytes) -> bytes:
        """Apply any firing corruption fault to ``payload``.

        Flips one byte per eight bytes of payload (at deterministic,
        seed-derived offsets), enough to defeat any checksum while
        keeping the payload length intact.
        """
        with self._lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
            flips: list[int] = []
            for index, spec in enumerate(self._specs):
                if spec.kind != "corruption" or not spec.matches(point):
                    continue
                if not self._should_fire(index, spec, hit):
                    continue
                self._fire(index, spec, point, hit)
                if payload:
                    count = max(1, len(payload) // 8)
                    flips.extend(
                        self._rng.randrange(len(payload)) for _ in range(count)
                    )
        if not flips:
            return payload
        mutated = bytearray(payload)
        for offset in flips:
            mutated[offset] ^= 0xFF
        return bytes(mutated)

    # -- introspection ------------------------------------------------

    def hits(self, point: str) -> int:
        """How many times ``point`` was evaluated."""
        with self._lock:
            return self._hits.get(point, 0)

    def fired(self, point: str | None = None, kind: str | None = None) -> int:
        """Total faults fired, optionally filtered by point and/or kind."""
        with self._lock:
            return sum(
                1
                for event in self._events
                if (point is None or event.point == point)
                and (kind is None or event.kind == kind)
            )

    def events(self) -> list[FaultEvent]:
        """Every fault that fired, in order."""
        with self._lock:
            return list(self._events)

    def report(self) -> str:
        """Plain-text summary: per-point hits and firings."""
        with self._lock:
            events = list(self._events)
            hits = dict(self._hits)
        lines = [f"fault plan (seed={self._seed}): {len(events)} faults fired"]
        for point in sorted(hits):
            fired = sum(1 for e in events if e.point == point)
            kinds = sorted({e.kind for e in events if e.point == point})
            detail = f" ({','.join(kinds)})" if kinds else ""
            lines.append(f"  {point:<24} {hits[point]:>5} hits, {fired} fired{detail}")
        return "\n".join(lines)


class NullFaultPlan:
    """The disarmed plan: every operation is a no-op."""

    enabled = False

    def hit(self, _point: str) -> None:
        """Never fires."""
        return None

    def corrupt(self, _point: str, payload: bytes) -> bytes:
        """Payload passes through untouched."""
        return payload

    def hits(self, _point: str) -> int:
        """Always zero."""
        return 0

    def fired(self, _point: str | None = None, _kind: str | None = None) -> int:
        """Always zero."""
        return 0

    def events(self) -> list[FaultEvent]:
        """Always empty."""
        return []

    def report(self) -> str:
        """Nothing to report."""
        return "(fault injection disarmed)"


#: The process default: injection disarmed.
NULL_PLAN = NullFaultPlan()

_active: FaultPlan | NullFaultPlan = NULL_PLAN


def active_plan() -> FaultPlan | NullFaultPlan:
    """The plan fault points currently dispatch to."""
    return _active


def install_plan(plan: FaultPlan | NullFaultPlan | None):
    """Arm ``plan`` process-wide (None disarms).

    Returns the previously armed plan so callers can restore it.
    """
    global _active
    previous = _active
    _active = plan if plan is not None else NULL_PLAN
    return previous


@contextmanager
def inject(plan: FaultPlan):
    """Arm ``plan`` for the duration of a ``with`` block."""
    previous = install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def fault_point(name: str) -> None:
    """Evaluate a named fault point on the armed plan (no-op by default)."""
    _active.hit(name)


def corrupt_payload(name: str, payload: bytes) -> bytes:
    """Pass ``payload`` through the armed plan's corruption faults."""
    return _active.corrupt(name, payload)
