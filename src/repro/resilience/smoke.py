"""Chaos smoke: the seeded fault matrix (``make chaos-smoke``).

Drives the whole runtime — ingest, artifact store, mining pipeline,
snapshot rebuilds, query serving — under an armed
:class:`~repro.resilience.faults.FaultPlan` and checks the resilience
contracts hold:

1. a transient mining fault is absorbed by the retry policy;
2. an injected artifact corruption is caught by checksum verification,
   quarantined, and transparently re-mined by the next ingest run;
3. an audio-stage failure degrades the mined result (flags survive the
   store and the catalog; query answers carry ``degraded=True``)
   instead of failing the ingest;
4. snapshot rebuild failures surface as typed errors, trip the circuit
   breaker, and never stop the server answering from the last good
   generation — and the breaker recovers through half-open;
5. injected query faults produce typed errors without killing worker
   threads;
6. a transiently locked SQL catalog is absorbed by the storage retry
   budget; a persistently locked one surfaces as a typed
   :class:`~repro.errors.StorageError` and a clean reopen recovers;
7. an injected mmap read fault surfaces typed and the next read
   recovers; a genuinely truncated feature block is caught by
   content-digest verification;
8. a missing ANN code block (``storage.ann_block_missing``) degrades
   the approximate tier to the exact leaf scan — same hits, with the
   ``degraded`` flag raised — and recovers once the fault clears.

Throughout, nothing but :class:`~repro.errors.ReproError` subclasses
may escape a public API — any other exception fails the smoke run.
Everything is seeded, so a failure reproduces exactly.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
import warnings
from pathlib import Path

from repro.errors import DegradedResultWarning, ReproError
from repro.ingest.executor import RetryPolicy
from repro.ingest.runner import ingest_corpus, load_database, store_for
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serving.server import QueryRequest, QueryServer, ServerConfig
from repro.serving.snapshot import SnapshotManager

#: Fast, deterministic retries for the smoke's serial ingest runs.
_FAST = RetryPolicy(retries=2, backoff=0.01, backoff_factor=1.0, jitter=False)


def _report(name: str, ok: bool, detail: str) -> bool:
    print(f"chaos-smoke: [{'ok ' if ok else 'FAIL'}] {name} — {detail}")
    return ok


def _transient_mine_fault(db_dir: Path, seed: int) -> bool:
    """A one-shot ingest.mine error must be absorbed by a retry."""
    plan = FaultPlan([FaultSpec(point="ingest.mine", kind="error", limit=1)], seed=seed)
    with inject(plan):
        report = ingest_corpus(["demo"], db_dir, policy=_FAST)
    mined = report.mined
    ok = (
        report.ok
        and plan.fired("ingest.mine", "error") == 1
        and len(mined) == 1
        and mined[0].attempts == 2
    )
    return _report(
        "transient-mine-fault",
        ok,
        f"1 fault fired, job succeeded on attempt "
        f"{mined[0].attempts if mined else '?'}",
    )


def _corruption_quarantine(db_dir: Path, seed: int) -> bool:
    """A corrupted artifact is quarantined and re-mined next ingest."""
    plan = FaultPlan(
        [FaultSpec(point="ingest.artifact.write", kind="corruption", limit=1)],
        seed=seed,
    )
    with inject(plan):
        # The corrupt artifact fails verification during this run's own
        # rebuild: it is quarantined and simply not registered.
        first = ingest_corpus(["demo"], db_dir, policy=_FAST)
    store = store_for(db_dir)
    quarantined = store.quarantined()
    second = ingest_corpus(["demo"], db_dir, policy=_FAST)
    remined = [o for o in second.outcomes if o.state == "done"]
    ok = (
        plan.fired("ingest.artifact.write", "corruption") == 1
        and first.ok  # the mine itself succeeded; corruption hit the disk
        and not first.registered  # ...but the corrupt artifact cannot register
        and len(quarantined) == 1
        and len(remined) == 1  # not a cache hit: the store re-mined it
        and second.registered
        and store.has(remined[0].key)
    )
    return _report(
        "corruption-quarantine-remine",
        ok,
        f"{len(quarantined)} quarantined, re-mined and registered "
        f"{second.registered}",
    )


def _degraded_mining(db_dir: Path, seed: int) -> bool:
    """An audio-stage failure degrades the result instead of raising."""
    plan = FaultPlan([FaultSpec(point="mine.audio", kind="error")], seed=seed)
    with inject(plan), warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        report = ingest_corpus(["demo"], db_dir, policy=_FAST)
    database = load_database(db_dir)
    record = next(iter(database.videos.values()))
    with QueryServer(database, ServerConfig(workers=2)) as server:
        snapshot = server.manager.current()
        features = snapshot.flat.entries[0].features
        answer = server.query(QueryRequest(kind="shot", features=features, k=3))
    ok = (
        report.ok
        and "audio" in record.degraded_stages
        and snapshot.degraded_videos == (record.title,)
        and answer.degraded
        and bool(answer.hits)
    )
    return _report(
        "degraded-mining-roundtrip",
        ok,
        f"stages {record.degraded_stages} survived store+catalog, "
        f"query answered degraded={answer.degraded}",
    )


def _rebuild_breaker(db_dir: Path, seed: int) -> bool:
    """Rebuild faults: typed errors, stale-but-serving, breaker recovery."""
    database = load_database(db_dir)
    breaker = CircuitBreaker(
        name="snapshot-rebuild", failure_threshold=2, reset_timeout=0.2
    )
    manager = SnapshotManager(database, breaker=breaker)
    with QueryServer(manager=manager, config=ServerConfig(workers=2)) as server:
        features = server.manager.current().flat.entries[0].features
        request = QueryRequest(kind="shot", features=features, k=3)
        baseline = server.query(request)

        plan = FaultPlan([FaultSpec(point="serve.rebuild", kind="error")], seed=seed)
        errors: list[str] = []
        with inject(plan):
            for _ in range(3):
                try:
                    server.refresh()
                except ReproError as exc:
                    errors.append(type(exc).__name__)
            during = server.query(request)

        stale_served = (
            during.generation == baseline.generation
            and during.degraded
            and bool(during.hits)
        )
        tripped = breaker.trips >= 1 and errors == [
            "FaultInjectedError",
            "FaultInjectedError",
            "CircuitOpenError",
        ]

        time.sleep(0.25)  # let the breaker reach half-open
        recovered = server.refresh()  # the probe; no plan armed, so it heals
        after = server.query(request)
        healed = (
            breaker.state is BreakerState.CLOSED
            and recovered.generation > baseline.generation
            and after.generation == recovered.generation
            and not after.degraded
        )
    ok = stale_served and tripped and healed
    return _report(
        "rebuild-breaker",
        ok,
        f"errors {errors}, served generation {during.generation} while open, "
        f"healed to generation {after.generation}",
    )


def _query_fault_survival(db_dir: Path, seed: int) -> bool:
    """Injected query faults give typed errors; workers stay alive."""
    database = load_database(db_dir)
    config = ServerConfig(workers=2, watchdog_interval=0.05)
    with QueryServer(database, config) as server:
        features = server.manager.current().flat.entries[0].features
        request = QueryRequest(kind="shot", features=features, k=3)
        plan = FaultPlan(
            [
                FaultSpec(point="serve.query", kind="error", limit=4),
                FaultSpec(point="serve.query", kind="latency", delay=0.005, limit=2),
            ],
            seed=seed,
        )
        typed = 0
        with inject(plan):
            for _ in range(4):
                try:
                    server.query(request)
                except ReproError:
                    typed += 1
        clean = server.query(request)
        alive = server.alive_workers
    ok = (
        typed == 4
        and plan.fired("serve.query", "latency") == 2
        and bool(clean.hits)
        and alive == config.workers
    )
    return _report(
        "query-fault-survival",
        ok,
        f"{typed}/4 typed errors, {alive}/{config.workers} workers alive, "
        f"clean query answered",
    )


def _storage_db_locked(db_dir: Path, seed: int) -> bool:
    """Locked-catalog faults: retried while transient, typed when not."""
    from repro.errors import StorageError
    from repro.storage import SQLCatalog

    plan = FaultPlan(
        [FaultSpec(point="storage.db_locked", kind="error", limit=1)], seed=seed
    )
    with inject(plan), SQLCatalog(db_dir) as catalog:
        videos = catalog.videos()
    absorbed = bool(videos) and plan.fired("storage.db_locked", "error") == 1

    persistent = FaultPlan(
        [FaultSpec(point="storage.db_locked", kind="error")], seed=seed
    )
    typed = False
    with inject(persistent), SQLCatalog(db_dir) as catalog:
        try:
            catalog.videos()
        except StorageError:
            typed = True

    with SQLCatalog(db_dir) as catalog:
        recovered = catalog.videos().keys() == videos.keys()
    ok = absorbed and typed and recovered
    return _report(
        "storage-db-locked",
        ok,
        f"transient lock absorbed by retry, persistent lock -> "
        f"StorageError, clean reopen answered {len(videos)} videos",
    )


def _storage_mmap_truncated(db_dir: Path, seed: int) -> bool:
    """Feature-block read faults stay typed; truncation is caught."""
    from repro.errors import IntegrityError
    from repro.storage import SQLVideoDatabase

    database = SQLVideoDatabase.open(db_dir)
    probe = database.flat_index.entries[0].features
    plan = FaultPlan(
        [FaultSpec(point="storage.mmap_truncated", kind="error")], seed=seed
    )
    typed = False
    with inject(plan):
        try:
            database.search_flat(probe, k=3)
        except ReproError:
            typed = True
    after = database.search_flat(probe, k=3)  # disarmed: recovers
    database.close()

    # A genuinely truncated block must fail digest verification.
    store = database.catalog.features
    sha = store.list_blocks()[0]
    path = store.path_for(sha)
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])
    caught = False
    try:
        store.verify(sha)
    except IntegrityError:
        caught = True
    finally:
        path.write_bytes(payload)
    ok = typed and bool(after.hits) and caught
    return _report(
        "storage-mmap-truncated",
        ok,
        f"injected read fault typed, clean retry answered "
        f"{len(after.hits)} hits, truncated block failed verification",
    )


def _storage_ann_block_missing(db_dir: Path, seed: int) -> bool:
    """A missing ANN block degrades to the exact scan, then recovers."""
    from repro.database.query import search_hierarchical
    from repro.storage import SQLVideoDatabase

    def shot_keys(result):
        return [
            (h.entry.video_title, h.entry.shot_id, h.score)
            for h in result.hits
        ]

    database = SQLVideoDatabase.open(db_dir)
    try:
        probe = database.flat_index.entries[0].features
        exact = search_hierarchical(database.index_root, probe, k=3)
        plan = FaultPlan(
            [FaultSpec(point="storage.ann_block_missing", kind="error")],
            seed=seed,
        )
        with inject(plan):
            degraded = search_hierarchical(
                database.index_root, probe, k=3, nprobe=1_000_000
            )
        recovered = search_hierarchical(
            database.index_root, probe, k=3, nprobe=1_000_000
        )
    finally:
        database.close()
    ok = (
        degraded.stats.ann_degraded
        and shot_keys(degraded) == shot_keys(exact)
        and not recovered.stats.ann_degraded
        and shot_keys(recovered) == shot_keys(exact)
    )
    return _report(
        "storage-ann-block-missing",
        ok,
        f"degraded scan matched exact ({len(degraded.hits)} hits), "
        f"recovered clean once the fault cleared",
    )


def run_smoke(seed: int = 0) -> int:
    """Run the seeded fault matrix; returns a process exit code."""
    root = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    checks = (
        ("transient", _transient_mine_fault, root / "transient"),
        ("corruption", _corruption_quarantine, root / "corruption"),
        ("degraded", _degraded_mining, root / "degraded"),
        ("rebuild", _rebuild_breaker, root / "transient"),
        ("query", _query_fault_survival, root / "transient"),
        ("storage-locked", _storage_db_locked, root / "transient"),
        ("storage-truncated", _storage_mmap_truncated, root / "transient"),
        ("storage-ann", _storage_ann_block_missing, root / "transient"),
    )
    failures = 0
    try:
        for _name, check, db_dir in checks:
            try:
                if not check(db_dir, seed):
                    failures += 1
            except ReproError as exc:
                print(
                    f"chaos-smoke: [FAIL] {_name} — unhandled (but typed) "
                    f"{type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )
                failures += 1
            except Exception as exc:  # the one thing that must never happen
                print(
                    f"chaos-smoke: [FAIL] {_name} — UNTYPED "
                    f"{type(exc).__name__} escaped a public API: {exc}",
                    file=sys.stderr,
                )
                failures += 1
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if failures:
        print(f"chaos-smoke: FAIL ({failures} checks)", file=sys.stderr)
        return 1
    print(f"chaos-smoke: OK ({len(checks)} checks, seed={seed})")
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke())
