"""Liveness / readiness / degradation health reporting.

:func:`server_health` distils one :class:`~repro.serving.server.QueryServer`
into the three answers an orchestrator asks:

* **live** — is the process serving at all?  The worker pool is running
  and every configured worker thread is alive (the watchdog repairs
  stragglers; a dead pool is dead).
* **ready** — can it answer correctly?  A snapshot generation exists
  and indexes at least one shot.
* **degraded** — is it answering from a weakened position?  True when
  the last snapshot rebuild failed (answers come from the previous good
  generation), a circuit breaker is not closed, the result cache has
  been bypassed, or the corpus contains degraded mine results.

The report also folds in process-wide registry gauges (quarantined
artifacts, worker resurrections) so ``classminer health`` gives one
combined view.  Exit-code mapping: ``ok`` 0, ``degraded`` 1, ``down`` 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.registry import get_registry


@dataclass(frozen=True)
class HealthCheck:
    """One named probe inside a report."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class HealthReport:
    """The combined liveness / readiness / degradation verdict."""

    live: bool
    ready: bool
    degraded: bool
    checks: list[HealthCheck] = field(default_factory=list)

    @property
    def status(self) -> str:
        """``ok``, ``degraded`` or ``down``."""
        if not self.live or not self.ready:
            return "down"
        return "degraded" if self.degraded else "ok"

    @property
    def exit_code(self) -> int:
        """Process exit code for the health CLI (0 ok, 1 degraded, 2 down)."""
        return {"ok": 0, "degraded": 1, "down": 2}[self.status]

    def render(self) -> str:
        """Plain-text report (the ``classminer health`` output)."""
        lines = [
            f"health: {self.status.upper()} "
            f"(live={'yes' if self.live else 'NO'}, "
            f"ready={'yes' if self.ready else 'NO'}, "
            f"degraded={'yes' if self.degraded else 'no'})"
        ]
        for check in self.checks:
            marker = "ok " if check.ok else "FAIL"
            detail = f" — {check.detail}" if check.detail else ""
            lines.append(f"  [{marker}] {check.name}{detail}")
        return "\n".join(lines)


def _registry_value(name: str) -> float:
    try:
        return float(get_registry().snapshot().get(name, 0.0))
    except Exception:  # registry trouble must not break a health probe
        return 0.0


def server_health(server) -> HealthReport:
    """Build a :class:`HealthReport` for one query server.

    Reads only cheap state: thread liveness, the current snapshot's
    bookkeeping, breaker states and registry gauges — never executes a
    query, so it is safe to call from a tight probe loop.
    """
    checks: list[HealthCheck] = []

    alive = server.alive_workers
    workers_ok = server.running and alive == server.config.workers
    checks.append(
        HealthCheck(
            "workers",
            workers_ok,
            f"{alive}/{server.config.workers} alive"
            + ("" if server.running else ", pool stopped"),
        )
    )

    manager = server.manager
    generation = manager.generation
    ready = generation >= 1
    shots = 0
    degraded_videos: tuple[str, ...] = ()
    if ready:
        snapshot = manager.current()
        shots = snapshot.shot_count
        degraded_videos = snapshot.degraded_videos
        ready = shots > 0
    checks.append(
        HealthCheck(
            "snapshot",
            ready,
            f"generation {generation}, {shots} shots indexed",
        )
    )

    stale = manager.degraded
    checks.append(
        HealthCheck(
            "rebuild",
            not stale,
            manager.breaker.describe()
            + (f"; last error: {manager.last_error}" if stale else ""),
        )
    )

    cache_ok = server.cache_breaker.state.value == "closed"
    checks.append(HealthCheck("cache", cache_ok, server.cache_breaker.describe()))

    corpus_ok = not degraded_videos
    checks.append(
        HealthCheck(
            "corpus",
            corpus_ok,
            f"{len(degraded_videos)} degraded videos"
            + (f": {', '.join(degraded_videos)}" if degraded_videos else ""),
        )
    )

    quarantined = _registry_value("ingest_artifacts_quarantined_total")
    resurrections = server.metrics.registry.snapshot().get(
        "serving_worker_resurrections_total", 0.0
    )
    checks.append(
        HealthCheck(
            "history",
            True,
            f"{int(quarantined)} artifacts quarantined, "
            f"{int(resurrections)} workers resurrected, "
            f"{server.metrics.counter('errors')} query errors",
        )
    )

    return HealthReport(
        live=workers_ok,
        ready=ready,
        degraded=stale or not cache_ok or not corpus_ok,
        checks=checks,
    )
