"""Evaluation: the paper's metrics, judging rules and cost models."""

from repro.evaluation.event_eval import (
    EventBenchmarkCase,
    EventTable,
    build_benchmark,
    dominant_event,
    tabulate_events,
)
from repro.evaluation.metrics import (
    PrecisionRecall,
    compression_rate_factor,
    scene_precision,
)
from repro.evaluation.paper import (
    MethodResult,
    event_mining_table,
    fcr_series,
    mine_corpus,
    reproduce_all,
    scene_detection_results,
    skim_quality_series,
)
from repro.evaluation.report import render_series, render_table
from repro.evaluation.retrieval_eval import RetrievalQuality, evaluate_retrieval
from repro.evaluation.scene_eval import (
    SceneEvaluation,
    SceneJudgement,
    annotated_scene_of_span,
    evaluate_scene_partition,
    judge_scene_spans,
)
from repro.evaluation.timing import FlatCost, HierarchicalCost, speedup

__all__ = [
    "EventBenchmarkCase",
    "EventTable",
    "FlatCost",
    "HierarchicalCost",
    "MethodResult",
    "PrecisionRecall",
    "RetrievalQuality",
    "SceneEvaluation",
    "SceneJudgement",
    "annotated_scene_of_span",
    "build_benchmark",
    "compression_rate_factor",
    "dominant_event",
    "event_mining_table",
    "evaluate_retrieval",
    "fcr_series",
    "mine_corpus",
    "reproduce_all",
    "scene_detection_results",
    "skim_quality_series",
    "evaluate_scene_partition",
    "judge_scene_spans",
    "render_series",
    "render_table",
    "scene_precision",
    "speedup",
    "tabulate_events",
]
