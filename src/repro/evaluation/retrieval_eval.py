"""Retrieval-quality evaluation for the indexing layer.

Sec. 6.2 analyses retrieval *cost*; this module adds the quality side:
querying the database with an indexed shot should bring back shots of
the same scene.  Precision@k over self-queries quantifies how much (if
anything) the hierarchical descent gives up against the exhaustive
scan — the classic accuracy/cost trade-off of approximate indexing.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.database.catalog import VideoDatabase
from repro.database.query import QueryResult
from repro.errors import EvaluationError


@dataclass(frozen=True)
class RetrievalQuality:
    """Aggregate retrieval quality for one search strategy.

    Attributes
    ----------
    strategy:
        Label (``"hierarchical"`` / ``"flat"``).
    precision_at_k:
        Mean fraction of top-k hits sharing the query's scene.
    self_hit_rate:
        Fraction of queries whose own entry appears in the top-k.
    mean_comparisons:
        Average similarity computations per query.
    queries:
        Number of queries evaluated.
    """

    strategy: str
    precision_at_k: float
    self_hit_rate: float
    mean_comparisons: float
    queries: int


def _evaluate(
    entries,
    search: Callable[[np.ndarray], QueryResult],
    strategy: str,
    k: int,
) -> RetrievalQuality:
    precisions = []
    self_hits = 0
    comparisons = []
    for entry in entries:
        result = search(entry.features)
        hits = result.hits[:k]
        if not hits:
            precisions.append(0.0)
            comparisons.append(result.stats.comparisons)
            continue
        same_scene = sum(
            1
            for hit in hits
            if hit.entry.video_title == entry.video_title
            and hit.entry.scene_id == entry.scene_id
        )
        precisions.append(same_scene / len(hits))
        if any(hit.entry.key == entry.key for hit in hits):
            self_hits += 1
        comparisons.append(result.stats.comparisons)
    return RetrievalQuality(
        strategy=strategy,
        precision_at_k=float(np.mean(precisions)),
        self_hit_rate=self_hits / len(entries),
        mean_comparisons=float(np.mean(comparisons)),
        queries=len(entries),
    )


def evaluate_retrieval(
    database: VideoDatabase,
    k: int = 5,
    max_queries: int | None = None,
    seed: int = 0,
) -> dict[str, RetrievalQuality]:
    """Self-query every indexed shot through both strategies.

    Parameters
    ----------
    database:
        Catalog with at least one registered video.
    k:
        Hits considered per query.
    max_queries:
        Optional cap (queries are sampled deterministically).

    Returns
    -------
    ``{"hierarchical": ..., "flat": ...}``.
    """
    if k < 1:
        raise EvaluationError("k must be >= 1")
    entries = [
        entry
        for entry in database.flat_index.entries
        if entry.scene_id >= 0  # skip shots of eliminated scenes
    ]
    if not entries:
        raise EvaluationError("database has no scene-assigned shots")
    if max_queries is not None and len(entries) > max_queries:
        rng = np.random.default_rng(seed)
        picks = rng.choice(len(entries), size=max_queries, replace=False)
        entries = [entries[i] for i in sorted(picks)]

    database.build_index()
    return {
        "hierarchical": _evaluate(
            entries, lambda f: database.search(f, k=k), "hierarchical", k
        ),
        "flat": _evaluate(
            entries, lambda f: database.search_flat(f, k=k), "flat", k
        ),
    }
