"""Scene-detection evaluation under the paper's judging rule (Sec. 6.1).

"The scene is judged to be rightly detected if and only if all shots in
the current scene belong to the same semantic unit (scene), otherwise
the current scene is judged to be falsely detected."

Detected shots need not align with annotated shots (the detector may
over- or under-segment), so each detected shot is attributed to the
annotated scene owning the majority of its frames.  Black separator
units (single-shot annotated scenes) are treated as *neutral*: they can
attach to either neighbour without spoiling it, since a human judge
would not fail a scene for including the fade between takes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.features import Shot
from repro.errors import EvaluationError
from repro.evaluation.metrics import compression_rate_factor, scene_precision
from repro.video.ground_truth import GroundTruth


@dataclass(frozen=True)
class SceneJudgement:
    """Verdict for one detected scene."""

    scene_shot_ids: tuple[int, ...]
    semantic_units: tuple[int, ...]
    rightly_detected: bool


@dataclass(frozen=True)
class SceneEvaluation:
    """Eq. (20)/(21) results for one video and one method."""

    method: str
    judgements: tuple[SceneJudgement, ...]
    shot_count: int

    @property
    def detected(self) -> int:
        """Number of detected scenes."""
        return len(self.judgements)

    @property
    def rightly_detected(self) -> int:
        """Scenes whose shots all share one semantic unit."""
        return sum(1 for j in self.judgements if j.rightly_detected)

    @property
    def precision(self) -> float:
        """Eq. (20)."""
        return scene_precision(self.rightly_detected, self.detected)

    @property
    def crf(self) -> float:
        """Eq. (21)."""
        return compression_rate_factor(self.detected, self.shot_count)


def annotated_scene_of_span(truth: GroundTruth, start: int, stop: int) -> int:
    """Annotated scene owning the majority of frames in ``[start, stop)``."""
    if stop <= start:
        raise EvaluationError(f"empty span [{start}, {stop})")
    overlap: dict[int, int] = {}
    for shot in truth.shots:
        frames = max(0, min(shot.stop, stop) - max(shot.start, start))
        if frames:
            overlap[shot.scene_id] = overlap.get(shot.scene_id, 0) + frames
    if not overlap:
        raise EvaluationError(f"span [{start}, {stop}) outside the video")
    return max(overlap, key=lambda scene_id: (overlap[scene_id], -scene_id))


def _neutral_units(truth: GroundTruth) -> set[int]:
    """Single-shot annotated scenes (black separators) are neutral."""
    return {scene.scene_id for scene in truth.scenes if scene.shot_count == 1}


def judge_scene_spans(
    truth: GroundTruth,
    scene_spans: list[list[tuple[int, int]]],
    method: str,
    shot_count: int,
) -> SceneEvaluation:
    """Judge detected scenes given each member shot's frame span.

    ``scene_spans[k]`` lists the ``(start, stop)`` frame spans of the
    shots in detected scene ``k``.
    """
    if not scene_spans:
        raise EvaluationError("no detected scenes to judge")
    neutral = _neutral_units(truth)
    judgements = []
    for spans in scene_spans:
        if not spans:
            raise EvaluationError("a detected scene has no shots")
        units = [annotated_scene_of_span(truth, start, stop) for start, stop in spans]
        content_units = {unit for unit in units if unit not in neutral}
        rightly = len(content_units) <= 1
        judgements.append(
            SceneJudgement(
                scene_shot_ids=tuple(range(len(spans))),
                semantic_units=tuple(sorted(set(units))),
                rightly_detected=rightly,
            )
        )
    return SceneEvaluation(
        method=method, judgements=tuple(judgements), shot_count=shot_count
    )


def evaluate_scene_partition(
    truth: GroundTruth,
    shots: list[Shot],
    scenes_as_shot_ids: list[list[int]],
    method: str,
) -> SceneEvaluation:
    """Judge scenes given as lists of detected-shot ids."""
    by_id = {shot.shot_id: shot for shot in shots}
    spans: list[list[tuple[int, int]]] = []
    for scene in scenes_as_shot_ids:
        if not scene:
            raise EvaluationError("a detected scene has no shots")
        spans.append([(by_id[s].start, by_id[s].stop) for s in scene])
    return judge_scene_spans(truth, spans, method, shot_count=len(shots))
