"""One-call reproduction of the paper's evaluation (Sec. 6).

The benchmark harness measures runtime; the *results* themselves are
library functionality, so they live here: every figure/table of the
paper computed from a list of ``(GeneratedVideo, ClassMinerResult)``
pairs.  ``reproduce_all`` runs the whole evaluation and returns plain
data ready for printing or comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    lin_detect_scenes,
    rui_detect_scenes,
    stg_detect_scenes,
)
from repro.core.pipeline import ClassMiner, ClassMinerResult
from repro.errors import EvaluationError
from repro.evaluation.event_eval import EventTable, build_benchmark, tabulate_events
from repro.evaluation.scene_eval import evaluate_scene_partition
from repro.skimming.quality import evaluate_all_levels
from repro.skimming.skim import build_skim
from repro.skimming.summary import fcr_by_level
from repro.video.synthesis.generator import GeneratedVideo

#: Method label -> scene-list extractor.
SCENE_METHODS = {
    "A": lambda structure: [scene.shot_ids for scene in structure.scenes],
    "B": lambda structure: rui_detect_scenes(structure.shots).scenes,
    "C": lambda structure: lin_detect_scenes(structure.shots).scenes,
    "STG": lambda structure: stg_detect_scenes(structure.shots).scenes,
}

CorpusRuns = list[tuple[GeneratedVideo, ClassMinerResult]]


@dataclass(frozen=True)
class MethodResult:
    """Pooled Fig. 12 / Fig. 13 numbers for one method."""

    method: str
    precision: float
    crf: float


def mine_corpus(videos: list[GeneratedVideo]) -> CorpusRuns:
    """Mine every video with default settings (the evaluation input)."""
    if not videos:
        raise EvaluationError("no videos to mine")
    miner = ClassMiner()
    return [(video, miner.mine(video.stream)) for video in videos]


def scene_detection_results(
    runs: CorpusRuns, methods: tuple[str, ...] = ("A", "B", "C")
) -> dict[str, MethodResult]:
    """Figs. 12-13: pooled precision and CRF per method."""
    if not runs:
        raise EvaluationError("no corpus runs")
    results: dict[str, MethodResult] = {}
    for method in methods:
        extractor = SCENE_METHODS[method]
        right = detected = shots = 0
        for video, run in runs:
            evaluation = evaluate_scene_partition(
                video.truth,
                run.structure.shots,
                extractor(run.structure),
                method,
            )
            right += evaluation.rightly_detected
            detected += evaluation.detected
            shots += evaluation.shot_count
        results[method] = MethodResult(
            method=method, precision=right / detected, crf=detected / shots
        )
    return results


def event_mining_table(runs: CorpusRuns) -> EventTable:
    """Table 1: pooled SN/DN/TN per event category."""
    cases = []
    for video, run in runs:
        cases.extend(
            build_benchmark(video.truth, run.structure.scenes, run.scene_events())
        )
    return tabulate_events(cases)


def fcr_series(runs: CorpusRuns) -> dict[int, float]:
    """Fig. 15: average frame compression ratio per skim level."""
    sums = {level: 0.0 for level in (1, 2, 3, 4)}
    for _, run in runs:
        skim = build_skim(run.structure, run.events.events)
        for level, value in fcr_by_level(skim).items():
            sums[level] += value
    return {level: total / len(runs) for level, total in sums.items()}


def skim_quality_series(
    runs: CorpusRuns, viewers: int = 5, seed: int = 0
) -> dict[int, tuple[float, float, float]]:
    """Fig. 14: average (Q1, Q2, Q3) panel scores per skim level."""
    sums = {level: np.zeros(3) for level in (1, 2, 3, 4)}
    for video, run in runs:
        skim = build_skim(run.structure, run.events.events)
        for scores in evaluate_all_levels(skim, video.truth, viewers=viewers, seed=seed):
            sums[scores.level] += np.array(scores.as_tuple())
    return {
        level: tuple(float(x) for x in vector / len(runs))  # type: ignore[misc]
        for level, vector in sums.items()
    }


def reproduce_all(runs: CorpusRuns) -> dict:
    """The full Sec. 6 evaluation as one nested dict.

    Keys: ``scene_detection`` (Figs. 12-13), ``event_mining`` (Table 1),
    ``fcr`` (Fig. 15), ``skim_quality`` (Fig. 14).
    """
    table = event_mining_table(runs)
    return {
        "scene_detection": scene_detection_results(runs),
        "event_mining": {
            "rows": {
                kind.value: {
                    "selected": row.selected,
                    "detected": row.detected,
                    "true": row.true,
                    "precision": row.precision,
                    "recall": row.recall,
                }
                for kind, row in table.rows.items()
            },
            "average": {
                "precision": table.average.precision,
                "recall": table.average.recall,
            },
        },
        "fcr": fcr_series(runs),
        "skim_quality": skim_quality_series(runs),
    }
