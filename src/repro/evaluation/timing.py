"""Retrieval cost model and measurements (Sec. 6.2, Eqs. 24-25).

Eq. (24) — flat scan:          T_e = N_T * T_m + O(N_T log N_T)
Eq. (25) — cluster-based:      T_c = M_c T_c' + M_sc T_sc + M_s T_s
                                     + M_o T_o + O(M_o log M_o)

The analytic model predicts comparison counts; the measured side comes
from :class:`~repro.database.query.QueryStats`.  Both appear in the
Sec. 6.2 bench so the model can be validated against the running code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import EvaluationError


@dataclass(frozen=True)
class FlatCost:
    """Eq. (24) prediction."""

    total_shots: int
    unit_compare: float = 1.0

    def comparisons(self) -> int:
        """Similarity computations: one per database shot."""
        return self.total_shots

    def cost(self) -> float:
        """Comparison cost plus the N log N ranking term."""
        n = self.total_shots
        if n <= 0:
            raise EvaluationError("empty database")
        return n * self.unit_compare + n * math.log2(max(n, 2))


@dataclass(frozen=True)
class HierarchicalCost:
    """Eq. (25) prediction.

    ``level_nodes`` lists, per level from the root downward, how many
    candidate units are compared at that level (the paper's M_c, M_sc,
    M_s); ``leaf_shots`` is M_o, the shots ranked inside the chosen
    scene node.  ``reduced_compare`` models T_c <= T_m: comparisons in a
    reduced sub-space are cheaper than full-space ones.
    """

    level_nodes: tuple[int, ...]
    leaf_shots: int
    reduced_compare: float = 0.5
    unit_compare: float = 1.0

    def comparisons(self) -> int:
        """Similarity computations along the descent plus the leaf."""
        return sum(self.level_nodes) + self.leaf_shots

    def cost(self) -> float:
        """Eq. (25): level costs + leaf ranking."""
        if self.leaf_shots < 0:
            raise EvaluationError("negative leaf size")
        descent = sum(self.level_nodes) * self.unit_compare * self.reduced_compare
        leaf = self.leaf_shots * self.unit_compare * self.reduced_compare
        ranking = self.leaf_shots * math.log2(max(self.leaf_shots, 2))
        return descent + leaf + ranking


def speedup(flat: FlatCost, hierarchical: HierarchicalCost) -> float:
    """Predicted T_e / T_c ratio (> 1 means the hierarchy wins)."""
    denominator = hierarchical.cost()
    if denominator <= 0:
        raise EvaluationError("hierarchical cost must be positive")
    return flat.cost() / denominator
