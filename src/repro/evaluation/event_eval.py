"""Event-mining evaluation producing the Table 1 counts (Sec. 6.1).

The paper "manually select[s] scenes which distinctly belong to one of
the event categories" as benchmarks, then lets the miner label them.
Here the manual selection is replayed against ground truth: a detected
scene enters the benchmark for category X when at least 70% of its
frames come from annotated scenes of category X.  SN / DN / TN then
follow the paper's definitions:

* SN — benchmark scenes of the category;
* DN — scenes the miner assigned to the category;
* TN — benchmark scenes of the category the miner got right.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scenes import Scene
from repro.errors import EvaluationError
from repro.evaluation.metrics import PrecisionRecall
from repro.types import EventKind
from repro.video.ground_truth import GroundTruth

#: Frame-majority needed for a scene to "distinctly belong" to a category.
DISTINCT_FRACTION = 0.7


def dominant_event(truth: GroundTruth, start: int, stop: int) -> EventKind | None:
    """Category owning >= 70% of the span's frames, else None."""
    if stop <= start:
        raise EvaluationError(f"empty span [{start}, {stop})")
    totals: dict[EventKind, int] = {}
    covered = 0
    for shot in truth.shots:
        frames = max(0, min(shot.stop, stop) - max(shot.start, start))
        if not frames:
            continue
        event = truth.scene_of_shot(shot.shot_id).event
        covered += frames
        # Separator/filler frames are not counted against distinctness.
        if event is EventKind.UNKNOWN:
            continue
        totals[event] = totals.get(event, 0) + frames
    if not totals or covered == 0:
        return None
    content_frames = sum(totals.values())
    if content_frames < 0.5 * (stop - start):
        return None  # mostly separators/filler: not a distinct benchmark
    best = max(totals, key=lambda kind: totals[kind])
    if totals[best] / content_frames >= DISTINCT_FRACTION:
        return best
    return None


@dataclass(frozen=True)
class EventBenchmarkCase:
    """One benchmark scene with its truth and mined labels."""

    scene_id: int
    truth_event: EventKind
    mined_event: EventKind

    @property
    def correct(self) -> bool:
        """True when the miner matched the benchmark label."""
        return self.truth_event is self.mined_event


@dataclass
class EventTable:
    """Table 1: per-category counts plus the pooled average row."""

    rows: dict[EventKind, PrecisionRecall]

    @property
    def average(self) -> PrecisionRecall:
        """The paper's Average row (pooled counts)."""
        return PrecisionRecall.combine(list(self.rows.values()))


def build_benchmark(
    truth: GroundTruth,
    scenes: list[Scene],
    mined_events: dict[int, EventKind],
) -> list[EventBenchmarkCase]:
    """Select distinct benchmark scenes and pair truth with mined labels."""
    cases = []
    for scene in scenes:
        start, stop = scene.frame_span
        truth_event = dominant_event(truth, start, stop)
        if truth_event is None:
            continue
        mined = mined_events.get(scene.scene_id, EventKind.UNKNOWN)
        cases.append(
            EventBenchmarkCase(
                scene_id=scene.scene_id, truth_event=truth_event, mined_event=mined
            )
        )
    return cases


def tabulate_events(cases: list[EventBenchmarkCase]) -> EventTable:
    """Aggregate benchmark cases into the Table 1 counts."""
    if not cases:
        raise EvaluationError("no benchmark cases")
    rows: dict[EventKind, PrecisionRecall] = {}
    for kind in EventKind.known_kinds():
        selected = sum(1 for case in cases if case.truth_event is kind)
        detected = sum(1 for case in cases if case.mined_event is kind)
        true = sum(
            1
            for case in cases
            if case.truth_event is kind and case.mined_event is kind
        )
        rows[kind] = PrecisionRecall(selected=selected, detected=detected, true=true)
    return EventTable(rows=rows)
