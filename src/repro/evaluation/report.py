"""Plain-text rendering of tables and figure series.

The benchmark harness prints the same rows and series the paper
reports; these helpers keep the formatting consistent across benches
and EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import EvaluationError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width text table.

    Floats are shown with two decimals; everything else via ``str``.
    """
    if not headers:
        raise EvaluationError("a table needs headers")
    formatted_rows = [
        [_format_cell(value) for value in row] for row in rows
    ]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise EvaluationError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in formatted_rows))
        if formatted_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, points: Sequence[tuple[object, float]], unit: str = ""
) -> str:
    """One figure series as ``name: x=value`` lines plus an ASCII bar."""
    if not points:
        raise EvaluationError("a series needs points")
    peak = max(abs(value) for _, value in points) or 1.0
    lines = [f"{name}{f' ({unit})' if unit else ''}:"]
    for x, value in points:
        bar = "#" * max(1, int(round(24 * abs(value) / peak)))
        lines.append(f"  {str(x):>8}  {value:8.3f}  {bar}")
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
