"""The paper's evaluation metrics (Eqs. 20-23, FCR).

* Eq. (20)  P   = rightly detected scenes / all detected scenes
* Eq. (21)  CRF = detected scene number / total shot number
* Eq. (22)  PR  = true number / detected number
* Eq. (23)  RE  = true number / selected number
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError


def scene_precision(rightly_detected: int, all_detected: int) -> float:
    """Eq. (20)."""
    if all_detected <= 0:
        raise EvaluationError("no detected scenes to score")
    if not 0 <= rightly_detected <= all_detected:
        raise EvaluationError(
            f"rightly detected {rightly_detected} outside [0, {all_detected}]"
        )
    return rightly_detected / all_detected


def compression_rate_factor(scene_count: int, shot_count: int) -> float:
    """Eq. (21)."""
    if shot_count <= 0:
        raise EvaluationError("no shots")
    if scene_count < 0:
        raise EvaluationError("negative scene count")
    return scene_count / shot_count


@dataclass(frozen=True)
class PrecisionRecall:
    """One Table 1 row: selected/detected/true counts plus PR/RE."""

    selected: int
    detected: int
    true: int

    def __post_init__(self) -> None:
        if self.selected < 0 or self.detected < 0 or self.true < 0:
            raise EvaluationError("counts must be non-negative")
        if self.true > self.detected or self.true > self.selected:
            raise EvaluationError(
                f"true count {self.true} exceeds detected {self.detected} "
                f"or selected {self.selected}"
            )

    @property
    def precision(self) -> float:
        """Eq. (22); defined as 0 when nothing was detected."""
        return self.true / self.detected if self.detected else 0.0

    @property
    def recall(self) -> float:
        """Eq. (23); defined as 0 when nothing was selected."""
        return self.true / self.selected if self.selected else 0.0

    @staticmethod
    def combine(rows: list["PrecisionRecall"]) -> "PrecisionRecall":
        """Pool counts across rows (the paper's Average row)."""
        if not rows:
            raise EvaluationError("nothing to combine")
        return PrecisionRecall(
            selected=sum(row.selected for row in rows),
            detected=sum(row.detected for row in rows),
            true=sum(row.true for row in rows),
        )
