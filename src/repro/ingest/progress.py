"""Structured progress events for ingest runs.

The executor emits one :class:`JobEvent` per job state change; callers
pass any callable as the sink.  :class:`ProgressTracker` is the default
sink: it tallies events and renders the CLI's live lines and final
summary table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.evaluation.report import render_table

#: Event kinds, in rough lifecycle order.
EVENT_KINDS = ("queued", "started", "cached", "retried", "finished", "failed")

#: Type of a progress sink.
ProgressCallback = Callable[["JobEvent"], None]


@dataclass(frozen=True)
class JobEvent:
    """One progress event for one job.

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    title / key:
        Which job the event belongs to.
    attempt:
        1-based attempt number (0 when not applicable).
    wall_time:
        Seconds spent on the attempt (``finished``/``failed`` only).
    shots / scenes:
        Mined counts (``finished`` only; None otherwise).
    message:
        Extra human-readable detail (e.g. the error on a retry).
    timestamp:
        Monotonic clock reading (``time.perf_counter()``) at emission,
        so job events can be aligned with observability trace spans.
        Not part of :meth:`describe` — console output is unchanged.
    """

    kind: str
    title: str
    key: str
    attempt: int = 0
    wall_time: float = 0.0
    shots: int | None = None
    scenes: int | None = None
    message: str = ""
    timestamp: float = field(default_factory=time.perf_counter)

    def describe(self) -> str:
        """One console line for the event."""
        parts = [f"[{self.kind:>8}] {self.title}"]
        if self.attempt:
            parts.append(f"attempt {self.attempt}")
        if self.kind in ("finished", "failed"):
            parts.append(f"{self.wall_time:.2f}s")
        if self.shots is not None:
            parts.append(f"{self.shots} shots")
        if self.scenes is not None:
            parts.append(f"{self.scenes} scenes")
        if self.message:
            parts.append(f"({self.message})")
        return " ".join(parts)


@dataclass
class ProgressTracker:
    """Collects job events and renders a run summary.

    Usable directly as the executor's progress callback::

        tracker = ProgressTracker()
        run_jobs(jobs, store, manifest, progress=tracker)
        print(tracker.render_summary())
    """

    events: list[JobEvent] = field(default_factory=list)

    def __call__(self, event: JobEvent) -> None:
        """Record one event (the callback protocol)."""
        self.events.append(event)

    def count(self, kind: str) -> int:
        """Number of recorded events of ``kind``."""
        return sum(1 for event in self.events if event.kind == kind)

    def titles_with(self, kind: str) -> list[str]:
        """Titles that emitted at least one event of ``kind``."""
        seen: list[str] = []
        for event in self.events:
            if event.kind == kind and event.title not in seen:
                seen.append(event.title)
        return seen

    def final_events(self) -> list[JobEvent]:
        """The terminal event (cached/finished/failed) of each job."""
        finals: dict[str, JobEvent] = {}
        for event in self.events:
            if event.kind in ("cached", "finished", "failed"):
                finals[event.key] = event
        return list(finals.values())

    def render_summary(self) -> str:
        """Fixed-width table summarising every job's outcome."""
        rows = []
        for event in self.final_events():
            rows.append(
                [
                    event.title,
                    event.kind,
                    event.attempt,
                    f"{event.wall_time:.2f}",
                    "-" if event.shots is None else event.shots,
                    "-" if event.scenes is None else event.scenes,
                ]
            )
        if not rows:
            return "no jobs ran"
        return render_table(
            ["title", "outcome", "attempts", "wall s", "shots", "scenes"],
            rows,
            title="ingest summary",
        )
