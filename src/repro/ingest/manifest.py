"""The on-disk job manifest: a crash-tolerant JSON-lines journal.

Every state transition of every job is appended as one JSON line, so an
interrupted ingest can be resumed by replaying the journal: the *last*
record for each cache key wins.  A partially written trailing line
(the signature of a mid-write crash) is ignored on replay rather than
poisoning the whole manifest.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import IngestError

#: The job lifecycle states recorded in the manifest.
JOB_STATES = ("pending", "running", "done", "failed")


@dataclass(frozen=True)
class JobRecord:
    """One manifest entry: the latest known state of one job.

    Attributes
    ----------
    key:
        The job's artifact cache key.
    title:
        Video title (for human inspection; the key is authoritative).
    state:
        One of :data:`JOB_STATES`.
    attempt:
        1-based attempt number that produced this state (0 = not run).
    timestamp:
        Unix time the record was written.
    error:
        Failure description (empty unless ``state == "failed"``).
    """

    key: str
    title: str
    state: str
    attempt: int = 0
    timestamp: float = 0.0
    error: str = ""


class JobManifest:
    """Append-only journal of job states, replayable after a crash."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._records: dict[str, JobRecord] = {}
        if self._path.exists():
            self._replay()

    @property
    def path(self) -> Path:
        """Location of the journal file."""
        return self._path

    def _replay(self) -> None:
        for line in self._path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                record = JobRecord(
                    key=str(raw["key"]),
                    title=str(raw.get("title", "")),
                    state=str(raw["state"]),
                    attempt=int(raw.get("attempt", 0)),
                    timestamp=float(raw.get("timestamp", 0.0)),
                    error=str(raw.get("error", "")),
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # A torn trailing line from a crash mid-write: skip it.
                continue
            if record.state not in JOB_STATES:
                continue
            self._records[record.key] = record

    def record(
        self,
        key: str,
        title: str,
        state: str,
        attempt: int = 0,
        error: str = "",
    ) -> JobRecord:
        """Append one state transition and return the stored record."""
        if state not in JOB_STATES:
            raise IngestError(f"unknown job state {state!r}; known: {JOB_STATES}")
        record = JobRecord(
            key=key,
            title=title,
            state=state,
            attempt=attempt,
            timestamp=time.time(),
            error=error,
        )
        payload = {
            "key": record.key,
            "title": record.title,
            "state": record.state,
            "attempt": record.attempt,
            "timestamp": record.timestamp,
            "error": record.error,
        }
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with self._path.open("a") as handle:
            handle.write(json.dumps(payload) + "\n")
        self._records[key] = record
        return record

    def state_of(self, key: str) -> str | None:
        """Latest recorded state for ``key`` (None when never seen)."""
        record = self._records.get(key)
        return record.state if record is not None else None

    def get(self, key: str) -> JobRecord | None:
        """Latest record for ``key`` (None when never seen)."""
        return self._records.get(key)

    def records(self) -> list[JobRecord]:
        """Latest record of every known job, in insertion order."""
        return list(self._records.values())

    def done_keys(self) -> set[str]:
        """Keys whose latest state is ``done``."""
        return {k for k, r in self._records.items() if r.state == "done"}

    def counts(self) -> dict[str, int]:
        """Number of jobs currently in each state."""
        tally = {state: 0 for state in JOB_STATES}
        for record in self._records.values():
            tally[record.state] += 1
        return tally

    def clear(self) -> None:
        """Forget every record and truncate the journal file."""
        self._records.clear()
        if self._path.exists():
            self._path.write_text("")
