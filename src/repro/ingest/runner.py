"""End-to-end corpus ingestion: titles in, queryable database dir out.

:func:`ingest_corpus` is the high-level entry the CLI and benchmarks
use.  It lays out a database directory::

    <db_dir>/
        artifacts/       content-addressed mined results (the cache)
        manifest.jsonl   job journal (resume state)
        catalog.sqlite   the registered, queryable catalog (default
                         backend; see repro.storage)
        features/        memory-mapped feature blocks the catalog
                         refers to
        database.json    legacy JSON catalog (written only with
                         CLASSMINER_CATALOG_BACKEND=json)

The artifacts are the source of truth: every run rebuilds the catalog
from the successful artifacts, so a resumed or partially failed ingest
still leaves a consistent, loadable database covering everything that
was mined.  :func:`load_database` auto-detects the backend: a SQL
catalog opens lazily (out-of-core feature blocks), the JSON fallback
loads eagerly.
"""

from __future__ import annotations

import logging
import os
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.structure import MiningConfig
from repro.database.catalog import VideoDatabase
from repro.errors import IngestError
from repro.ingest.executor import JobOutcome, RetryPolicy, run_jobs
from repro.ingest.jobs import IngestJob, jobs_for_titles
from repro.ingest.manifest import JobManifest
from repro.ingest.artifacts import ArtifactStore
from repro.ingest.progress import ProgressCallback
from repro.obs.bridge import JobEventBridge
from repro.obs.registry import get_registry
from repro.obs.trace import span as obs_span
from repro.resilience.faults import fault_point

_LOGGER = logging.getLogger(__name__)

#: File names inside a database directory.
ARTIFACTS_DIR = "artifacts"
MANIFEST_NAME = "manifest.jsonl"
DATABASE_NAME = "database.json"

#: Environment variable selecting the catalog backend ingest writes
#: (and load_database prefers): ``sqlite`` (default) or ``json``.
BACKEND_ENV = "CLASSMINER_CATALOG_BACKEND"


def catalog_backend() -> str:
    """The configured catalog backend (``sqlite`` or ``json``)."""
    backend = os.environ.get(BACKEND_ENV, "sqlite").strip().lower()
    if backend not in ("sqlite", "json"):
        raise IngestError(
            f"unknown catalog backend {backend!r} in ${BACKEND_ENV} "
            f"(expected 'sqlite' or 'json')"
        )
    return backend

#: A corpus hook receives ``(db_dir, database)`` after an ingest run has
#: rebuilt the database from its artifacts.
CorpusHook = Callable[[Path, VideoDatabase], None]

_corpus_hooks: list[CorpusHook] = []


def register_corpus_hook(hook: CorpusHook) -> CorpusHook:
    """Subscribe to corpus rebuilds.

    The serving layer uses this to bump its snapshot generation whenever
    ingest lands new videos: every :func:`ingest_jobs` run calls each
    registered hook with the database directory and the freshly rebuilt
    :class:`~repro.database.catalog.VideoDatabase`.  Returns the hook so
    it can be passed straight to :func:`unregister_corpus_hook`.
    """
    _corpus_hooks.append(hook)
    return hook


def unregister_corpus_hook(hook: CorpusHook) -> None:
    """Remove a previously registered corpus hook (missing hooks are a no-op)."""
    try:
        _corpus_hooks.remove(hook)
    except ValueError:
        pass


def _notify_corpus_hooks(db_dir: Path, database: VideoDatabase) -> None:
    for hook in list(_corpus_hooks):
        hook(db_dir, database)


@dataclass
class IngestReport:
    """What one :func:`ingest_corpus` run did.

    Attributes
    ----------
    db_dir:
        The database directory.
    database_path:
        The written catalog inside it — ``catalog.sqlite`` on the
        default backend, ``database.json`` on the JSON fallback (None
        when nothing succeeded).
    outcomes:
        Per-job terminal outcomes, in job order.
    registered:
        Titles registered into the rebuilt database (this run's jobs
        plus every earlier artifact still in the store).
    """

    db_dir: Path
    database_path: Path | None
    outcomes: list[JobOutcome] = field(default_factory=list)
    registered: list[str] = field(default_factory=list)

    @property
    def mined(self) -> list[JobOutcome]:
        """Jobs actually mined this run."""
        return [o for o in self.outcomes if o.state == "done"]

    @property
    def cached(self) -> list[JobOutcome]:
        """Jobs satisfied from the artifact cache."""
        return [o for o in self.outcomes if o.state == "cached"]

    @property
    def failed(self) -> list[JobOutcome]:
        """Jobs that exhausted their retries (or timed out)."""
        return [o for o in self.outcomes if o.state == "failed"]

    @property
    def ok(self) -> bool:
        """True when every job produced an artifact."""
        return not self.failed


def store_for(db_dir: str | Path) -> ArtifactStore:
    """The artifact store of a database directory."""
    return ArtifactStore(Path(db_dir) / ARTIFACTS_DIR)


def manifest_for(db_dir: str | Path) -> JobManifest:
    """The job manifest of a database directory."""
    return JobManifest(Path(db_dir) / MANIFEST_NAME)


def ingest_jobs(
    jobs: list[IngestJob],
    db_dir: str | Path,
    workers: int = 1,
    force: bool = False,
    timeout: float | None = None,
    policy: RetryPolicy | None = None,
    progress: ProgressCallback | None = None,
    strict: bool = True,
) -> IngestReport:
    """Run prepared jobs into ``db_dir`` and (re)build its database.

    With ``strict`` (the default) any failed job raises
    :class:`IngestError` *after* the database has been rebuilt from the
    successful artifacts; pass ``strict=False`` to inspect failures on
    the returned report instead.
    """
    db_dir = Path(db_dir)
    db_dir.mkdir(parents=True, exist_ok=True)
    store = store_for(db_dir)
    manifest = manifest_for(db_dir)

    # Every run mirrors its job events into the shared registry (and,
    # when a tracer is installed, into back-dated job spans).
    progress = JobEventBridge(get_registry()).wrap(progress)

    with obs_span("ingest.run", jobs=len(jobs), workers=workers) as sp:
        outcomes = run_jobs(
            jobs,
            store,
            manifest,
            workers=workers,
            force=force,
            timeout=timeout,
            policy=policy,
            progress=progress,
            raise_on_failure=False,
        )
        sp.set(
            mined=sum(1 for o in outcomes if o.state == "done"),
            cached=sum(1 for o in outcomes if o.state == "cached"),
            failed=sum(1 for o in outcomes if o.state == "failed"),
        )

    database = VideoDatabase()
    registered: list[str] = []
    skipped: list[str] = []
    with obs_span("ingest.rebuild") as sp:
        fault_point("ingest.rebuild")
        # This run's results first, then every other artifact already in
        # the store: the cache is the source of truth, so ingesting a
        # disjoint title set must not drop previously ingested videos
        # from the DB.
        run_keys = [outcome.key for outcome in outcomes if outcome.ok]
        stored = [info.key for info in store.list() if info.key not in set(run_keys)]

        def loadable():
            # One corrupt (or vanished) artifact must not take the whole
            # rebuild down with it: the entry is quarantined by the
            # store, counted here, and the remaining corpus registers.
            for key in run_keys + stored:
                try:
                    yield store.load(key)
                except IngestError as exc:
                    skipped.append(key)
                    get_registry().counter(
                        "ingest_rebuild_artifacts_skipped_total",
                        "Artifacts skipped during database rebuilds.",
                    ).inc()
                    _LOGGER.warning("rebuild skipping artifact %s: %s", key[:12], exc)

        for record in database.register_bulk(loadable(), skip_registered=True):
            registered.append(record.title)
        sp.set(registered=len(registered), skipped=len(skipped))

    database_path: Path | None = None
    if registered:
        if catalog_backend() == "sqlite":
            from repro.storage.sqlcatalog import save_database as _save_sql

            database_path = _save_sql(database, db_dir)
        else:
            database_path = db_dir / DATABASE_NAME
            database.save(database_path)
        _notify_corpus_hooks(db_dir, database)
        get_registry().counter(
            "ingest_corpus_rebuilds_total",
            "Database rebuilds completed by ingest runs.",
        ).inc()

    report = IngestReport(
        db_dir=db_dir,
        database_path=database_path,
        outcomes=outcomes,
        registered=registered,
    )
    if strict and not report.ok:
        detail = "; ".join(f"{o.title}: {o.error}" for o in report.failed)
        raise IngestError(
            f"{len(report.failed)}/{len(outcomes)} ingest jobs failed — {detail}"
        )
    return report


def ingest_corpus(
    titles: list[str],
    db_dir: str | Path,
    workers: int = 1,
    force: bool = False,
    seed: int = 0,
    config: MiningConfig | None = None,
    mine_events: bool = True,
    timeout: float | None = None,
    policy: RetryPolicy | None = None,
    progress: ProgressCallback | None = None,
    strict: bool = True,
) -> IngestReport:
    """Ingest a set of titles into a persistent database directory.

    ``titles`` accepts corpus titles, ``demo``, and the shorthands
    ``corpus`` (the five paper titles) and ``all`` (corpus + demo).
    See :func:`ingest_jobs` for the execution and failure semantics.
    """
    jobs = jobs_for_titles(titles, seed=seed, config=config, mine_events=mine_events)
    if not jobs:
        raise IngestError("no titles to ingest")
    return ingest_jobs(
        jobs,
        db_dir,
        workers=workers,
        force=force,
        timeout=timeout,
        policy=policy,
        progress=progress,
        strict=strict,
    )


def load_database(db_dir: str | Path) -> VideoDatabase:
    """Load the queryable database an ingest run wrote into ``db_dir``.

    A SQL catalog (``catalog.sqlite``) opens *lazily*: registration
    records and routing metadata load eagerly, feature blocks stay
    memory-mapped on disk until a query routes into them.  The JSON
    fallback (``database.json``) deserialises everything up front.
    ``CLASSMINER_CATALOG_BACKEND=json`` prefers the JSON file when both
    exist; whichever backend is present is used when only one is.
    """
    db_dir = Path(db_dir)
    json_path = db_dir / DATABASE_NAME
    from repro.storage.schema import catalog_path

    sql_path = catalog_path(db_dir)
    prefer_json = catalog_backend() == "json"
    if sql_path.exists() and not (prefer_json and json_path.exists()):
        from repro.storage.lazy import SQLVideoDatabase

        return SQLVideoDatabase.open(db_dir)
    if json_path.exists():
        return VideoDatabase.load(json_path)
    raise IngestError(f"no ingested database in {db_dir}")
