"""Ingest smoke check: cold vs warm demo ingest (``make ingest-smoke``).

Ingests the demo title into a temporary database directory with two
workers, runs the exact same ingest again, and asserts the warm run is
at least five times faster because every job hits the artifact cache.
Exits non-zero (with a diagnostic) when the cache fails to deliver.
"""

from __future__ import annotations

import sys
import tempfile
import time

from repro.ingest.runner import ingest_corpus, load_database

#: Required cold/warm speedup for the smoke check to pass.
MIN_SPEEDUP = 5.0


def run_smoke(workers: int = 2, titles: list[str] | None = None) -> int:
    """Run the cold/warm ingest comparison; returns a process exit code."""
    titles = titles if titles is not None else ["demo"]
    with tempfile.TemporaryDirectory(prefix="ingest-smoke-") as db_dir:
        start = time.perf_counter()
        cold = ingest_corpus(titles, db_dir, workers=workers)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = ingest_corpus(titles, db_dir, workers=workers)
        warm_seconds = time.perf_counter() - start

        database = load_database(db_dir)
        speedup = cold_seconds / max(warm_seconds, 1e-9)
        print(
            f"ingest-smoke: cold {cold_seconds:.2f}s "
            f"({len(cold.mined)} mined), warm {warm_seconds:.2f}s "
            f"({len(warm.cached)} cached), speedup {speedup:.1f}x, "
            f"{database.shot_count} shots indexed"
        )
        if warm.mined:
            print("ingest-smoke: FAIL — warm run re-mined jobs", file=sys.stderr)
            return 1
        if speedup < MIN_SPEEDUP:
            print(
                f"ingest-smoke: FAIL — warm speedup {speedup:.1f}x "
                f"< {MIN_SPEEDUP:.0f}x",
                file=sys.stderr,
            )
            return 1
    print("ingest-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke())
