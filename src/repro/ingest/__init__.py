"""Corpus ingestion runtime: parallel mining, artifact cache, resumable jobs.

The batch layer that turns a set of titles into a persistent, queryable
database directory (Sec. 5-6's corpus-scale story):

* :mod:`repro.ingest.jobs` — jobs and deterministic cache keys;
* :mod:`repro.ingest.manifest` — crash-tolerant JSON-lines job journal;
* :mod:`repro.ingest.artifacts` — content-addressed ``.npz`` + JSON
  store for mined :class:`~repro.core.pipeline.ClassMinerResult`\\ s;
* :mod:`repro.ingest.executor` — process-pool execution with retry,
  backoff and per-job timeouts;
* :mod:`repro.ingest.progress` — structured per-job progress events;
* :mod:`repro.ingest.runner` — the end-to-end ``ingest_corpus`` entry.
"""

from repro.ingest.artifacts import (
    ArtifactInfo,
    ArtifactStore,
    decode_result,
    encode_result,
    results_equal,
)
from repro.ingest.executor import JobOutcome, RetryPolicy, run_jobs
from repro.ingest.jobs import IngestJob, cache_key, jobs_for_titles
from repro.ingest.manifest import JobManifest, JobRecord
from repro.ingest.progress import JobEvent, ProgressTracker
from repro.ingest.runner import (
    CorpusHook,
    IngestReport,
    ingest_corpus,
    ingest_jobs,
    load_database,
    manifest_for,
    register_corpus_hook,
    store_for,
    unregister_corpus_hook,
)

__all__ = [
    "ArtifactInfo",
    "ArtifactStore",
    "CorpusHook",
    "IngestJob",
    "IngestReport",
    "JobEvent",
    "JobManifest",
    "JobOutcome",
    "JobRecord",
    "ProgressTracker",
    "RetryPolicy",
    "cache_key",
    "decode_result",
    "encode_result",
    "ingest_corpus",
    "ingest_jobs",
    "jobs_for_titles",
    "load_database",
    "manifest_for",
    "register_corpus_hook",
    "results_equal",
    "run_jobs",
    "store_for",
    "unregister_corpus_hook",
]
