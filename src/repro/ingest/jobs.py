"""Ingest jobs and their deterministic cache keys.

One :class:`IngestJob` describes everything needed to mine one video:
the screenplay, the render seed and the :class:`MiningConfig`.  The
job's :attr:`~IngestJob.key` is a SHA-256 digest over a canonical JSON
encoding of exactly those inputs (plus the artifact format version), so

* the same screenplay/seed/config always maps to the same artifact,
  across processes and machines; and
* any change to the inputs — an edited screenplay, a different seed, a
  tweaked threshold — maps to a *different* artifact instead of
  silently reusing a stale one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.core.structure import MiningConfig
from repro.errors import IngestError
from repro.video.synthesis import (
    CORPUS_TITLES,
    Screenplay,
    build_screenplay,
    demo_screenplay,
)

#: Bumped whenever the artifact layout changes; part of every cache key
#: so old artifacts are never misread by newer code.
ARTIFACT_FORMAT = 1


def screenplay_fingerprint(screenplay: Screenplay) -> dict:
    """Plain-data description of a screenplay, suitable for hashing.

    Uses :func:`dataclasses.asdict`, which recurses through scenes,
    shots and shot parameters — every field that influences rendering
    lands in the fingerprint.
    """
    return asdict(screenplay)


def cache_key(
    screenplay: Screenplay,
    seed: int,
    config: MiningConfig,
    mine_events: bool = True,
) -> str:
    """Deterministic SHA-256 cache key for one mining run."""
    payload = {
        "format": ARTIFACT_FORMAT,
        "screenplay": screenplay_fingerprint(screenplay),
        "seed": int(seed),
        "config": config.to_dict(),
        "mine_events": bool(mine_events),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def screenplay_for_title(title: str) -> Screenplay:
    """Resolve a CLI title (``demo`` or a corpus title) to a screenplay."""
    if title == "demo":
        return demo_screenplay()
    if title in CORPUS_TITLES:
        return build_screenplay(title)
    raise IngestError(
        f"unknown title {title!r}; known: demo, {', '.join(CORPUS_TITLES)}"
    )


@dataclass(frozen=True)
class IngestJob:
    """One unit of ingestion work: mine one screenplay into an artifact.

    Attributes
    ----------
    screenplay:
        The video to render and mine.
    seed:
        Render seed passed to the synthetic generator.
    config:
        Mining configuration.
    mine_events:
        Whether to run cue extraction, audio analysis and event mining
        (matches ``ClassMiner.mine``'s flag).
    """

    screenplay: Screenplay
    seed: int = 0
    config: MiningConfig = field(default_factory=MiningConfig)
    mine_events: bool = True

    @classmethod
    def for_title(
        cls,
        title: str,
        seed: int = 0,
        config: MiningConfig | None = None,
        mine_events: bool = True,
    ) -> "IngestJob":
        """Build the job for a known title (``demo`` or a corpus title)."""
        return cls(
            screenplay=screenplay_for_title(title),
            seed=seed,
            config=config if config is not None else MiningConfig(),
            mine_events=mine_events,
        )

    @property
    def title(self) -> str:
        """The screenplay title."""
        return self.screenplay.title

    @property
    def key(self) -> str:
        """The job's deterministic artifact cache key."""
        return cache_key(self.screenplay, self.seed, self.config, self.mine_events)


def jobs_for_titles(
    titles: list[str],
    seed: int = 0,
    config: MiningConfig | None = None,
    mine_events: bool = True,
) -> list[IngestJob]:
    """Expand a title list into jobs.

    ``corpus`` expands to the five paper titles and ``all`` to the
    corpus plus the demo; duplicates (after expansion) are dropped while
    preserving order.
    """
    expanded: list[str] = []
    for title in titles:
        if title == "corpus":
            expanded.extend(CORPUS_TITLES)
        elif title == "all":
            expanded.extend(("demo",) + CORPUS_TITLES)
        else:
            expanded.append(title)
    seen: set[str] = set()
    unique = [t for t in expanded if not (t in seen or seen.add(t))]
    return [
        IngestJob.for_title(title, seed=seed, config=config, mine_events=mine_events)
        for title in unique
    ]
