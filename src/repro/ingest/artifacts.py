"""Content-addressed artifact store for mined results.

A mined :class:`~repro.core.pipeline.ClassMinerResult` is the expensive
thing in the whole system — shot detection, cue extraction, audio
analysis and event mining over a full video.  This module serialises it
losslessly to one directory per cache key::

    <root>/<key[:2]>/<key>/
        meta.json     relational structure, cues, events, bookkeeping
        arrays.npz    frames, histograms, textures, MFCCs, waveforms

Numeric payloads live in the ``.npz`` (exact float64/uint8 round-trip);
everything relational — which shots form which groups, which groups
form which scenes, rule evidence, detections — lives in ``meta.json``.
Objects are written to a temporary directory first and moved into place
atomically, so concurrent workers racing on the same key cannot leave a
half-written artifact behind.

Integrity: every save also writes ``checksums.json`` (sha256 of both
payload files, computed before the atomic rename) and every load
verifies it.  A mismatch — torn write, bit rot, an injected corruption
fault — raises :class:`~repro.errors.IntegrityError` after the corrupt
entry is *quarantined* under ``<root>/.quarantine/``; ``has()`` then
answers False, so the next ingest run re-mines the video transparently.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.audio.clips import AudioClip
from repro.audio.speaker import ShotAudio
from repro.audio.waveform import Waveform
from repro.core.clustering import ClusteredScene, SceneClusteringResult
from repro.core.features import Shot
from repro.core.groups import Group, GroupKind
from repro.core.pipeline import ClassMinerResult
from repro.core.scenes import Scene, SceneDetectionResult
from repro.core.shots import ShotDetectionResult
from repro.core.structure import ContentStructure
from repro.errors import IngestError, IntegrityError
from repro.events.miner import EventMiningResult
from repro.obs.registry import get_registry
from repro.events.model import SceneEvent
from repro.events.rules import SceneEvidence
from repro.resilience.faults import corrupt_payload, fault_point
from repro.resilience.integrity import (
    CHECKSUMS_NAME,
    QUARANTINE_DIR,
    verify_checksums,
    write_checksums,
)
from repro.types import EventKind
from repro.video.frame import Frame
from repro.vision.blood import BloodDetection
from repro.vision.cues import VisualCues
from repro.vision.face import FaceDetection
from repro.vision.frames import SpecialFrameKind
from repro.vision.regions import Region
from repro.vision.skin import SkinDetection

#: On-disk format version; readers reject anything else.
FORMAT_VERSION = 1

_META_NAME = "meta.json"
_ARRAYS_NAME = "arrays.npz"


# ---------------------------------------------------------------------------
# Encoding: ClassMinerResult -> (meta dict, arrays dict).
# ---------------------------------------------------------------------------


def _region_to_data(region: Region) -> dict:
    return {
        "label": region.label,
        "area": region.area,
        "bbox": list(region.bbox),
        "centroid": list(region.centroid),
    }


def _region_from_data(data: dict) -> Region:
    return Region(
        label=int(data["label"]),
        area=int(data["area"]),
        bbox=tuple(int(v) for v in data["bbox"]),
        centroid=tuple(float(v) for v in data["centroid"]),
    )


def _cues_to_data(cues: VisualCues) -> dict:
    return {
        "special": cues.special.value,
        "face": {
            "faces": [_region_to_data(r) for r in cues.face.faces],
            "has_face": cues.face.has_face,
            "has_closeup": cues.face.has_closeup,
            "largest_fraction": cues.face.largest_fraction,
        },
        "skin": {
            "regions": [_region_to_data(r) for r in cues.skin.regions],
            "mask_fraction": cues.skin.mask_fraction,
            "largest_fraction": cues.skin.largest_fraction,
            "has_skin": cues.skin.has_skin,
            "has_closeup": cues.skin.has_closeup,
        },
        "blood": {
            "regions": [_region_to_data(r) for r in cues.blood.regions],
            "mask_fraction": cues.blood.mask_fraction,
            "largest_fraction": cues.blood.largest_fraction,
            "has_blood": cues.blood.has_blood,
        },
    }


def _cues_from_data(data: dict) -> VisualCues:
    face = data["face"]
    skin = data["skin"]
    blood = data["blood"]
    return VisualCues(
        special=SpecialFrameKind(data["special"]),
        face=FaceDetection(
            faces=tuple(_region_from_data(r) for r in face["faces"]),
            has_face=bool(face["has_face"]),
            has_closeup=bool(face["has_closeup"]),
            largest_fraction=float(face["largest_fraction"]),
        ),
        skin=SkinDetection(
            regions=tuple(_region_from_data(r) for r in skin["regions"]),
            mask_fraction=float(skin["mask_fraction"]),
            largest_fraction=float(skin["largest_fraction"]),
            has_skin=bool(skin["has_skin"]),
            has_closeup=bool(skin["has_closeup"]),
        ),
        blood=BloodDetection(
            regions=tuple(_region_from_data(r) for r in blood["regions"]),
            mask_fraction=float(blood["mask_fraction"]),
            largest_fraction=float(blood["largest_fraction"]),
            has_blood=bool(blood["has_blood"]),
        ),
    )


def encode_result(result: ClassMinerResult) -> tuple[dict, dict[str, np.ndarray]]:
    """Flatten a mined result into JSON-safe metadata plus numeric arrays."""
    structure = result.structure
    shots = structure.shots
    arrays: dict[str, np.ndarray] = {
        "rep_frames": np.stack([s.representative_frame.pixels for s in shots]),
        "histograms": np.stack([s.histogram for s in shots]),
        "textures": np.stack([s.texture for s in shots]),
    }
    meta: dict = {
        "format": FORMAT_VERSION,
        "title": structure.title,
        "degraded_stages": list(result.degraded_stages),
        "fps": shots[0].fps if shots else 0.0,
        "shots": [
            {
                "shot_id": s.shot_id,
                "start": s.start,
                "stop": s.stop,
                "rep_index": s.representative_frame.index,
            }
            for s in shots
        ],
        "groups": [
            {
                "group_id": g.group_id,
                "shot_ids": g.shot_ids,
                "kind": g.kind.value,
                "clusters": [[s.shot_id for s in cluster] for cluster in g.clusters],
                "representative_shot_ids": [s.shot_id for s in g.representative_shots],
            }
            for g in structure.groups
        ],
        "scenes": [
            {
                "scene_id": sc.scene_id,
                "group_ids": [g.group_id for g in sc.groups],
                "representative_group_id": sc.representative_group.group_id,
            }
            for sc in structure.scenes
        ],
        "clusters": [
            {
                "cluster_id": c.cluster_id,
                "scene_ids": c.scene_ids,
                "centroid_group_id": c.centroid.group_id,
            }
            for c in structure.clustered_scenes
        ],
    }

    detection = structure.shot_detection
    if detection is None:
        meta["shot_detection"] = None
    else:
        meta["shot_detection"] = {"boundaries": list(detection.boundaries)}
        arrays["shot_differences"] = np.asarray(detection.differences)
        arrays["shot_thresholds"] = np.asarray(detection.thresholds)

    scene_detection = structure.scene_detection
    if scene_detection is None:
        meta["scene_detection"] = None
    else:
        meta["scene_detection"] = {
            "eliminated": [
                [g.group_id for g in unit] for unit in scene_detection.eliminated
            ],
            "merge_threshold": scene_detection.merge_threshold,
        }
        arrays["neighbour_similarities"] = np.asarray(
            scene_detection.neighbour_similarities
        )

    clustering = structure.clustering
    meta["clustering"] = (
        None
        if clustering is None
        else {
            "validity_curve": {str(k): v for k, v in clustering.validity_curve.items()},
            "chosen_count": clustering.chosen_count,
        }
    )

    meta["cues"] = {str(sid): _cues_to_data(c) for sid, c in result.cues.items()}

    audio_meta: dict[str, dict] = {}
    for sid, shot_audio in result.audio.items():
        clip = shot_audio.representative_clip
        audio_meta[str(sid)] = {
            "has_speech": shot_audio.has_speech,
            "clip": (
                None
                if clip is None
                else {
                    "start": clip.start,
                    "stop": clip.stop,
                    "sample_rate": clip.waveform.sample_rate,
                }
            ),
        }
        arrays[f"mfcc_{sid}"] = shot_audio.mfcc_vectors
        if clip is not None:
            arrays[f"clip_{sid}"] = clip.waveform.samples
    meta["audio"] = audio_meta

    events = result.events
    if events is None:
        meta["events"] = None
    else:
        meta["events"] = {
            "events": [
                {
                    "scene_index": e.scene_index,
                    "kind": e.kind.value,
                    "evidence": list(e.evidence),
                }
                for e in events.events
            ],
            "evidence": [
                {
                    "scene_id": ev.scene.scene_id,
                    "adjacent_changes": list(ev.adjacent_changes),
                    "same_speaker_pairs": sorted(
                        list(pair) for pair in ev.same_speaker_pairs
                    ),
                }
                for ev in events.evidence
            ],
        }
    return meta, arrays


# ---------------------------------------------------------------------------
# Decoding: (meta dict, arrays) -> ClassMinerResult.
# ---------------------------------------------------------------------------


def decode_result(meta: dict, arrays: dict[str, np.ndarray]) -> ClassMinerResult:
    """Rebuild a :class:`ClassMinerResult` from its serialised form."""
    fps = float(meta["fps"])
    shots: list[Shot] = []
    for i, raw in enumerate(meta["shots"]):
        rep_index = int(raw["rep_index"])
        frame = Frame(
            pixels=arrays["rep_frames"][i],
            index=rep_index,
            timestamp=rep_index / fps,
        )
        shots.append(
            Shot(
                shot_id=int(raw["shot_id"]),
                start=int(raw["start"]),
                stop=int(raw["stop"]),
                fps=fps,
                representative_frame=frame,
                histogram=arrays["histograms"][i],
                texture=arrays["textures"][i],
            )
        )
    shot_by_id = {s.shot_id: s for s in shots}

    groups: list[Group] = []
    for raw in meta["groups"]:
        groups.append(
            Group(
                group_id=int(raw["group_id"]),
                shots=[shot_by_id[i] for i in raw["shot_ids"]],
                kind=GroupKind(raw["kind"]),
                clusters=[
                    [shot_by_id[i] for i in cluster] for cluster in raw["clusters"]
                ],
                representative_shots=[
                    shot_by_id[i] for i in raw["representative_shot_ids"]
                ],
            )
        )
    group_by_id = {g.group_id: g for g in groups}

    scenes: list[Scene] = []
    for raw in meta["scenes"]:
        scenes.append(
            Scene(
                scene_id=int(raw["scene_id"]),
                groups=[group_by_id[i] for i in raw["group_ids"]],
                representative_group=group_by_id[int(raw["representative_group_id"])],
            )
        )
    scene_by_id = {s.scene_id: s for s in scenes}

    clustered = [
        ClusteredScene(
            cluster_id=int(raw["cluster_id"]),
            scenes=[scene_by_id[i] for i in raw["scene_ids"]],
            centroid=group_by_id[int(raw["centroid_group_id"])],
        )
        for raw in meta["clusters"]
    ]

    detection = None
    if meta.get("shot_detection") is not None:
        detection = ShotDetectionResult(
            shots=shots,
            differences=arrays["shot_differences"],
            thresholds=arrays["shot_thresholds"],
            boundaries=[int(b) for b in meta["shot_detection"]["boundaries"]],
        )

    scene_detection = None
    if meta.get("scene_detection") is not None:
        raw = meta["scene_detection"]
        scene_detection = SceneDetectionResult(
            scenes=scenes,
            eliminated=[
                [group_by_id[i] for i in unit] for unit in raw["eliminated"]
            ],
            merge_threshold=float(raw["merge_threshold"]),
            neighbour_similarities=arrays["neighbour_similarities"],
        )

    clustering = None
    if meta.get("clustering") is not None:
        raw = meta["clustering"]
        clustering = SceneClusteringResult(
            clusters=clustered,
            validity_curve={int(k): float(v) for k, v in raw["validity_curve"].items()},
            chosen_count=int(raw["chosen_count"]),
        )

    structure = ContentStructure(
        title=str(meta["title"]),
        shots=shots,
        groups=groups,
        scenes=scenes,
        clustered_scenes=clustered,
        shot_detection=detection,
        scene_detection=scene_detection,
        clustering=clustering,
    )

    cues = {int(sid): _cues_from_data(raw) for sid, raw in meta["cues"].items()}

    audio: dict[int, ShotAudio] = {}
    for sid_text, raw in meta["audio"].items():
        sid = int(sid_text)
        clip_raw = raw["clip"]
        clip = None
        if clip_raw is not None:
            clip = AudioClip(
                waveform=Waveform(
                    samples=arrays[f"clip_{sid}"],
                    sample_rate=int(clip_raw["sample_rate"]),
                ),
                start=float(clip_raw["start"]),
                stop=float(clip_raw["stop"]),
            )
        audio[sid] = ShotAudio(
            shot_id=sid,
            representative_clip=clip,
            has_speech=bool(raw["has_speech"]),
            mfcc_vectors=arrays[f"mfcc_{sid}"],
        )

    events = None
    if meta.get("events") is not None:
        raw_events = meta["events"]
        event_list = [
            SceneEvent(
                scene_index=int(e["scene_index"]),
                kind=EventKind(e["kind"]),
                evidence=tuple(e["evidence"]),
            )
            for e in raw_events["events"]
        ]
        evidence_list = []
        for ev in raw_events["evidence"]:
            scene = scene_by_id[int(ev["scene_id"])]
            evidence_list.append(
                SceneEvidence(
                    scene=scene,
                    cues={sid: cues[sid] for sid in scene.shot_ids},
                    audio={sid: audio[sid] for sid in scene.shot_ids if sid in audio},
                    adjacent_changes=[
                        None if c is None else bool(c)
                        for c in ev["adjacent_changes"]
                    ],
                    same_speaker_pairs={
                        (int(i), int(j)) for i, j in ev["same_speaker_pairs"]
                    },
                )
            )
        events = EventMiningResult(events=event_list, evidence=evidence_list)

    return ClassMinerResult(
        structure=structure,
        cues=cues,
        audio=audio,
        events=events,
        degraded_stages=tuple(meta.get("degraded_stages", ())),
    )


# ---------------------------------------------------------------------------
# The store itself.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArtifactInfo:
    """Summary of one stored artifact (for ``classminer cache list``)."""

    key: str
    title: str
    path: Path
    size_bytes: int
    modified: float


class ArtifactStore:
    """Content-addressed directory of serialised mining results."""

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)

    @property
    def root(self) -> Path:
        """Root directory of the store."""
        return self._root

    def path_for(self, key: str) -> Path:
        """Directory an artifact with ``key`` lives in (may not exist)."""
        return self._root / key[:2] / key

    def has(self, key: str) -> bool:
        """True when a complete artifact exists for ``key``."""
        path = self.path_for(key)
        return (path / _META_NAME).exists() and (path / _ARRAYS_NAME).exists()

    def save(
        self,
        key: str,
        result: ClassMinerResult,
        extra_meta: dict | None = None,
    ) -> Path:
        """Serialise ``result`` under ``key``; atomic against races.

        ``extra_meta`` entries (job seed, config, timings) are merged
        into ``meta.json`` for provenance.  Returns the artifact path.
        """
        fault_point("ingest.artifact.write")
        meta, arrays = encode_result(result)
        meta["key"] = key
        if extra_meta:
            meta.update(extra_meta)
        final = self.path_for(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(
            tempfile.mkdtemp(prefix=f".tmp-{key[:8]}-", dir=self._root)
        )
        try:
            meta_bytes = json.dumps(meta).encode()
            (tmp / _META_NAME).write_bytes(meta_bytes)
            np.savez_compressed(tmp / _ARRAYS_NAME, **arrays)
            # Checksums cover the intended content; a corruption fault
            # (or real disk corruption) lands after they are computed,
            # which is exactly what read-time verification must catch.
            write_checksums(tmp, (_META_NAME, _ARRAYS_NAME))
            corrupted = corrupt_payload("ingest.artifact.write", meta_bytes)
            if corrupted is not meta_bytes:
                (tmp / _META_NAME).write_bytes(corrupted)
            try:
                os.replace(tmp, final)
            except OSError:
                # The target already exists (an earlier run, or a
                # concurrent worker).  Replace it — a forced re-mine
                # must win — but if the swap still fails while a
                # complete artifact sits there, keep that one: same
                # key means same inputs, so the content is equivalent.
                shutil.rmtree(final, ignore_errors=True)
                try:
                    os.replace(tmp, final)
                except OSError:
                    if not self.has(key):
                        raise
                    shutil.rmtree(tmp, ignore_errors=True)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        return final

    def load(self, key: str) -> ClassMinerResult:
        """Deserialise the artifact stored under ``key``.

        The checksum manifest is verified first; a failing artifact is
        quarantined and :class:`IntegrityError` raised.  Other missing
        or corrupt artifacts raise :class:`IngestError`.
        """
        fault_point("ingest.artifact.read")
        path = self.path_for(key)
        if not self.has(key):
            raise IngestError(f"no artifact for key {key[:12]}… in {self._root}")
        try:
            verify_checksums(path)
        except IntegrityError as exc:
            self.quarantine(key, reason=str(exc))
            raise
        try:
            meta = json.loads((path / _META_NAME).read_text())
            if int(meta.get("format", -1)) != FORMAT_VERSION:
                raise IngestError(
                    f"artifact {key[:12]}… has format {meta.get('format')!r}, "
                    f"expected {FORMAT_VERSION}"
                )
            with np.load(path / _ARRAYS_NAME, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
            return decode_result(meta, arrays)
        except IngestError:
            raise
        except Exception as exc:  # corrupt json/zip/missing keys
            raise IngestError(f"corrupt artifact {key[:12]}…: {exc}") from exc

    def verify(self, key: str) -> bool:
        """Verify ``key``'s checksum manifest without decoding.

        Returns ``True`` when verified, ``False`` for a legacy artifact
        with no manifest; raises :class:`IntegrityError` on corruption
        (the entry is *not* quarantined — use :meth:`has_valid` for
        that) and :class:`IngestError` when the artifact is missing.
        """
        if not self.has(key):
            raise IngestError(f"no artifact for key {key[:12]}… in {self._root}")
        return verify_checksums(self.path_for(key))

    def has_valid(self, key: str) -> bool:
        """True when a verified (or legacy) artifact exists for ``key``.

        A present-but-corrupt artifact is quarantined as a side effect,
        so callers gating cache hits on this answer will re-mine it.
        """
        if not self.has(key):
            return False
        try:
            verify_checksums(self.path_for(key))
        except IntegrityError as exc:
            self.quarantine(key, reason=str(exc))
            return False
        return True

    def quarantine(self, key: str, reason: str = "") -> Path:
        """Move ``key``'s directory under ``<root>/.quarantine/``.

        The quarantined copy keeps its payload for post-mortems plus a
        ``quarantined.json`` note recording when and why.  After this,
        :meth:`has` answers False so the next ingest run re-mines the
        video.  Returns the quarantine path.
        """
        source = self.path_for(key)
        target = self._root / QUARANTINE_DIR / key
        if source.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.rmtree(target, ignore_errors=True)
            os.replace(source, target)
            (target / "quarantined.json").write_text(
                json.dumps({"key": key, "time": time.time(), "reason": reason})
            )
            get_registry().counter(
                "ingest_artifacts_quarantined_total",
                "Corrupt artifacts moved to quarantine.",
            ).inc()
        return target

    def quarantined(self) -> list[str]:
        """Keys currently sitting in quarantine (sorted)."""
        root = self._root / QUARANTINE_DIR
        if not root.exists():
            return []
        return sorted(p.name for p in root.iterdir() if p.is_dir())

    def read_meta(self, key: str) -> dict:
        """Load just the JSON metadata of an artifact (cheap)."""
        path = self.path_for(key) / _META_NAME
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            # ValueError covers both garbled JSON and bytes that are not
            # valid UTF-8 (a corrupted file is arbitrary bytes).
            raise IngestError(f"cannot read artifact meta {key[:12]}…: {exc}") from exc

    def list(self) -> list[ArtifactInfo]:
        """Enumerate stored artifacts, newest first."""
        infos: list[ArtifactInfo] = []
        if not self._root.exists():
            return infos
        for meta_path in sorted(self._root.glob(f"*/*/{_META_NAME}")):
            directory = meta_path.parent
            key = directory.name
            if not self.has(key):
                continue
            try:
                title = str(json.loads(meta_path.read_text()).get("title", "?"))
            except (OSError, ValueError):  # unreadable or corrupt bytes
                title = "?"
            size = sum(f.stat().st_size for f in directory.iterdir() if f.is_file())
            infos.append(
                ArtifactInfo(
                    key=key,
                    title=title,
                    path=directory,
                    size_bytes=size,
                    modified=meta_path.stat().st_mtime,
                )
            )
        infos.sort(key=lambda info: info.modified, reverse=True)
        return infos

    def remove(self, key: str) -> bool:
        """Delete one artifact; returns whether anything was removed."""
        path = self.path_for(key)
        if not path.exists():
            return False
        shutil.rmtree(path)
        return True

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        count = len(self.list())
        if self._root.exists():
            shutil.rmtree(self._root)
        self._root.mkdir(parents=True, exist_ok=True)
        return count


def results_equal(a: ClassMinerResult, b: ClassMinerResult) -> bool:
    """Deep equality of two mined results (used to verify round-trips)."""
    meta_a, arrays_a = encode_result(a)
    meta_b, arrays_b = encode_result(b)
    if meta_a != meta_b:
        return False
    if set(arrays_a) != set(arrays_b):
        return False
    return all(np.array_equal(arrays_a[name], arrays_b[name]) for name in arrays_a)
