"""The ingest worker-pool executor.

Runs ingest jobs across processes via
:class:`concurrent.futures.ProcessPoolExecutor` with a serial fallback
(``workers <= 1``, or when the platform refuses to give us a pool).
Each job:

1. checks the artifact store — a cache hit skips mining entirely;
2. renders and mines the video (inside the worker process);
3. serialises the result into the content-addressed store;
4. reports back, and the parent records the manifest transition.

Failures are retried with exponential backoff up to a bounded attempt
count; exhaustion (and per-job timeouts in pool mode) surface as a
typed :class:`~repro.errors.IngestError`.  Tests inject faults by
monkeypatching :func:`_mine_job`, the single choke point both the
serial and pool paths go through.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path

from repro.core import ClassMiner
from repro.core.pipeline import ClassMinerResult
from repro.errors import IngestError
from repro.ingest.artifacts import ArtifactStore
from repro.ingest.jobs import IngestJob
from repro.ingest.manifest import JobManifest
from repro.ingest.progress import JobEvent, ProgressCallback
from repro.obs.registry import get_registry
from repro.resilience.faults import fault_point
from repro.video.synthesis import generate_video


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient job failures.

    Attributes
    ----------
    retries:
        Extra attempts after the first (0 disables retrying).
    backoff:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied to the delay for each further retry.
    jitter:
        Randomise retry delays with *decorrelated jitter* so a batch of
        jobs failing together (a shared-resource hiccup) does not retry
        in lockstep and fail together again.  Disable for byte-exact
        deterministic scheduling in tests.
    max_delay:
        Upper bound on any single delay, jittered or not.
    """

    retries: int = 2
    backoff: float = 0.1
    backoff_factor: float = 2.0
    jitter: bool = True
    max_delay: float = 30.0

    def delay(self, attempt: int) -> float:
        """Deterministic backoff after failed attempt ``attempt``.

        Pure exponential (no jitter) — the fixed schedule used when
        ``jitter`` is off, and the base the jittered path grows from.
        """
        return min(
            self.max_delay, self.backoff * self.backoff_factor ** max(0, attempt - 1)
        )

    def next_delay(
        self,
        attempt: int,
        previous: float = 0.0,
        rng: random.Random | None = None,
    ) -> float:
        """Backoff after failed attempt ``attempt``, jittered when enabled.

        Decorrelated jitter (the AWS architecture-blog scheme): each
        delay is drawn uniformly from ``[backoff, 3 * previous]``, so
        retry times spread out instead of synchronising, while still
        growing roughly exponentially.  ``previous`` is the delay the
        caller slept last time (0 on the first retry).  Falls back to
        :meth:`delay` when jitter is disabled or no ``rng`` is given.
        """
        if not self.jitter or rng is None:
            return self.delay(attempt)
        upper = max(self.backoff, 3.0 * previous)
        return min(self.max_delay, rng.uniform(self.backoff, upper))

    @property
    def max_attempts(self) -> int:
        """Total attempts a job may consume."""
        return 1 + max(0, self.retries)


@dataclass
class JobOutcome:
    """Terminal result of one job within a run.

    Attributes
    ----------
    key / title:
        Job identity.
    state:
        ``cached`` (artifact reused), ``done`` (mined this run) or
        ``failed``.
    attempts:
        Attempts consumed (0 for cache hits).
    wall_time:
        Seconds of the successful (or final failed) attempt.
    shots / scenes:
        Mined counts (None for failures).
    artifact_path:
        Where the artifact lives (None for failures).
    error:
        Failure description (empty otherwise).
    """

    key: str
    title: str
    state: str
    attempts: int = 0
    wall_time: float = 0.0
    shots: int | None = None
    scenes: int | None = None
    artifact_path: Path | None = None
    error: str = ""

    @property
    def ok(self) -> bool:
        """True unless the job failed."""
        return self.state in ("cached", "done")


def _mine_job(job: IngestJob) -> ClassMinerResult:
    """Render and mine one job's video (the fault-injection choke point)."""
    fault_point("ingest.mine")
    video = generate_video(job.screenplay, seed=job.seed, with_audio=job.mine_events)
    return ClassMiner(config=job.config).mine(video.stream, mine_events=job.mine_events)


def _execute_job(job: IngestJob, store_root: str) -> dict:
    """Worker entry: mine ``job`` and persist its artifact.

    Runs inside the pool worker (or inline in serial mode) and returns a
    small picklable summary — the heavy result stays on disk.
    """
    start = time.perf_counter()
    result = _mine_job(job)
    wall = time.perf_counter() - start
    store = ArtifactStore(store_root)
    path = store.save(
        job.key,
        result,
        extra_meta={
            "seed": job.seed,
            "config": job.config.to_dict(),
            "mine_events": job.mine_events,
            "mine_seconds": wall,
            "created": time.time(),
        },
    )
    return {
        "key": job.key,
        "title": job.title,
        "path": str(path),
        "shots": result.structure.shot_count,
        "scenes": result.structure.scene_count,
        "wall": wall,
    }


def _emit(progress: ProgressCallback | None, event: JobEvent) -> None:
    if progress is not None:
        progress(event)


def _cached_outcome(
    job: IngestJob,
    store: ArtifactStore,
    manifest: JobManifest,
    progress: ProgressCallback | None,
) -> JobOutcome:
    """Outcome for a job whose artifact already exists on disk."""
    if manifest.state_of(job.key) != "done":
        manifest.record(job.key, job.title, "done")
    meta = store.read_meta(job.key)
    outcome = JobOutcome(
        key=job.key,
        title=job.title,
        state="cached",
        artifact_path=store.path_for(job.key),
        shots=len(meta.get("shots", [])),
        scenes=len(meta.get("scenes", [])),
    )
    _emit(
        progress,
        JobEvent(
            "cached",
            job.title,
            job.key,
            shots=outcome.shots,
            scenes=outcome.scenes,
        ),
    )
    return outcome


def _outcome_from_summary(summary: dict, attempts: int) -> JobOutcome:
    return JobOutcome(
        key=summary["key"],
        title=summary["title"],
        state="done",
        attempts=attempts,
        wall_time=summary["wall"],
        shots=summary["shots"],
        scenes=summary["scenes"],
        artifact_path=Path(summary["path"]),
    )


def _run_serial(
    jobs: list[IngestJob],
    store: ArtifactStore,
    manifest: JobManifest,
    policy: RetryPolicy,
    progress: ProgressCallback | None,
) -> list[JobOutcome]:
    """Mine jobs one by one in this process (no preemptive timeout)."""
    outcomes: list[JobOutcome] = []
    for job in jobs:
        error = ""
        attempt = 0
        outcome: JobOutcome | None = None
        # Seeded per job key: deterministic for a given corpus, but
        # decorrelated across jobs so retries do not synchronise.
        rng = random.Random(job.key)
        last_delay = 0.0
        while attempt < policy.max_attempts:
            attempt += 1
            manifest.record(job.key, job.title, "running", attempt=attempt)
            _emit(progress, JobEvent("started", job.title, job.key, attempt=attempt))
            start = time.perf_counter()
            try:
                summary = _execute_job(job, str(store.root))
            except Exception as exc:  # typed below; bounded by max_attempts
                error = f"{type(exc).__name__}: {exc}"
                if attempt < policy.max_attempts:
                    _emit(
                        progress,
                        JobEvent(
                            "retried",
                            job.title,
                            job.key,
                            attempt=attempt,
                            message=error,
                        ),
                    )
                    last_delay = policy.next_delay(attempt, last_delay, rng)
                    time.sleep(last_delay)
                continue
            outcome = _outcome_from_summary(summary, attempt)
            break
        if outcome is None:
            outcome = JobOutcome(
                key=job.key,
                title=job.title,
                state="failed",
                attempts=attempt,
                wall_time=time.perf_counter() - start,
                error=error,
            )
            manifest.record(
                job.key, job.title, "failed", attempt=attempt, error=error
            )
            _emit(
                progress,
                JobEvent(
                    "failed",
                    job.title,
                    job.key,
                    attempt=attempt,
                    wall_time=outcome.wall_time,
                    message=error,
                ),
            )
        else:
            manifest.record(job.key, job.title, "done", attempt=attempt)
            _emit(
                progress,
                JobEvent(
                    "finished",
                    job.title,
                    job.key,
                    attempt=attempt,
                    wall_time=outcome.wall_time,
                    shots=outcome.shots,
                    scenes=outcome.scenes,
                ),
            )
        outcomes.append(outcome)
    return outcomes


@dataclass
class _Slot:
    """Bookkeeping for one in-flight pooled job."""

    job: IngestJob
    attempt: int
    deadline: float | None
    # Retry-jitter state: one seeded stream per job, plus the delay the
    # scheduler slept before this attempt (decorrelated jitter input).
    rng: random.Random | None = None
    last_delay: float = 0.0


def _run_pool(
    jobs: list[IngestJob],
    store: ArtifactStore,
    manifest: JobManifest,
    workers: int,
    timeout: float | None,
    policy: RetryPolicy,
    progress: ProgressCallback | None,
) -> list[JobOutcome]:
    """Mine jobs across a process pool with per-job deadlines."""
    outcomes: dict[str, JobOutcome] = {}
    timed_out = False
    inflight = get_registry().gauge(
        "ingest_inflight_jobs",
        "Jobs currently submitted to the ingest process pool.",
    )
    pool = ProcessPoolExecutor(max_workers=workers)
    try:

        def submit(
            job: IngestJob,
            attempt: int,
            rng: random.Random | None = None,
            last_delay: float = 0.0,
        ) -> tuple[Future, _Slot]:
            manifest.record(job.key, job.title, "running", attempt=attempt)
            _emit(progress, JobEvent("started", job.title, job.key, attempt=attempt))
            future = pool.submit(_execute_job, job, str(store.root))
            deadline = None if timeout is None else time.monotonic() + timeout
            return future, _Slot(
                job=job,
                attempt=attempt,
                deadline=deadline,
                rng=rng if rng is not None else random.Random(job.key),
                last_delay=last_delay,
            )

        pending: dict[Future, _Slot] = {}
        for job in jobs:
            future, slot = submit(job, attempt=1)
            pending[future] = slot

        while pending:
            inflight.set(len(pending))
            completed, _ = wait(
                list(pending), timeout=0.05, return_when=FIRST_COMPLETED
            )
            for future in completed:
                slot = pending.pop(future)
                job, attempt = slot.job, slot.attempt
                exc = future.exception()
                if exc is None:
                    summary = future.result()
                    outcomes[job.key] = _outcome_from_summary(summary, attempt)
                    manifest.record(job.key, job.title, "done", attempt=attempt)
                    _emit(
                        progress,
                        JobEvent(
                            "finished",
                            job.title,
                            job.key,
                            attempt=attempt,
                            wall_time=summary["wall"],
                            shots=summary["shots"],
                            scenes=summary["scenes"],
                        ),
                    )
                    continue
                error = f"{type(exc).__name__}: {exc}"
                if attempt < policy.max_attempts:
                    _emit(
                        progress,
                        JobEvent(
                            "retried", job.title, job.key, attempt=attempt,
                            message=error,
                        ),
                    )
                    retry_delay = policy.next_delay(
                        attempt, slot.last_delay, slot.rng
                    )
                    time.sleep(retry_delay)
                    future, slot = submit(
                        job,
                        attempt=attempt + 1,
                        rng=slot.rng,
                        last_delay=retry_delay,
                    )
                    pending[future] = slot
                else:
                    outcomes[job.key] = JobOutcome(
                        key=job.key,
                        title=job.title,
                        state="failed",
                        attempts=attempt,
                        error=error,
                    )
                    manifest.record(
                        job.key, job.title, "failed", attempt=attempt, error=error
                    )
                    _emit(
                        progress,
                        JobEvent(
                            "failed", job.title, job.key, attempt=attempt,
                            message=error,
                        ),
                    )
            # Enforce per-job deadlines on whatever is still running.
            now = time.monotonic()
            for future, slot in list(pending.items()):
                if slot.deadline is None or now <= slot.deadline:
                    continue
                future.cancel()
                timed_out = True
                del pending[future]
                job = slot.job
                error = f"timed out after {timeout:.1f}s"
                outcomes[job.key] = JobOutcome(
                    key=job.key,
                    title=job.title,
                    state="failed",
                    attempts=slot.attempt,
                    wall_time=timeout or 0.0,
                    error=error,
                )
                manifest.record(
                    job.key, job.title, "failed", attempt=slot.attempt, error=error
                )
                _emit(
                    progress,
                    JobEvent(
                        "failed", job.title, job.key, attempt=slot.attempt,
                        wall_time=timeout or 0.0, message=error,
                    ),
                )
    finally:
        inflight.set(0)
        # After a timeout the stuck worker may never return; abandon it
        # instead of blocking the whole ingest on its shutdown join.
        pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
    return [outcomes[job.key] for job in jobs if job.key in outcomes]


def run_jobs(
    jobs: list[IngestJob],
    store: ArtifactStore,
    manifest: JobManifest,
    workers: int = 1,
    force: bool = False,
    timeout: float | None = None,
    policy: RetryPolicy | None = None,
    progress: ProgressCallback | None = None,
    raise_on_failure: bool = True,
) -> list[JobOutcome]:
    """Run a batch of ingest jobs and return one outcome per job.

    Parameters
    ----------
    jobs:
        The work list (see :func:`repro.ingest.jobs.jobs_for_titles`).
    store / manifest:
        The artifact store and job journal of the target database dir.
    workers:
        Process count; ``<= 1`` runs serially in this process.
    force:
        Re-mine even when a cached artifact exists.
    timeout:
        Per-job wall-clock limit in seconds (pool mode only — serial
        execution cannot preempt a running job).
    policy:
        Retry/backoff policy (defaults to :class:`RetryPolicy`).
    progress:
        Callback receiving a :class:`JobEvent` per state change.
    raise_on_failure:
        Raise :class:`IngestError` when any job exhausts its retries.
    """
    policy = policy if policy is not None else RetryPolicy()
    outcomes: list[JobOutcome] = []
    to_run: list[IngestJob] = []
    for job in jobs:
        _emit(progress, JobEvent("queued", job.title, job.key))
        if force:
            store.remove(job.key)
        if not force and store.has_valid(job.key):
            # Cache hit: mining is skipped entirely.  Covers both a
            # resumed ingest (manifest already says done) and a manifest
            # lost or cleared since the artifact was written.  A corrupt
            # artifact fails verification here, gets quarantined, and
            # the job falls through to a fresh mine.
            outcomes.append(_cached_outcome(job, store, manifest, progress))
            continue
        manifest.record(job.key, job.title, "pending")
        to_run.append(job)

    if to_run:
        if workers > 1:
            try:
                outcomes.extend(
                    _run_pool(
                        to_run, store, manifest, workers, timeout, policy, progress
                    )
                )
            except (OSError, PermissionError, ImportError, BrokenExecutor):
                # No process pool on this platform (or it broke mid
                # run): degrade to serial, reusing whatever artifacts
                # the pool managed to land before giving up.
                remaining: list[IngestJob] = []
                for job in to_run:
                    if store.has(job.key):
                        outcomes.append(
                            _cached_outcome(job, store, manifest, progress)
                        )
                    else:
                        remaining.append(job)
                outcomes.extend(
                    _run_serial(remaining, store, manifest, policy, progress)
                )
        else:
            outcomes.extend(_run_serial(to_run, store, manifest, policy, progress))

    failures = [o for o in outcomes if not o.ok]
    if failures and raise_on_failure:
        detail = "; ".join(f"{o.title}: {o.error}" for o in failures)
        raise IngestError(
            f"{len(failures)}/{len(jobs)} ingest jobs failed — {detail}"
        )
    return outcomes
