"""Published comparison methods reimplemented for Figs. 12-13."""

from repro.baselines.lin_grouping import coherence_signal, lin_detect_scenes
from repro.baselines.stg import (
    build_transition_graph,
    stg_detect_scenes,
    story_units_from_graph,
    time_constrained_clusters,
)
from repro.baselines.rui_toc import (
    BaselineScenes,
    rui_detect_scenes,
    rui_group_shots,
)
from repro.baselines.visual_clustering import (
    visual_cluster_shots,
    visual_clustering_scenes,
)

__all__ = [
    "BaselineScenes",
    "coherence_signal",
    "lin_detect_scenes",
    "rui_detect_scenes",
    "rui_group_shots",
    "stg_detect_scenes",
    "story_units_from_graph",
    "build_transition_graph",
    "time_constrained_clusters",
    "visual_cluster_shots",
    "visual_clustering_scenes",
]
