"""Yeung & Yeo's Scene Transition Graph segmentation [15].

The paper discusses this method as prior work: "a time-constrained shot
clustering strategy is proposed to cluster temporally adjacent shots
into clusters, and a Scene Transition Graph is constructed to detect
the video story unit".  We implement it faithfully as an additional
comparison method (beyond the paper's A/B/C):

1. **Time-constrained clustering** — shots join an existing cluster
   only when visually similar *and* within a temporal window of one of
   its members.
2. **Scene Transition Graph** — a directed graph with one node per
   cluster and an edge ``u -> v`` whenever some shot of ``u`` is
   immediately followed by a shot of ``v``.
3. **Story units** — the *cut edges* of the underlying undirected graph
   separate story units: each remaining strongly-connected cluster of
   back-and-forth transitions (a dialog's A<->B pattern) stays one
   scene, while one-way transitions between unrelated clusters mark
   scene boundaries.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.baselines.rui_toc import BaselineScenes
from repro.core.features import Shot
from repro.core.kernels import FeatureMatrix, banded_stsim, stsim_to_many
from repro.core.similarity import SimilarityWeights
from repro.core.threshold import entropy_threshold
from repro.errors import MiningError

#: Maximum temporal distance (seconds) for time-constrained clustering.
DEFAULT_TIME_WINDOW = 40.0


def time_constrained_clusters(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    similarity_threshold: float | None = None,
    time_window: float = DEFAULT_TIME_WINDOW,
) -> list[list[Shot]]:
    """Cluster shots under visual similarity plus a temporal constraint.

    The threshold pool (pairs up to four positions apart) comes from
    banded kernel passes; each shot is scored against the last (up to)
    four members of every time-admissible cluster in one vectorized
    call.
    """
    if not shots:
        raise MiningError("no shots to cluster")
    fm = FeatureMatrix.from_shots(shots)
    if similarity_threshold is None:
        pooled = np.concatenate(
            [banded_stsim(fm, offset, weights) for offset in range(1, 5)]
        )
        similarity_threshold = entropy_threshold(pooled) if pooled.size else 0.5

    index_of = {id(shot): i for i, shot in enumerate(shots)}
    clusters: list[list[Shot]] = []
    for shot in shots:
        # Time-admissible clusters and their last <= 4 members.
        admissible: list[int] = []
        tails: list[list[int]] = []
        for index, cluster in enumerate(clusters):
            gap = (shot.start - cluster[-1].stop) / shot.fps
            if gap > time_window:
                continue  # time constraint
            admissible.append(index)
            tails.append([index_of[id(member)] for member in cluster[-4:]])
        best_index = None
        if admissible:
            flat = [i for tail in tails for i in tail]
            sims = stsim_to_many(shot.histogram, shot.texture, fm.take(flat), weights)
            # The scalar loop updated on ">=", so among equal-best
            # clusters the *last* admissible one wins.
            best_score = similarity_threshold
            position = 0
            for index, tail in zip(admissible, tails):
                score = sims[position : position + len(tail)].max()
                position += len(tail)
                if score >= best_score:
                    best_score = score
                    best_index = index
        if best_index is None:
            clusters.append([shot])
        else:
            clusters[best_index].append(shot)
    return clusters


def build_transition_graph(
    shots: list[Shot], clusters: list[list[Shot]]
) -> nx.DiGraph:
    """The STG: cluster nodes, edges for consecutive-shot transitions."""
    cluster_of: dict[int, int] = {}
    for index, cluster in enumerate(clusters):
        for shot in cluster:
            cluster_of[shot.shot_id] = index
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(clusters)))
    ordered = sorted(shots, key=lambda shot: shot.shot_id)
    for a, b in zip(ordered, ordered[1:]):
        u, v = cluster_of[a.shot_id], cluster_of[b.shot_id]
        if u != v:
            if graph.has_edge(u, v):
                graph[u][v]["weight"] += 1
            else:
                graph.add_edge(u, v, weight=1)
    return graph


def story_units_from_graph(graph: nx.DiGraph) -> list[set[int]]:
    """Partition the STG into story units by removing cut edges.

    A *cut edge* is a bridge of the undirected projection whose
    transitions run in **one direction only** — a one-way hand-off
    between otherwise unconnected parts of the video, i.e. the
    story-unit boundary of [15].  Back-and-forth structures (a dialog's
    A <-> B transitions) are not one-way, so they survive and the
    dialog stays one unit.
    """
    undirected = nx.Graph()
    undirected.add_nodes_from(graph.nodes)
    undirected.add_edges_from(graph.edges)
    bridges = set(nx.bridges(undirected)) if undirected.number_of_edges() else set()
    cut_edges = [
        (u, v)
        for u, v in bridges
        if not (graph.has_edge(u, v) and graph.has_edge(v, u))
    ]
    pruned = undirected.copy()
    pruned.remove_edges_from(cut_edges)
    return [set(component) for component in nx.connected_components(pruned)]


def stg_detect_scenes(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    similarity_threshold: float | None = None,
    time_window: float = DEFAULT_TIME_WINDOW,
) -> BaselineScenes:
    """Full STG pipeline: cluster, build graph, cut into story units.

    Story units are mapped back to *temporally contiguous* scenes: the
    shot sequence splits wherever consecutive shots belong to different
    story units.
    """
    clusters = time_constrained_clusters(
        shots, weights, similarity_threshold, time_window
    )
    graph = build_transition_graph(shots, clusters)
    units = story_units_from_graph(graph)

    unit_of_cluster: dict[int, int] = {}
    for unit_index, unit in enumerate(units):
        for cluster_index in unit:
            unit_of_cluster[cluster_index] = unit_index
    cluster_of: dict[int, int] = {}
    for index, cluster in enumerate(clusters):
        for shot in cluster:
            cluster_of[shot.shot_id] = index

    ordered = sorted(shots, key=lambda shot: shot.shot_id)
    scenes: list[list[int]] = [[ordered[0].shot_id]]
    for a, b in zip(ordered, ordered[1:]):
        unit_a = unit_of_cluster[cluster_of[a.shot_id]]
        unit_b = unit_of_cluster[cluster_of[b.shot_id]]
        if unit_a == unit_b:
            scenes[-1].append(b.shot_id)
        else:
            scenes.append([b.shot_id])
    return BaselineScenes(
        method="STG",
        scenes=scenes,
        groups=[sorted(s.shot_id for s in cluster) for cluster in clusters],
    )
