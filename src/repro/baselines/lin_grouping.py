"""Method C: Lin & Zhang's automatic scene extraction by shot grouping [17].

Their ICPR 2000 method declares scene boundaries from a *coherence*
signal: at each candidate position the best similarity between any shot
shortly before and any shot shortly after is computed, and positions
where coherence dips below a threshold split the video.  With a generous
window the method merges aggressively — the paper's Fig. 12/13 shows it
achieving the best compression and the worst precision, which this
implementation reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.rui_toc import BaselineScenes
from repro.core.features import Shot
from repro.core.kernels import FeatureMatrix, pairwise_stsim
from repro.core.similarity import SimilarityWeights
from repro.core.threshold import entropy_threshold
from repro.errors import MiningError

#: Shots examined on each side of a candidate boundary.
DEFAULT_WINDOW = 3

#: Scale applied to the entropy-picked coherence threshold.  Values
#: below 1 merge aggressively; 0.4 is calibrated on the synthetic corpus
#: to reproduce the paper's Fig. 12/13 behaviour for method C (best
#: compression, worst precision).
DEFAULT_THRESHOLD_SCALE = 0.4


def coherence_signal(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    window: int = DEFAULT_WINDOW,
) -> np.ndarray:
    """Coherence across each boundary ``i`` (between shots i-1 and i).

    ``coherence[i]`` is the best similarity between any shot in
    ``[i - window, i)`` and any shot in ``[i, i + window)``.

    All pairwise similarities come from one chunked kernel call; each
    boundary then takes the max of its window block.
    """
    if len(shots) < 2:
        return np.zeros(0)
    matrix = pairwise_stsim(FeatureMatrix.from_shots(shots), weights)
    values = np.zeros(len(shots) - 1)
    for i in range(1, len(shots)):
        block = matrix[max(i - window, 0) : i, i : i + window]
        values[i - 1] = block.max()
    return values


def lin_detect_scenes(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    window: int = DEFAULT_WINDOW,
    threshold: float | None = None,
    threshold_scale: float = DEFAULT_THRESHOLD_SCALE,
) -> BaselineScenes:
    """Full Method C: split where the coherence signal dips.

    ``threshold`` defaults to a scaled entropy pick over the coherence
    pool; the scale < 1 reproduces the method's aggressive merging
    (fewer, longer scenes).
    """
    if not shots:
        raise MiningError("no shots to segment")
    if len(shots) == 1:
        return BaselineScenes(method="C", scenes=[[shots[0].shot_id]])

    coherence = coherence_signal(shots, weights, window)
    if threshold is None:
        threshold = float(entropy_threshold(coherence) * threshold_scale)

    scenes: list[list[Shot]] = [[shots[0]]]
    for i in range(1, len(shots)):
        if coherence[i - 1] < threshold:
            scenes.append([shots[i]])
        else:
            scenes[-1].append(shots[i])
    return BaselineScenes(
        method="C",
        scenes=[[shot.shot_id for shot in scene] for scene in scenes],
    )
