"""Spatial visual clustering in the style of Zhong et al. [12, 13].

The oldest organisation strategy the paper discusses: cluster shots by
visual similarity alone, ignoring time.  Temporal context is lost —
shots of the same set shot hours apart land in one cluster — which is
exactly why the paper argues for time-aware grouping.  Kept here as an
additional point of comparison and for the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.rui_toc import BaselineScenes
from repro.core.features import Shot
from repro.core.kernels import FeatureMatrix, banded_stsim, stsim_to_many
from repro.core.similarity import SimilarityWeights
from repro.core.threshold import entropy_threshold
from repro.errors import MiningError


def visual_cluster_shots(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    threshold: float | None = None,
) -> list[list[Shot]]:
    """Greedy leader clustering on visual similarity only.

    The threshold pool (pairs up to five positions apart) comes from
    banded kernel passes; each shot is then scored against every
    current leader in one vectorized call.
    """
    if not shots:
        raise MiningError("no shots to cluster")
    fm = FeatureMatrix.from_shots(shots)
    if threshold is None:
        pooled = np.concatenate(
            [banded_stsim(fm, offset, weights) for offset in range(1, 6)]
        )
        threshold = entropy_threshold(pooled) if pooled.size else 0.5

    leader_indices: list[int] = []
    clusters: list[list[Shot]] = []
    for index, shot in enumerate(shots):
        if leader_indices:
            scores = stsim_to_many(
                shot.histogram, shot.texture, fm.take(leader_indices), weights
            )
            # The scalar loop took the max over (score, index) tuples,
            # so ties go to the *later* leader.
            best_index = len(scores) - 1 - int(np.argmax(scores[::-1]))
            if scores[best_index] >= threshold:
                clusters[best_index].append(shot)
                continue
        leader_indices.append(index)
        clusters.append([shot])
    return clusters


def visual_clustering_scenes(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    threshold: float | None = None,
) -> BaselineScenes:
    """Treat each visual cluster as one 'scene' (temporally unordered)."""
    clusters = visual_cluster_shots(shots, weights, threshold)
    return BaselineScenes(
        method="visual",
        scenes=[sorted(shot.shot_id for shot in cluster) for cluster in clusters],
    )
