"""Spatial visual clustering in the style of Zhong et al. [12, 13].

The oldest organisation strategy the paper discusses: cluster shots by
visual similarity alone, ignoring time.  Temporal context is lost —
shots of the same set shot hours apart land in one cluster — which is
exactly why the paper argues for time-aware grouping.  Kept here as an
additional point of comparison and for the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.rui_toc import BaselineScenes
from repro.core.features import Shot
from repro.core.similarity import SimilarityWeights, shot_similarity
from repro.core.threshold import entropy_threshold
from repro.errors import MiningError


def visual_cluster_shots(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    threshold: float | None = None,
) -> list[list[Shot]]:
    """Greedy leader clustering on visual similarity only."""
    if not shots:
        raise MiningError("no shots to cluster")
    if threshold is None:
        pool = [
            shot_similarity(shots[i], shots[j], weights)
            for i in range(len(shots))
            for j in range(i + 1, min(i + 6, len(shots)))
        ]
        threshold = entropy_threshold(np.array(pool)) if pool else 0.5

    leaders: list[Shot] = []
    clusters: list[list[Shot]] = []
    for shot in shots:
        scores = [
            (shot_similarity(shot, leader, weights), index)
            for index, leader in enumerate(leaders)
        ]
        if scores:
            best_score, best_index = max(scores)
            if best_score >= threshold:
                clusters[best_index].append(shot)
                continue
        leaders.append(shot)
        clusters.append([shot])
    return clusters


def visual_clustering_scenes(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    threshold: float | None = None,
) -> BaselineScenes:
    """Treat each visual cluster as one 'scene' (temporally unordered)."""
    clusters = visual_cluster_shots(shots, weights, threshold)
    return BaselineScenes(
        method="visual",
        scenes=[sorted(shot.shot_id for shot in cluster) for cluster in clusters],
    )
