"""Method B: Rui, Huang & Mehrotra's table-of-content construction [14].

Their pipeline (ACM Multimedia Systems 1999) merges visually similar
shots into groups with a *time-adaptive* similarity — similarity decays
with temporal distance, so only recent groups attract new shots — and
then builds scenes by merging groups whose attenuated similarity stays
above a threshold.

We reproduce that structure: a single left-to-right pass assigns each
shot to the best *open* group (or opens a new one), then adjacent
groups merge into scenes by group-to-group similarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import Shot
from repro.core.kernels import (
    FeatureMatrix,
    banded_stsim,
    group_stsim,
    stsim_to_many,
)
from repro.core.similarity import SimilarityWeights
from repro.core.threshold import entropy_threshold
from repro.errors import MiningError

#: Temporal attenuation constant (seconds): shots further apart than a
#: few shot lengths stop attracting each other.
DEFAULT_TAU = 24.0

#: Default scene-construction threshold.  Rui et al. treat this as a
#: fixed tuning parameter of the method; 0.05 is calibrated on the
#: synthetic corpus to reproduce the paper's Fig. 12/13 ordering
#: (precision below method A, compression between A and C).
DEFAULT_SCENE_THRESHOLD = 0.05


@dataclass
class BaselineScenes:
    """Output of a baseline detector, in paper-evaluation form.

    ``scenes`` is a list of shot-id lists (temporally ordered); the
    evaluation treats them exactly like Method A's scenes.
    """

    method: str
    scenes: list[list[int]]
    groups: list[list[int]] = field(default_factory=list)

    @property
    def scene_count(self) -> int:
        """Number of detected scenes."""
        return len(self.scenes)


def rui_group_shots(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    group_threshold: float | None = None,
    tau: float = DEFAULT_TAU,
) -> list[list[Shot]]:
    """Time-adaptive grouping pass.

    ``group_threshold`` defaults to the entropy pick over adjacent-shot
    similarities, mirroring how the original calibrates per video.

    Every open group exposes its last (up to) three shots; one
    vectorized kernel call scores the incoming shot against all of
    them, then per-group maxima are attenuated by the temporal gap.
    """
    if not shots:
        raise MiningError("no shots to group")
    fm = FeatureMatrix.from_shots(shots)
    if group_threshold is None:
        pool = banded_stsim(fm, 1, weights)
        group_threshold = entropy_threshold(pool) if pool.size else 0.5

    groups_idx: list[list[int]] = [[0]]
    for index in range(1, len(shots)):
        shot = shots[index]
        tails = [group[-3:] for group in groups_idx]
        flat = [i for tail in tails for i in tail]
        sims = stsim_to_many(shot.histogram, shot.texture, fm.take(flat), weights)
        scores = np.empty(len(groups_idx))
        position = 0
        for g, (group, tail) in enumerate(zip(groups_idx, tails)):
            best = sims[position : position + len(tail)].max()
            position += len(tail)
            last = shots[group[-1]]
            gap = max(shot.start - last.stop, 0) / shot.fps
            scores[g] = best * float(np.exp(-gap / tau))
        # The scalar loop took the max over (score, index) tuples, so
        # ties go to the *later* group.
        best_index = len(scores) - 1 - int(np.argmax(scores[::-1]))
        if scores[best_index] >= group_threshold:
            groups_idx[best_index].append(index)
        else:
            groups_idx.append([index])
    return [[shots[i] for i in group] for group in groups_idx]


def rui_detect_scenes(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    group_threshold: float | None = None,
    scene_threshold: float | None = None,
    tau: float = DEFAULT_TAU,
) -> BaselineScenes:
    """Full Method B: grouping pass then scene construction.

    Scene construction sorts groups by their first shot and merges a
    group into the current scene when its similarity to the scene's
    groups exceeds the scene threshold.
    """
    groups = rui_group_shots(shots, weights, group_threshold, tau)
    ordered = sorted(groups, key=lambda group: group[0].shot_id)
    if scene_threshold is None:
        scene_threshold = DEFAULT_SCENE_THRESHOLD

    scenes: list[list[Shot]] = [list(ordered[0])]
    for group in ordered[1:]:
        value = group_stsim(
            FeatureMatrix.from_shots(scenes[-1]),
            FeatureMatrix.from_shots(group),
            weights,
        )
        if value >= scene_threshold:
            scenes[-1].extend(group)
        else:
            scenes.append(list(group))
    return BaselineScenes(
        method="B",
        scenes=[sorted(shot.shot_id for shot in scene) for scene in scenes],
        groups=[sorted(shot.shot_id for shot in group) for group in ordered],
    )
