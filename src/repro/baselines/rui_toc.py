"""Method B: Rui, Huang & Mehrotra's table-of-content construction [14].

Their pipeline (ACM Multimedia Systems 1999) merges visually similar
shots into groups with a *time-adaptive* similarity — similarity decays
with temporal distance, so only recent groups attract new shots — and
then builds scenes by merging groups whose attenuated similarity stays
above a threshold.

We reproduce that structure: a single left-to-right pass assigns each
shot to the best *open* group (or opens a new one), then adjacent
groups merge into scenes by group-to-group similarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import Shot
from repro.core.similarity import SimilarityWeights, group_similarity, shot_similarity
from repro.core.threshold import entropy_threshold
from repro.errors import MiningError

#: Temporal attenuation constant (seconds): shots further apart than a
#: few shot lengths stop attracting each other.
DEFAULT_TAU = 24.0

#: Default scene-construction threshold.  Rui et al. treat this as a
#: fixed tuning parameter of the method; 0.05 is calibrated on the
#: synthetic corpus to reproduce the paper's Fig. 12/13 ordering
#: (precision below method A, compression between A and C).
DEFAULT_SCENE_THRESHOLD = 0.05


@dataclass
class BaselineScenes:
    """Output of a baseline detector, in paper-evaluation form.

    ``scenes`` is a list of shot-id lists (temporally ordered); the
    evaluation treats them exactly like Method A's scenes.
    """

    method: str
    scenes: list[list[int]]
    groups: list[list[int]] = field(default_factory=list)

    @property
    def scene_count(self) -> int:
        """Number of detected scenes."""
        return len(self.scenes)


def _time_adaptive_similarity(
    shot: Shot, group: list[Shot], weights: SimilarityWeights, tau: float
) -> float:
    """Similarity to a group, attenuated by distance to its last shot."""
    last = group[-1]
    gap = max(shot.start - last.stop, 0) / shot.fps
    attenuation = float(np.exp(-gap / tau))
    best = max(shot_similarity(shot, member, weights) for member in group[-3:])
    return best * attenuation


def rui_group_shots(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    group_threshold: float | None = None,
    tau: float = DEFAULT_TAU,
) -> list[list[Shot]]:
    """Time-adaptive grouping pass.

    ``group_threshold`` defaults to the entropy pick over adjacent-shot
    similarities, mirroring how the original calibrates per video.
    """
    if not shots:
        raise MiningError("no shots to group")
    if group_threshold is None:
        pool = [
            shot_similarity(shots[i], shots[i + 1], weights)
            for i in range(len(shots) - 1)
        ]
        group_threshold = entropy_threshold(np.array(pool)) if pool else 0.5

    groups: list[list[Shot]] = [[shots[0]]]
    for shot in shots[1:]:
        scored = [
            (_time_adaptive_similarity(shot, group, weights, tau), index)
            for index, group in enumerate(groups)
        ]
        best_score, best_index = max(scored)
        if best_score >= group_threshold:
            groups[best_index].append(shot)
        else:
            groups.append([shot])
    return groups


def rui_detect_scenes(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    group_threshold: float | None = None,
    scene_threshold: float | None = None,
    tau: float = DEFAULT_TAU,
) -> BaselineScenes:
    """Full Method B: grouping pass then scene construction.

    Scene construction sorts groups by their first shot and merges a
    group into the current scene when its similarity to the scene's
    groups exceeds the scene threshold.
    """
    groups = rui_group_shots(shots, weights, group_threshold, tau)
    ordered = sorted(groups, key=lambda group: group[0].shot_id)
    if scene_threshold is None:
        scene_threshold = DEFAULT_SCENE_THRESHOLD

    scenes: list[list[Shot]] = [list(ordered[0])]
    for group in ordered[1:]:
        attach = group_similarity(scenes[-1], group, weights) >= scene_threshold
        if attach:
            scenes[-1].extend(group)
        else:
            scenes.append(list(group))
    return BaselineScenes(
        method="B",
        scenes=[sorted(shot.shot_id for shot in scene) for scene in scenes],
        groups=[sorted(shot.shot_id for shot in group) for group in ordered],
    )
