"""Concurrent query-serving runtime over the hierarchical database.

The online counterpart to :mod:`repro.ingest` (Sec. 6's "efficient
access" requirement at many-user scale):

* :mod:`repro.serving.snapshot` — immutable, versioned read snapshots
  with atomic generation swap and an ingest hook;
* :mod:`repro.serving.cache` — bounded LRU result cache keyed on query
  digest, principal scope and generation (access resolved *before*
  lookup, never after);
* :mod:`repro.serving.server` — worker pool, bounded admission queue,
  per-query deadlines, typed overload rejection;
* :mod:`repro.serving.metrics` — counters and latency histograms with
  a plain-text dump;
* :mod:`repro.serving.loadgen` — closed-loop multi-threaded load
  generator for benchmarks and the ``classminer loadtest`` command.
"""

from repro.serving.cache import (
    ANONYMOUS_SCOPE,
    CacheKey,
    CacheStats,
    ResultCache,
    feature_digest,
    request_digest,
    scope_token,
)
from repro.serving.loadgen import (
    DEFAULT_MIX,
    LoadgenConfig,
    LoadReport,
    build_query_pool,
    run_load,
)
from repro.serving.metrics import (
    QUERY_KINDS,
    LatencyHistogram,
    ServingMetrics,
    format_seconds,
)
from repro.serving.server import (
    QueryRequest,
    QueryServer,
    ServerConfig,
    ServingResult,
)
from repro.serving.snapshot import (
    Snapshot,
    SnapshotManager,
    build_snapshot,
)

__all__ = [
    "ANONYMOUS_SCOPE",
    "CacheKey",
    "CacheStats",
    "DEFAULT_MIX",
    "LatencyHistogram",
    "LoadReport",
    "LoadgenConfig",
    "QUERY_KINDS",
    "QueryRequest",
    "QueryServer",
    "ResultCache",
    "ServerConfig",
    "ServingMetrics",
    "ServingResult",
    "Snapshot",
    "SnapshotManager",
    "build_query_pool",
    "build_snapshot",
    "feature_digest",
    "request_digest",
    "format_seconds",
    "run_load",
    "scope_token",
]
