"""Immutable, versioned read snapshots of the database indexes.

A long-running :class:`~repro.serving.server.QueryServer` must keep
answering queries while ``classminer ingest`` lands new videos.  The
snapshot layer makes that safe without read locks:

* :class:`Snapshot` freezes one *generation* of the hierarchical index,
  the flat baseline, the derived scene index and the registration
  records.  Everything it holds is either immutable or privately
  copied, so concurrent worker threads can search it freely while the
  live :class:`~repro.database.catalog.VideoDatabase` mutates.
* :class:`SnapshotManager` owns the current snapshot and swaps it
  atomically (a single attribute store) when :meth:`~SnapshotManager.refresh`
  builds the next generation.  Readers never block: they either see the
  old generation or the new one, never a half-built index.
* :meth:`SnapshotManager.ingest_hook` plugs into
  :func:`repro.ingest.runner.register_corpus_hook`, so an ingest run
  that rebuilds the corpus automatically installs the new database and
  bumps the generation.

Generations are strictly increasing integers; the result cache keys on
them, which is what makes stale reads after an ingest impossible.
"""

from __future__ import annotations

import logging
import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.database.access import AccessController, User
from repro.database.catalog import RegisteredVideo, VideoDatabase
from repro.database.events_query import EventHit, query_event_records
from repro.database.flat import FlatIndex
from repro.database.index import IndexNode
from repro.database.query import QueryResult, search_hierarchical
from repro.database.scene_search import RankedScene, SceneEntry, SceneIndex
from repro.errors import CircuitOpenError, ReproError, ServingError
from repro.obs.registry import get_registry
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import fault_point
from repro.types import EventKind

_LOGGER = logging.getLogger(__name__)


@dataclass(frozen=True)
class Snapshot:
    """One frozen, queryable generation of the database.

    Attributes
    ----------
    generation:
        Strictly increasing version number; part of every cache key.
    index_root:
        The hierarchical index tree of this generation.  The catalog
        never mutates a built tree in place (registration invalidates
        and rebuilds), so holding the root pins the whole structure.
    flat:
        Private copy of the Eq. (24) linear-scan baseline.
    scenes:
        Scene-centroid index derived from the shot entries.
    records:
        Registration records by title (for event queries).
    controller:
        The access controller guarding this snapshot's searches.
    """

    generation: int
    index_root: IndexNode
    flat: FlatIndex
    scenes: SceneIndex
    records: dict[str, RegisteredVideo]
    controller: AccessController
    shot_count: int = 0

    @property
    def videos(self) -> tuple[str, ...]:
        """Registered titles, sorted."""
        return tuple(sorted(self.records))

    @property
    def degraded_videos(self) -> tuple[str, ...]:
        """Titles whose mining fell back somewhere (sorted)."""
        return tuple(
            sorted(
                title
                for title, record in self.records.items()
                if record.degraded_stages
            )
        )

    def permitted_leaves(self, user: User) -> frozenset[str]:
        """Leaf concepts the user may enter (audited on the controller)."""
        return frozenset(self.controller.permitted_leaves(user))

    def search(
        self,
        features: np.ndarray,
        user: User | None = None,
        k: int = 10,
        allowed_leaves: frozenset[str] | set[str] | None = None,
        nprobe: int | None = None,
        rerank_k: int | None = None,
    ) -> QueryResult:
        """Hierarchical shot search against this generation.

        ``allowed_leaves`` short-circuits the access computation when the
        caller (the server) already resolved the user's permitted set —
        passing both is fine, the explicit set wins.  ``nprobe`` /
        ``rerank_k`` enable the approximate leaf tier (see
        :func:`~repro.database.query.search_hierarchical`); None keeps
        every leaf scan exact.
        """
        if user is not None and allowed_leaves is None:
            allowed_leaves = self.permitted_leaves(user)
        allowed = set(allowed_leaves) if allowed_leaves is not None else None
        return search_hierarchical(
            self.index_root,
            features,
            k=k,
            allowed_leaves=allowed,
            nprobe=nprobe,
            rerank_k=rerank_k,
        )

    def search_flat(self, features: np.ndarray, k: int = 10) -> QueryResult:
        """Linear-scan baseline search (no access filter — see server)."""
        return self.flat.search(features, k=k)

    def search_scenes(
        self,
        features: np.ndarray,
        k: int = 5,
        event: EventKind | None = None,
    ) -> list[RankedScene]:
        """Scene-centroid search against this generation."""
        return self.scenes.search(features, k=k, event=event)

    def query_events(
        self,
        kind: EventKind,
        user: User | None = None,
        video_title: str | None = None,
    ) -> list[EventHit]:
        """Event query over this generation's registration records."""
        return query_event_records(
            self.records, self.controller, kind, user=user, video_title=video_title
        )

    def event_of(self, video_title: str, scene_id: int) -> str:
        """Mined event value of a registered scene (``unknown`` fallback)."""
        record = self.records.get(video_title)
        if record is None:
            return EventKind.UNKNOWN.value
        return record.events.get(scene_id, EventKind.UNKNOWN.value)


def _derive_scene_index(database: VideoDatabase) -> SceneIndex:
    """Rebuild scene centroids from the catalog's shot entries.

    The catalog indexes shots, not scenes; grouping its flat entries by
    ``(title, scene_id)`` recovers each kept scene's member shots, and
    the registration record supplies the mined event.  Shots filed under
    an eliminated scene (``scene_id == -1``) carry no scene identity and
    are skipped.
    """
    groups: dict[tuple[str, int], list[np.ndarray]] = {}
    for entry in database.flat_index.entries:
        if entry.scene_id < 0:
            continue
        groups.setdefault((entry.video_title, entry.scene_id), []).append(
            entry.features
        )
    records = database.videos
    index = SceneIndex()
    for (title, scene_id), features in sorted(groups.items()):
        record = records.get(title)
        value = record.events.get(scene_id, EventKind.UNKNOWN.value) if record else (
            EventKind.UNKNOWN.value
        )
        index.insert(
            SceneEntry(
                video_title=title,
                scene_id=scene_id,
                event=EventKind(value),
                shot_count=len(features),
                centroid=np.stack(features).mean(axis=0),
            )
        )
    return index


def _warm_feature_blocks(root: IndexNode) -> None:
    """Pre-build every cached feature block of an index tree.

    Walks the tree once: non-leaf nodes stack their children's routing
    centres (:meth:`~repro.database.index.IndexNode.center_block`),
    leaves stack each hash bucket plus the all-entries fallback.  The
    serving hot path then never re-stacks features — every batched
    kernel call hits a per-generation matrix built here.
    """
    if root.is_leaf:
        root.leaf.warm()  # type: ignore[union-attr]
        return
    root.center_block()
    for child in root.children:
        _warm_feature_blocks(child)


def warm_ann_indexes(snapshot: Snapshot) -> int:
    """Resolve (load or build) every leaf's ANN index ahead of queries.

    Called by servers configured with a default ``nprobe`` so the first
    ANN query after a generation swap pays no loading cost.  A leaf
    whose persisted state cannot load right now is skipped — the query
    path degrades (and retries) per leaf.  Returns the number of leaves
    with a ready index.
    """
    from repro.ann.index import resolve_ann

    ready = 0
    stack = [snapshot.index_root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            index, _degraded = resolve_ann(node)
            ready += index is not None
        else:
            stack.extend(node.children)
    return ready


def build_snapshot(database: VideoDatabase, generation: int) -> Snapshot:
    """Freeze the database's current state as one generation.

    Raises :class:`~repro.errors.ServingError` for an empty database —
    a server has nothing to serve.  All kernel feature blocks (index
    centre stacks, leaf bucket stacks, flat and scene matrices) are
    precomputed here, off the query path.
    """
    if not database.videos:
        raise ServingError("cannot snapshot an empty database")
    if getattr(database, "out_of_core", False):
        # An out-of-core database (repro.storage) is already immutable
        # from the reader's side: its flat scan, lazy leaves and stored
        # scene centroids serve straight from memory-mapped blocks, and
        # copying or pre-warming them would defeat the whole point of
        # not materialising the corpus.
        return Snapshot(
            generation=generation,
            index_root=database.index_root,
            flat=database.flat_index,
            scenes=database.scene_index,
            records=database.videos,
            controller=database.controller,
            shot_count=database.shot_count,
        )
    flat = FlatIndex(database.flat_index.entries)
    flat.warm()
    scenes = _derive_scene_index(database)
    scenes.warm()
    _warm_feature_blocks(database.index_root)
    return Snapshot(
        generation=generation,
        index_root=database.index_root,
        flat=flat,
        scenes=scenes,
        records=database.videos,
        controller=database.controller,
        shot_count=database.shot_count,
    )


def _close_quietly(database: VideoDatabase) -> None:
    """Close a database's storage handles if it has any; never raise."""
    close = getattr(database, "close", None)
    if close is None:
        return
    try:
        close()
    except Exception:  # pragma: no cover - best-effort cleanup
        _LOGGER.warning("retired database close failed", exc_info=True)


#: Callback invoked with the freshly installed snapshot after a swap.
SnapshotListener = Callable[[Snapshot], None]


@dataclass
class _ManagerState:
    """Mutable internals of a :class:`SnapshotManager` (lock-guarded)."""

    database: VideoDatabase
    generation: int = 0
    snapshot: Snapshot | None = None
    listeners: list[SnapshotListener] = field(default_factory=list)
    last_error: str | None = None


class SnapshotManager:
    """Owns the current snapshot; builds and swaps new generations.

    Reads (:meth:`current`) are lock-free — a snapshot reference is a
    single atomic attribute load.  Writes (:meth:`refresh`,
    :meth:`install`) serialise on an internal lock, build the new
    generation off to the side, then publish it with one store.

    Self-healing: a failed rebuild never disturbs the published
    snapshot — readers keep answering from the last good generation
    while :attr:`degraded` turns True and :attr:`last_error` names the
    failure.  Rebuild attempts run through a
    :class:`~repro.resilience.breaker.CircuitBreaker`, so a dependency
    that keeps failing stops being hammered
    (:class:`~repro.errors.CircuitOpenError`) until its cooldown lets a
    probe through.

    When ``reopen`` is given, :meth:`refresh` does not rebuild from the
    held database object: it calls ``reopen()`` for a *freshly opened*
    one (for SQL catalogs, new connection + new mmap handles) and swaps
    to that.  A catalog rewritten on disk (``classminer migrate``, an
    external ingest) is therefore actually picked up — reusing stale
    mmap views of superseded feature blocks is exactly the headroom
    ROADMAP item 1 left open.  The immediately superseded database is
    kept open until the *next* successful swap (in-flight queries may
    still hold its lazy loaders); anything older is closed.
    """

    def __init__(
        self,
        database: VideoDatabase,
        breaker: CircuitBreaker | None = None,
        reopen: Callable[[], VideoDatabase] | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._state = _ManagerState(database=database)
        self._reopen = reopen
        self._retired: list[VideoDatabase] = []
        self._breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(name="snapshot-rebuild", registry=get_registry())
        )

    @property
    def database(self) -> VideoDatabase:
        """The live database backing new generations."""
        return self._state.database

    @property
    def breaker(self) -> CircuitBreaker:
        """The breaker guarding rebuild attempts."""
        return self._breaker

    @property
    def last_error(self) -> str | None:
        """Failure text of the most recent rebuild attempt (None when good)."""
        return self._state.last_error

    @property
    def degraded(self) -> bool:
        """True while answers come from a stale (last good) generation."""
        return self._state.last_error is not None

    @property
    def generation(self) -> int:
        """Generation of the current snapshot (0 before the first build)."""
        snapshot = self._state.snapshot
        return snapshot.generation if snapshot is not None else 0

    def subscribe(self, listener: SnapshotListener) -> SnapshotListener:
        """Call ``listener`` with every newly installed snapshot."""
        with self._lock:
            self._state.listeners.append(listener)
        return listener

    def current(self) -> Snapshot:
        """The current snapshot, building generation 1 on first use."""
        snapshot = self._state.snapshot
        if snapshot is not None:
            return snapshot
        return self.refresh()

    def refresh(self) -> Snapshot:
        """Build the next generation from the live database and swap it in.

        With a ``reopen`` callable configured, the generation is built
        against freshly opened handles instead; the superseded database
        is retired (see :meth:`_retire`).  A failed build closes the
        fresh handles and leaves everything as it was.
        """
        with self._lock:
            if self._reopen is None:
                return self._swap(self._state.database)
            fresh = self._reopen()
            previous = self._state.database
            try:
                snapshot = self._swap(fresh)
            except BaseException:
                if fresh is not previous:
                    _close_quietly(fresh)
                raise
            self._state.database = fresh
            if fresh is not previous:
                self._retire(previous)
            return snapshot

    def install(self, database: VideoDatabase) -> Snapshot:
        """Replace the backing database (ingest rebuilds one) and refresh."""
        with self._lock:
            previous = self._state.database
            self._state.database = database
            snapshot = self._swap(database)
            # Only after a successful swap: a failed one leaves readers
            # on the previous generation, whose handles must stay open.
            if self._reopen is not None and database is not previous:
                self._retire(previous)
            return snapshot

    def _retire(self, database: VideoDatabase) -> None:
        """Queue a superseded database's handles for closing.

        The most recently retired database stays open — worker threads
        racing the swap may still resolve lazy loaders against it —
        and is closed on the following retirement, by which point no
        reader can still reach its snapshot.
        """
        self._retired.append(database)
        while len(self._retired) > 1:
            _close_quietly(self._retired.pop(0))

    def _swap(self, database: VideoDatabase) -> Snapshot:
        if not self._breaker.allow():
            raise CircuitOpenError(
                f"snapshot rebuild suppressed — {self._breaker.describe()}"
            )
        try:
            fault_point("serve.rebuild")
            snapshot = build_snapshot(database, self._state.generation + 1)
        except Exception as exc:
            # The published snapshot is untouched: readers keep serving
            # the last good generation while we report degraded.
            self._breaker.record_failure()
            self._state.last_error = f"{type(exc).__name__}: {exc}"
            get_registry().counter(
                "serving_rebuild_failures_total",
                "Snapshot rebuild attempts that failed.",
            ).inc()
            _LOGGER.warning("snapshot rebuild failed: %s", exc)
            if isinstance(exc, ReproError):
                raise
            raise ServingError(f"snapshot rebuild failed: {exc}") from exc
        self._breaker.record_success()
        self._state.last_error = None
        self._state.generation = snapshot.generation
        self._state.snapshot = snapshot  # the atomic publish
        listeners = list(self._state.listeners)
        for listener in listeners:
            listener(snapshot)
        return snapshot

    def ingest_hook(self) -> Callable[[Path, VideoDatabase], None]:
        """A :data:`repro.ingest.runner.CorpusHook` bound to this manager.

        Register it with
        :func:`repro.ingest.runner.register_corpus_hook` and every
        ingest run that rebuilds the corpus installs the new database
        here, bumping the generation (and, through listeners, letting
        the server invalidate its result cache).  A failing install must
        not take the *ingest* down with it: the error is swallowed here
        (recorded on :attr:`last_error` and the metrics registry), the
        server keeps answering from its last good snapshot.
        """

        def hook(_db_dir: Path, database: VideoDatabase) -> None:
            try:
                self.install(database)
            except ReproError as exc:
                get_registry().counter(
                    "serving_ingest_hook_failures_total",
                    "Corpus-hook snapshot installs that failed.",
                ).inc()
                _LOGGER.warning(
                    "ingest hook could not install new snapshot: %s", exc
                )

        return hook
