"""Serving metrics over the shared observability registry.

:class:`ServingMetrics` keeps its historical surface — ``record_query``
/ ``counter`` / ``snapshot`` / ``render`` — but every value now lives
in a :class:`~repro.obs.registry.MetricsRegistry`: counters in the
``serving_events_total`` family, latencies in
``serving_latency_seconds`` (overall) and
``serving_kind_latency_seconds{kind=…}`` histograms.  Handing the
process-global registry in (``ServingMetrics(registry=obs.get_registry())``,
what ``classminer serve`` does) makes the same numbers available to the
Prometheus/JSON exporters without changing the plain-text dump.

:class:`LatencyHistogram` and :func:`format_seconds` are re-exported
from their new home in :mod:`repro.obs.metrics` for backward
compatibility.
"""

from __future__ import annotations

import time

from repro.obs.metrics import (  # noqa: F401  (compatibility re-exports)
    BUCKET_BOUNDS as _BUCKET_BOUNDS,
    LatencyHistogram,
    format_seconds,
)
from repro.obs.registry import MetricsRegistry

#: Query kinds the serving runtime distinguishes.
QUERY_KINDS = ("shot", "shot_flat", "scene", "event")


class ServingMetrics:
    """Thread-safe counters and histograms for one server's lifetime.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.registry.MetricsRegistry` to report
        into.  Defaults to a private registry so independent servers
        (and tests) never share counts; pass ``repro.obs.get_registry()``
        to publish through the process-wide export surface.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._lock = self._registry.lock
        self._started = time.perf_counter()
        self._counters = self._registry.counter(
            "serving_events_total",
            "Serving runtime event counts, by event name.",
            labelnames=("event",),
        )
        self._latency = self._registry.histogram(
            "serving_latency_seconds",
            "Worker-side query latency, all query kinds.",
        )
        self._by_kind = self._registry.histogram(
            "serving_kind_latency_seconds",
            "Worker-side query latency, per query kind.",
            labelnames=("kind",),
        )

    @property
    def registry(self) -> MetricsRegistry:
        """The registry this server's metrics live in."""
        return self._registry

    def _inc(self, name: str, amount: float = 1.0) -> None:
        self._counters.labels(event=name).inc(amount)

    def record_query(
        self,
        kind: str,
        seconds: float,
        comparisons: int = 0,
        cache_hit: bool = False,
    ) -> None:
        """Account one completed query."""
        with self._lock:
            self._inc("queries_total")
            self._inc(f"queries_{kind}")
            if cache_hit:
                self._inc("cache_hits")
            else:
                self._inc("cache_misses")
                self._inc("executed_queries")
                self._inc("comparisons_total", comparisons)
            self._latency.record(seconds)
            self._by_kind.labels(kind=kind).record(seconds)

    def record_rejection(self) -> None:
        """Account one admission-queue rejection (overload shed)."""
        self._inc("rejected_overload")

    def record_timeout(self) -> None:
        """Account one query that missed its deadline."""
        self._inc("deadline_timeouts")

    def record_error(self) -> None:
        """Account one query that failed with an error."""
        self._inc("errors")

    def record_generation_swap(self) -> None:
        """Account one snapshot generation swap."""
        self._inc("generation_swaps")

    def counter(self, name: str) -> int:
        """One counter's current value (0 when never touched)."""
        return int(self._counters.labels(event=name).value)

    @property
    def uptime_seconds(self) -> float:
        """Monotonic seconds since the metrics were created/reset.

        ``_started`` is read under the registry lock: :meth:`reset`
        rewrites it from another thread, and an unsynchronised read
        could otherwise observe the pre-reset epoch mid-reset.
        """
        with self._lock:
            started = self._started
        return time.perf_counter() - started

    def reset(self) -> None:
        """Zero everything and restart the uptime clock.

        Only this server's families are reset — a shared registry's
        other metrics (ingest, kernels) are left alone.
        """
        with self._lock:
            self._started = time.perf_counter()
            self._counters.reset()
            self._latency.reset()
            self._by_kind.reset()

    def snapshot(self) -> dict[str, float]:
        """Point-in-time flat view: counters plus derived rates."""
        with self._lock:
            view: dict[str, float] = {
                labels[0][1]: child.value
                for (labels, child) in self._counters.samples()
            }
            elapsed = max(time.perf_counter() - self._started, 1e-9)
            queries = self.counter("queries_total")
            lookups = self.counter("cache_hits") + self.counter("cache_misses")
            executed = self.counter("executed_queries")
            view["uptime_seconds"] = elapsed
            view["qps"] = queries / elapsed
            view["cache_hit_rate"] = (
                self.counter("cache_hits") / lookups if lookups else 0.0
            )
            view["comparisons_per_query"] = (
                self.counter("comparisons_total") / executed if executed else 0.0
            )
            view["latency_p50"] = self._latency.quantile(0.50)
            view["latency_p95"] = self._latency.quantile(0.95)
            view["latency_p99"] = self._latency.quantile(0.99)
            view["latency_mean"] = self._latency.mean
            view["latency_max"] = self._latency.max
            return view

    def render(self) -> str:
        """Plain-text metrics dump (the ``classminer serve`` report)."""
        view = self.snapshot()
        lines = [
            "serving metrics",
            f"  uptime           {view['uptime_seconds']:.2f}s",
            f"  queries          {int(view.get('queries_total', 0))}"
            f" ({view['qps']:.1f} qps)",
            f"  cache hit rate   {view['cache_hit_rate'] * 100:.1f}%"
            f" ({int(view.get('cache_hits', 0))} hits /"
            f" {int(view.get('cache_misses', 0))} misses)",
            f"  comparisons/q    {view['comparisons_per_query']:.1f} (executed only)",
            f"  rejected         {int(view.get('rejected_overload', 0))} overload,"
            f" {int(view.get('deadline_timeouts', 0))} deadline,"
            f" {int(view.get('errors', 0))} errors",
            f"  generation swaps {int(view.get('generation_swaps', 0))}",
            "  latency          p50 {p50}  p95 {p95}  p99 {p99}  max {mx}".format(
                p50=format_seconds(view["latency_p50"]),
                p95=format_seconds(view["latency_p95"]),
                p99=format_seconds(view["latency_p99"]),
                mx=format_seconds(view["latency_max"]),
            ),
        ]
        kinds = {
            labels[0][1]: hist for labels, hist in self._by_kind.samples()
        }
        for kind in QUERY_KINDS:
            hist = kinds.get(kind)
            if hist is None or not hist.count:
                continue
            lines.append(
                f"    {kind:<10} n={hist.count:<6} "
                f"p50 {format_seconds(hist.quantile(0.5))}  "
                f"p95 {format_seconds(hist.quantile(0.95))}  "
                f"p99 {format_seconds(hist.quantile(0.99))}"
            )
        return "\n".join(lines)
