"""Serving metrics: counters, latency histograms, plain-text dumps.

Latencies are recorded into fixed geometric buckets (1 µs .. ~67 s,
doubling per bucket), so percentile estimation is O(buckets) with a
bounded memory footprint no matter how many queries flow through — the
usual production trade: a quantile is reported as the upper bound of
the bucket it falls in (≤ 2x its true value), which is plenty to tell
a 50 µs cache hit from a 5 ms descent.  All clocks are
``time.perf_counter()`` (monotonic), never the wall clock.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import Counter

#: Histogram bucket upper bounds in seconds: 1 µs doubling up to ~67 s.
_BUCKET_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2**i for i in range(27))

#: Query kinds the serving runtime distinguishes.
QUERY_KINDS = ("shot", "shot_flat", "scene", "event")


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimates."""

    def __init__(self) -> None:
        self._counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self._total = 0.0
        self._count = 0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation (negative values clamp to zero)."""
        seconds = max(0.0, seconds)
        self._counts[bisect_left(_BUCKET_BOUNDS, seconds)] += 1
        self._total += seconds
        self._count += 1
        self._max = max(self._max, seconds)

    @property
    def count(self) -> int:
        """Observations recorded."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 when empty)."""
        return self._total / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest observation in seconds."""
        return self._max

    def quantile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1].

        Reports the upper bound of the bucket the quantile falls in,
        clamped to the largest observation (the top bucket's bound can
        otherwise overshoot it).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, bucket in enumerate(self._counts):
            cumulative += bucket
            if cumulative >= rank and bucket:
                if index < len(_BUCKET_BOUNDS):
                    return min(_BUCKET_BOUNDS[index], self._max)
                return self._max
        return self._max

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's observations into this one."""
        for index, bucket in enumerate(other._counts):
            self._counts[index] += bucket
        self._total += other._total
        self._count += other._count
        self._max = max(self._max, other._max)


def format_seconds(seconds: float) -> str:
    """Human latency: µs under a millisecond, ms under a second."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


class ServingMetrics:
    """Thread-safe counters and histograms for one server's lifetime."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self._counters: Counter[str] = Counter()
        self._latency = LatencyHistogram()
        self._by_kind: dict[str, LatencyHistogram] = {}

    def record_query(
        self,
        kind: str,
        seconds: float,
        comparisons: int = 0,
        cache_hit: bool = False,
    ) -> None:
        """Account one completed query."""
        with self._lock:
            self._counters["queries_total"] += 1
            self._counters[f"queries_{kind}"] += 1
            if cache_hit:
                self._counters["cache_hits"] += 1
            else:
                self._counters["cache_misses"] += 1
                self._counters["executed_queries"] += 1
                self._counters["comparisons_total"] += comparisons
            self._latency.record(seconds)
            self._by_kind.setdefault(kind, LatencyHistogram()).record(seconds)

    def record_rejection(self) -> None:
        """Account one admission-queue rejection (overload shed)."""
        with self._lock:
            self._counters["rejected_overload"] += 1

    def record_timeout(self) -> None:
        """Account one query that missed its deadline."""
        with self._lock:
            self._counters["deadline_timeouts"] += 1

    def record_error(self) -> None:
        """Account one query that failed with an error."""
        with self._lock:
            self._counters["errors"] += 1

    def record_generation_swap(self) -> None:
        """Account one snapshot generation swap."""
        with self._lock:
            self._counters["generation_swaps"] += 1

    def counter(self, name: str) -> int:
        """One counter's current value (0 when never touched)."""
        with self._lock:
            return self._counters[name]

    @property
    def uptime_seconds(self) -> float:
        """Monotonic seconds since the metrics were created/reset."""
        return time.perf_counter() - self._started

    def reset(self) -> None:
        """Zero everything and restart the uptime clock."""
        with self._lock:
            self._started = time.perf_counter()
            self._counters.clear()
            self._latency = LatencyHistogram()
            self._by_kind.clear()

    def snapshot(self) -> dict[str, float]:
        """Point-in-time flat view: counters plus derived rates."""
        with self._lock:
            view: dict[str, float] = dict(self._counters)
            elapsed = max(time.perf_counter() - self._started, 1e-9)
            queries = self._counters["queries_total"]
            lookups = self._counters["cache_hits"] + self._counters["cache_misses"]
            executed = self._counters["executed_queries"]
            view["uptime_seconds"] = elapsed
            view["qps"] = queries / elapsed
            view["cache_hit_rate"] = (
                self._counters["cache_hits"] / lookups if lookups else 0.0
            )
            view["comparisons_per_query"] = (
                self._counters["comparisons_total"] / executed if executed else 0.0
            )
            view["latency_p50"] = self._latency.quantile(0.50)
            view["latency_p95"] = self._latency.quantile(0.95)
            view["latency_p99"] = self._latency.quantile(0.99)
            view["latency_mean"] = self._latency.mean
            view["latency_max"] = self._latency.max
            return view

    def render(self) -> str:
        """Plain-text metrics dump (the ``classminer serve`` report)."""
        view = self.snapshot()
        with self._lock:
            kinds = {kind: hist for kind, hist in self._by_kind.items()}
        lines = [
            "serving metrics",
            f"  uptime           {view['uptime_seconds']:.2f}s",
            f"  queries          {int(view.get('queries_total', 0))}"
            f" ({view['qps']:.1f} qps)",
            f"  cache hit rate   {view['cache_hit_rate'] * 100:.1f}%"
            f" ({int(view.get('cache_hits', 0))} hits /"
            f" {int(view.get('cache_misses', 0))} misses)",
            f"  comparisons/q    {view['comparisons_per_query']:.1f} (executed only)",
            f"  rejected         {int(view.get('rejected_overload', 0))} overload,"
            f" {int(view.get('deadline_timeouts', 0))} deadline,"
            f" {int(view.get('errors', 0))} errors",
            f"  generation swaps {int(view.get('generation_swaps', 0))}",
            "  latency          p50 {p50}  p95 {p95}  p99 {p99}  max {mx}".format(
                p50=format_seconds(view["latency_p50"]),
                p95=format_seconds(view["latency_p95"]),
                p99=format_seconds(view["latency_p99"]),
                mx=format_seconds(view["latency_max"]),
            ),
        ]
        for kind in QUERY_KINDS:
            hist = kinds.get(kind)
            if hist is None or not hist.count:
                continue
            lines.append(
                f"    {kind:<10} n={hist.count:<6} "
                f"p50 {format_seconds(hist.quantile(0.5))}  "
                f"p95 {format_seconds(hist.quantile(0.95))}  "
                f"p99 {format_seconds(hist.quantile(0.99))}"
            )
        return "\n".join(lines)
