"""Closed-loop multi-threaded load generator for the query server.

Each client thread issues one query at a time (closed loop: think time
zero, next request only after the previous response), drawn from a
deterministic mixed workload of shot, flat-baseline, scene and event
queries sampled from the server's own snapshot.  Rejections
(:class:`~repro.errors.OverloadedError`) and deadline misses
(:class:`~repro.errors.ServingError`) are counted, backed off, and the
loop continues — exactly how a well-behaved caller treats an overloaded
server.

An ``on_result`` callback sees every successful ``(request, result)``
pair; tests use it to assert invariants (no cross-clearance hit, no
stale generation) while the load is live.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.database.access import User
from repro.errors import OverloadedError, ServingError
from repro.serving.metrics import format_seconds
from repro.serving.server import QueryRequest, QueryServer, ServingResult
from repro.serving.snapshot import Snapshot
from repro.types import EventKind

#: Workload mix: (kind, weight).  Flat-scan baseline traffic is kept
#: light — it exists for the side-by-side cost comparison, not volume.
DEFAULT_MIX: tuple[tuple[str, float], ...] = (
    ("shot", 0.6),
    ("shot_flat", 0.1),
    ("scene", 0.2),
    ("event", 0.1),
)


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load run.

    ``duration`` bounds the run in seconds; ``requests_per_client``
    (when set) stops each client earlier once it has completed that
    many attempts.  ``unique_fraction`` controls cache pressure: 0.0
    replays the same few queries (cache-friendly), 1.0 perturbs every
    query so almost nothing repeats.  ``nprobe``/``rerank_k`` (when
    set) put the pool's ``shot`` queries on the approximate leaf tier.
    """

    clients: int = 4
    duration: float = 2.0
    requests_per_client: int | None = None
    k: int = 5
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX
    timeout: float | None = 2.0
    pool_size: int = 32
    unique_fraction: float = 0.25
    seed: int = 0
    backoff: float = 0.002
    nprobe: int | None = None
    rerank_k: int | None = None


@dataclass
class LoadReport:
    """Aggregated outcome of one load run."""

    clients: int = 0
    elapsed: float = 0.0
    issued: int = 0
    completed: int = 0
    cache_hits: int = 0
    rejected: int = 0
    timeouts: int = 0
    errors: int = 0
    generations: set[int] = field(default_factory=set)
    latencies: list[float] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def qps(self) -> float:
        """Completed queries per second of wall time."""
        return self.completed / self.elapsed if self.elapsed else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over completed queries."""
        return self.cache_hits / self.completed if self.completed else 0.0

    def percentile(self, q: float) -> float:
        """Client-observed latency percentile in seconds."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def render(self, title: str = "load report") -> str:
        """Plain-text summary of the run."""
        return "\n".join(
            [
                title,
                f"  clients {self.clients}, elapsed {self.elapsed:.2f}s",
                f"  completed {self.completed}/{self.issued}"
                f" ({self.qps:.1f} qps sustained)",
                f"  cache hit rate {self.cache_hit_rate * 100:.1f}%",
                f"  rejected {self.rejected} overload, {self.timeouts} deadline,"
                f" {self.errors} errors",
                f"  generations seen {sorted(self.generations)}",
                "  latency (client-side) p50 {p50}  p95 {p95}  p99 {p99}".format(
                    p50=format_seconds(self.percentile(50)),
                    p95=format_seconds(self.percentile(95)),
                    p99=format_seconds(self.percentile(99)),
                ),
            ]
        )


def build_query_pool(
    snapshot: Snapshot,
    config: LoadgenConfig,
    users: Sequence[User | None] = (None,),
) -> list[QueryRequest]:
    """Sample a deterministic mixed workload from a snapshot.

    Shot/scene queries replay indexed feature vectors (guaranteed to
    have matches); event queries sweep the event kinds.  Users are
    assigned round-robin, except the flat baseline which always runs
    anonymously (it supports no access filtering).
    """
    entries = snapshot.flat.entries
    if not entries:
        raise ServingError("cannot build a workload over an empty snapshot")
    rng = np.random.default_rng(config.seed)
    kinds = [kind for kind, _ in config.mix]
    weights = np.asarray([weight for _, weight in config.mix], dtype=np.float64)
    weights = weights / weights.sum()
    event_kinds = list(EventKind)
    requests: list[QueryRequest] = []
    for index in range(config.pool_size):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        user = users[index % len(users)]
        if kind == "event":
            requests.append(
                QueryRequest(
                    kind="event",
                    event=event_kinds[index % len(event_kinds)],
                    user=user,
                    timeout=config.timeout,
                )
            )
            continue
        features = entries[int(rng.integers(len(entries)))].features
        if rng.random() < config.unique_fraction:
            features = np.clip(
                features + rng.normal(0.0, 1e-4, features.shape), 0.0, None
            )
        requests.append(
            QueryRequest(
                kind=kind,
                features=features,
                k=config.k,
                user=None if kind == "shot_flat" else user,
                timeout=config.timeout,
                nprobe=config.nprobe if kind == "shot" else None,
                rerank_k=config.rerank_k if kind == "shot" else None,
            )
        )
    return requests


def run_load(
    server: QueryServer,
    config: LoadgenConfig | None = None,
    users: Sequence[User | None] = (None,),
    on_result: Callable[[QueryRequest, ServingResult], None] | None = None,
) -> LoadReport:
    """Drive a closed-loop load against a running server.

    ``on_result`` runs on the client thread for every success; anything
    it raises is captured into ``report.failures`` (the run keeps
    going, the caller asserts the list is empty).
    """
    config = config if config is not None else LoadgenConfig()
    pool = build_query_pool(server.manager.current(), config, users=users)
    report = LoadReport(clients=config.clients)
    lock = threading.Lock()
    deadline_holder: list[float] = [0.0]
    barrier = threading.Barrier(config.clients + 1)

    def client(client_id: int) -> None:
        rng = np.random.default_rng(config.seed + 1000 + client_id)
        issued = completed = hits = rejected = timeouts = errors = 0
        latencies: list[float] = []
        generations: set[int] = set()
        failures: list[str] = []
        barrier.wait()
        stop_at = deadline_holder[0]
        while time.perf_counter() < stop_at:
            if (
                config.requests_per_client is not None
                and issued >= config.requests_per_client
            ):
                break
            request = pool[int(rng.integers(len(pool)))]
            issued += 1
            start = time.perf_counter()
            try:
                result = server.query(request)
            except OverloadedError:
                rejected += 1
                time.sleep(config.backoff)
                continue
            except ServingError:
                timeouts += 1
                continue
            except Exception as exc:  # noqa: BLE001 - surfaced via report
                errors += 1
                failures.append(f"client {client_id}: {type(exc).__name__}: {exc}")
                continue
            latencies.append(time.perf_counter() - start)
            completed += 1
            hits += int(result.cache_hit)
            generations.add(result.generation)
            if on_result is not None:
                try:
                    on_result(request, result)
                except Exception as exc:  # noqa: BLE001 - assertion transport
                    failures.append(
                        f"client {client_id} invariant: {type(exc).__name__}: {exc}"
                    )
        with lock:
            report.issued += issued
            report.completed += completed
            report.cache_hits += hits
            report.rejected += rejected
            report.timeouts += timeouts
            report.errors += errors
            report.latencies.extend(latencies)
            report.generations.update(generations)
            report.failures.extend(failures)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
        for i in range(config.clients)
    ]
    for thread in threads:
        thread.start()
    start = time.perf_counter()
    deadline_holder[0] = start + config.duration
    barrier.wait()
    for thread in threads:
        thread.join()
    report.elapsed = time.perf_counter() - start
    return report
