"""Serving smoke check: cold vs warm query latency (``make serve-smoke``).

Mines the demo title in-process, stands up a :class:`QueryServer`,
replays the same query cold and warm (the warm repeat must be at least
five times faster thanks to the result cache), then drives a short
closed-loop mixed load and prints the metrics dump.  Exits non-zero
with a diagnostic when the cache or the pool misbehaves.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import ClassMiner
from repro.database.catalog import VideoDatabase
from repro.database.index import combine_features
from repro.serving.loadgen import LoadgenConfig, run_load
from repro.serving.server import QueryRequest, QueryServer, ServerConfig
from repro.video.synthesis import demo_screenplay, generate_video

#: Required cold/warm speedup for the smoke check to pass.
MIN_SPEEDUP = 5.0


def run_smoke(workers: int = 4, duration: float = 1.0) -> int:
    """Run the cold/warm serving comparison; returns a process exit code."""
    video = generate_video(demo_screenplay(), seed=0)
    result = ClassMiner().mine(video.stream)
    database = VideoDatabase()
    database.register(result)

    shot = result.structure.shots[0]
    features = combine_features(shot.histogram, shot.texture)
    request = QueryRequest(kind="shot", features=features, k=5)

    with QueryServer(database, ServerConfig(workers=workers)) as server:
        cold = server.query(request)
        warm = server.query(request)
        repeats = [server.query(request) for _ in range(20)]
        warm_seconds = float(
            np.median([warm.elapsed_seconds] + [r.elapsed_seconds for r in repeats])
        )
        speedup = cold.elapsed_seconds / max(warm_seconds, 1e-9)
        print(
            f"serve-smoke: cold {cold.elapsed_seconds * 1e3:.3f}ms, "
            f"warm {warm_seconds * 1e6:.0f}us (median of 21), "
            f"speedup {speedup:.1f}x, generation {cold.generation}"
        )
        if cold.cache_hit or not warm.cache_hit:
            print("serve-smoke: FAIL — cache hit pattern wrong", file=sys.stderr)
            return 1
        if speedup < MIN_SPEEDUP:
            print(
                f"serve-smoke: FAIL — warm speedup {speedup:.1f}x "
                f"< {MIN_SPEEDUP:.0f}x",
                file=sys.stderr,
            )
            return 1

        report = run_load(server, LoadgenConfig(clients=4, duration=duration))
        print(report.render("serve-smoke load"))
        print(server.metrics.render())
        if report.failures:
            for failure in report.failures:
                print(f"serve-smoke: FAIL — {failure}", file=sys.stderr)
            return 1
        if report.completed == 0:
            print("serve-smoke: FAIL — no queries completed", file=sys.stderr)
            return 1
    print("serve-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke())
