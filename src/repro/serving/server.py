"""The concurrent in-process query server.

:class:`QueryServer` puts a worker pool, a bounded admission queue,
per-query deadlines, an access-scope-aware result cache and metrics in
front of the snapshot layer:

* **Admission** — ``submit`` enqueues onto a bounded queue and raises
  :class:`~repro.errors.OverloadedError` when it is full, so overload
  sheds load instead of growing an unbounded backlog (the caller can
  back off and retry).
* **Deadlines** — every request carries an absolute deadline; a request
  that expires while still queued is failed without executing, and
  :meth:`query` raises :class:`~repro.errors.ServingError` when the
  deadline passes while waiting.
* **Access before cache** — the caller's permitted-leaf scope is
  resolved *before* the cache lookup and is part of the key, so a
  cached result can never cross a clearance boundary.
* **Generations** — results carry the snapshot generation they were
  computed against; a generation swap (manual ``refresh`` or the ingest
  hook) invalidates the cache structurally.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace

import numpy as np

from repro.database.access import User
from repro.database.catalog import VideoDatabase
from repro.database.events_query import event_concept
from repro.errors import OverloadedError, ReproError, ServingError
from repro.obs.slowlog import SlowQuery, get_slow_log
from repro.obs.trace import active_tracer, current_trace_id, span as obs_span
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.faults import fault_point
from repro.resilience.watchdog import Watchdog
from repro.serving.cache import (
    CacheKey,
    ResultCache,
    request_digest,
    scope_token,
)
from repro.serving.metrics import QUERY_KINDS, ServingMetrics
from repro.serving.snapshot import Snapshot, SnapshotManager
from repro.types import EventKind


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one :class:`QueryServer`.

    Attributes
    ----------
    workers:
        Worker threads executing queries.
    queue_depth:
        Bounded admission queue; a full queue rejects with
        :class:`~repro.errors.OverloadedError`.
    default_timeout:
        Per-query deadline in seconds applied when the request carries
        none (``None`` disables deadlines by default).
    cache_capacity:
        Resident entries in the LRU result cache.
    watchdog_interval:
        Seconds between worker-pool repair checks (a dead worker thread
        is resurrected); ``None`` disables the watchdog.
    ann_nprobe:
        Default coarse cells probed per leaf for ``shot`` queries that
        carry no ``nprobe`` of their own.  ``None`` (the default) keeps
        leaf scans exact unless a request opts in.  Enabling this also
        pre-warms per-leaf ANN indexes on every generation swap.
    ann_rerank_k:
        Default exact re-rank tail applied with :attr:`ann_nprobe`
        (``None`` re-ranks every surviving candidate).
    """

    workers: int = 4
    queue_depth: int = 64
    default_timeout: float | None = 5.0
    cache_capacity: int = 512
    watchdog_interval: float | None = 0.2
    ann_nprobe: int | None = None
    ann_rerank_k: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServingError("a server needs at least one worker")
        if self.queue_depth < 1:
            raise ServingError("queue depth must be >= 1")
        if self.watchdog_interval is not None and self.watchdog_interval <= 0:
            raise ServingError("watchdog interval must be > 0 (or None)")
        if self.ann_nprobe is not None and self.ann_nprobe < 1:
            raise ServingError("ann_nprobe must be >= 1 (or None for exact)")
        if self.ann_rerank_k is not None and self.ann_rerank_k < 1:
            raise ServingError("ann_rerank_k must be >= 1 (or None for all)")


@dataclass(frozen=True)
class QueryRequest:
    """One query submitted to the server.

    ``kind`` selects the execution path: ``shot`` (hierarchical
    descent), ``shot_flat`` (Eq. 24 linear-scan baseline), ``scene``
    (centroid search) or ``event`` (registration-record walk).  Shot and
    scene kinds need ``features``; event kind needs ``event``.

    ``nprobe`` / ``rerank_k`` (``shot`` kind only) opt this query into
    the approximate leaf tier; unset, the server's configured defaults
    apply, and with neither the scan stays exact.

    ``explain`` asks for per-phase timings and execution metadata on
    the result.  An explain query computes the same answer (the result
    fields are bit-identical) but bypasses the result cache in both
    directions — it is never served from cache and never written to it
    — so the reported timings describe a real execution.  ``explain``
    is deliberately *not* part of the cache identity
    (:func:`~repro.serving.cache.request_digest` ignores it).
    """

    kind: str
    features: np.ndarray | None = field(default=None, repr=False)
    k: int = 10
    user: User | None = None
    event: EventKind | None = None
    video_title: str | None = None
    timeout: float | None = None
    nprobe: int | None = None
    rerank_k: int | None = None
    explain: bool = False


@dataclass(frozen=True)
class ServingResult:
    """What the server hands back for one query.

    ``hits`` is the kind-specific payload (``RankedShot`` /
    ``RankedScene`` / ``EventHit`` lists); ``generation`` names the
    snapshot the answer was computed against; ``elapsed_seconds`` is the
    worker-side execution time (queue wait excluded), measured on the
    monotonic clock.

    ``degraded`` is True when the answer comes from a weakened
    position: the last snapshot rebuild failed (so the generation is
    stale) or the corpus contains videos whose mining fell back
    somewhere (see :attr:`Snapshot.degraded_videos
    <repro.serving.snapshot.Snapshot>`).  The answer is still correct
    for the data the snapshot holds — the flag tells the caller the
    evidence is not at full strength.

    ``shards_missing`` is only ever non-empty on answers produced by
    the sharded scatter-gather path
    (:class:`repro.net.coordinator.ShardedQueryService`): it lists the
    shard ids whose worker could not contribute, in which case
    ``degraded`` is also True and the hits cover the reachable shards
    only.  The single-process server always leaves it empty.

    ``approx_comparisons`` counts quantized-code (uint8) evaluations the
    ANN tier performed and ``reranked`` the candidates its exact tail
    scored; both stay 0 on exact queries.

    ``explain`` is populated only on ``explain=True`` requests: a plain
    dict of per-phase timings, comparison counts, cache disposition and
    breaker states.  It is metadata *about* the execution — the other
    fields are bit-identical to what the same request would return
    without explain.
    """

    kind: str
    hits: tuple
    generation: int
    cache_hit: bool
    elapsed_seconds: float
    comparisons: int = 0
    degraded: bool = False
    shards_missing: tuple[int, ...] = ()
    approx_comparisons: int = 0
    reranked: int = 0
    explain: dict | None = None


_SENTINEL = object()


class QueryServer:
    """Concurrent query-serving runtime over a :class:`SnapshotManager`."""

    def __init__(
        self,
        database: VideoDatabase | None = None,
        config: ServerConfig | None = None,
        manager: SnapshotManager | None = None,
        metrics: ServingMetrics | None = None,
    ) -> None:
        if (database is None) == (manager is None):
            raise ServingError("pass exactly one of database or manager")
        self.config = config if config is not None else ServerConfig()
        self._manager = manager if manager is not None else SnapshotManager(database)
        self._cache = ResultCache(self.config.cache_capacity)
        # Default: metrics on a private registry, so independent servers
        # never mix counts.  ``classminer serve`` passes
        # ``ServingMetrics(registry=repro.obs.get_registry())`` to make
        # the same numbers visible to the Prometheus/JSON exporters.
        self._metrics = metrics if metrics is not None else ServingMetrics()
        self._metrics.registry.register_collector(self._cache.metrics_snapshot)
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_depth)
        self._threads: list[threading.Thread] = []
        self._running = False
        self._lifecycle = threading.Lock()
        self._scope_lock = threading.Lock()
        self._scopes: dict[tuple[User, int], frozenset[str]] = {}
        # A flaky cache must not take queries down with it: get/put run
        # through this breaker and an open breaker simply bypasses the
        # cache (answers recompute against the snapshot).
        self._cache_breaker = CircuitBreaker(
            name="result-cache", registry=self._metrics.registry
        )
        self._watchdog: Watchdog | None = None
        self._worker_serial = 0
        self._slow_log = get_slow_log()
        self._manager.subscribe(self._on_snapshot)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def _spawn_worker(self) -> threading.Thread:
        self._worker_serial += 1
        thread = threading.Thread(
            target=self._worker_loop,
            name=f"query-worker-{self._worker_serial}",
            daemon=True,
        )
        thread.start()
        return thread

    def start(self) -> "QueryServer":
        """Spin up the worker pool (idempotent once running)."""
        with self._lifecycle:
            if self._running:
                return self
            self._running = True
            self._threads = [
                self._spawn_worker() for _ in range(self.config.workers)
            ]
            if self.config.watchdog_interval is not None:
                self._watchdog = Watchdog(
                    self._repair_workers,
                    interval=self.config.watchdog_interval,
                    name="query-server-watchdog",
                ).start()
        return self

    def stop(self) -> None:
        """Drain the pool: in-flight and queued work finishes first."""
        with self._lifecycle:
            if not self._running:
                return
            self._running = False
            watchdog, self._watchdog = self._watchdog, None
        # Joined outside the lifecycle lock: its repair check takes the
        # same lock, so stopping it under the lock could deadlock.  With
        # ``_running`` already False the check is a no-op either way.
        if watchdog is not None:
            watchdog.stop()
        with self._lifecycle:
            for _ in self._threads:
                self._queue.put(_SENTINEL)
            for thread in self._threads:
                thread.join()
            self._threads = []

    def _repair_workers(self) -> int:
        """Resurrect dead worker threads (the watchdog's repair check).

        The worker loop is hardened to survive anything short of a
        process-killing condition, so this is the second line of
        defence: whatever still manages to kill a thread gets replaced,
        keeping the pool at its configured width.
        """
        with self._lifecycle:
            if not self._running:
                return 0
            dead = [t for t in self._threads if not t.is_alive()]
            if not dead:
                return 0
            alive = [t for t in self._threads if t.is_alive()]
            self._threads = alive + [self._spawn_worker() for _ in dead]
        self._metrics.registry.counter(
            "serving_worker_resurrections_total",
            "Dead query-worker threads replaced by the watchdog.",
        ).inc(len(dead))
        return len(dead)

    @property
    def alive_workers(self) -> int:
        """Worker threads currently alive."""
        return sum(1 for thread in self._threads if thread.is_alive())

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """True while the worker pool is accepting queries."""
        return self._running

    # ------------------------------------------------------------------
    # State the outside world may inspect.
    # ------------------------------------------------------------------

    @property
    def manager(self) -> SnapshotManager:
        """The snapshot manager this server reads from."""
        return self._manager

    @property
    def metrics(self) -> ServingMetrics:
        """Live serving metrics."""
        return self._metrics

    @property
    def cache(self) -> ResultCache:
        """The result cache."""
        return self._cache

    @property
    def cache_breaker(self) -> CircuitBreaker:
        """The breaker guarding result-cache access."""
        return self._cache_breaker

    @property
    def watchdog(self) -> Watchdog | None:
        """The worker watchdog (None while stopped or disabled)."""
        return self._watchdog

    @property
    def generation(self) -> int:
        """Current snapshot generation."""
        return self._manager.generation

    def refresh(self) -> Snapshot:
        """Rebuild the snapshot from the live database (generation bump)."""
        return self._manager.refresh()

    def attach_ingest(self):
        """Register this server's manager on the ingest corpus hook.

        Returns the hook so callers can pass it to
        :func:`repro.ingest.runner.unregister_corpus_hook` on shutdown.
        """
        from repro.ingest.runner import register_corpus_hook

        return register_corpus_hook(self._manager.ingest_hook())

    def _on_snapshot(self, snapshot: Snapshot) -> None:
        if self.config.ann_nprobe is not None:
            from repro.serving.snapshot import warm_ann_indexes

            warm_ann_indexes(snapshot)
        self._cache.evict_other_generations(snapshot.generation)
        with self._scope_lock:
            self._scopes = {
                key: value
                for key, value in self._scopes.items()
                if key[1] == snapshot.generation
            }
        self._metrics.record_generation_swap()

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------

    def submit(self, request: QueryRequest) -> "Future[ServingResult]":
        """Admit one query; returns a future resolving to its result.

        Raises :class:`~repro.errors.ServingError` for malformed
        requests or a stopped server, and
        :class:`~repro.errors.OverloadedError` when the admission queue
        is full.
        """
        self._validate(request)
        if not self._running:
            raise ServingError("server is not running (call start())")
        timeout = (
            request.timeout
            if request.timeout is not None
            else self.config.default_timeout
        )
        deadline = None if timeout is None else time.perf_counter() + timeout
        future: Future[ServingResult] = Future()
        # Trace context is captured on the *submitting* thread: the
        # worker that dequeues this request adopts the span/trace ids so
        # the serve.query span nests under the caller (e.g. the HTTP
        # gateway's request span) despite crossing the queue.
        tracer = active_tracer()
        trace_parent = tracer.current_span_id()
        trace_id = tracer.current_trace_id()
        try:
            self._queue.put_nowait((request, future, deadline, trace_parent, trace_id))
        except queue.Full:
            self._metrics.record_rejection()
            raise OverloadedError(
                f"admission queue full ({self.config.queue_depth} pending); "
                "back off and retry"
            ) from None
        return future

    def query(self, request: QueryRequest) -> ServingResult:
        """Blocking convenience: submit and wait out the deadline."""
        timeout = (
            request.timeout
            if request.timeout is not None
            else self.config.default_timeout
        )
        future = self.submit(request)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            self._metrics.record_timeout()
            raise ServingError(
                f"query deadline of {timeout}s exceeded while waiting"
            ) from None

    def search(
        self,
        features: np.ndarray,
        user: User | None = None,
        k: int = 10,
        kind: str = "shot",
    ) -> ServingResult:
        """Shorthand for a blocking shot (or flat) search."""
        return self.query(QueryRequest(kind=kind, features=features, k=k, user=user))

    def _validate(self, request: QueryRequest) -> None:
        if request.kind not in QUERY_KINDS:
            raise ServingError(
                f"unknown query kind {request.kind!r}; expected one of {QUERY_KINDS}"
            )
        if request.kind == "event":
            if request.event is None:
                raise ServingError("event queries need an EventKind")
        elif request.features is None:
            raise ServingError(f"{request.kind} queries need a feature vector")
        if request.kind == "shot_flat" and request.user is not None:
            # The flat baseline has no concept structure to filter on;
            # silently post-filtering would apply access control after
            # ranking, which the serving layer forbids.
            raise ServingError(
                "the flat baseline does not support per-user access filtering"
            )
        if request.k < 1:
            raise ServingError("k must be >= 1")
        if request.nprobe is not None or request.rerank_k is not None:
            if request.kind != "shot":
                raise ServingError(
                    "nprobe/rerank_k only apply to hierarchical shot queries"
                )
            if request.nprobe is not None and request.nprobe < 1:
                raise ServingError("nprobe must be >= 1 (or None for exact)")
            if request.rerank_k is not None and request.rerank_k < 1:
                raise ServingError("rerank_k must be >= 1 (or None for all)")

    # ------------------------------------------------------------------
    # Execution (worker side).
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        # Nothing a request does may kill this loop.  ``_process``
        # already converts execution failures into typed errors on the
        # future; the catch-all below covers the loop's own plumbing
        # (e.g. resolving an already-cancelled future), counts the
        # event, answers with a typed ServingError, and keeps going.
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            try:
                self._process(item)
            except Exception as exc:
                self._metrics.registry.counter(
                    "serving_worker_failures_total",
                    "Unexpected exceptions survived by the worker loop.",
                ).inc()
                self._metrics.record_error()
                try:
                    future = item[1]
                    self._fail(future, ServingError(f"worker failed: {exc}"))
                except Exception:  # malformed item; nothing to answer
                    pass

    @staticmethod
    def _fail(future: Future, exc: Exception) -> None:
        """Fail a future that may already be cancelled or resolved."""
        try:
            future.set_exception(exc)
        except Exception:
            pass

    def _process(self, item) -> None:
        request, future, deadline, trace_parent, trace_id = item
        if not future.set_running_or_notify_cancel():
            return
        if deadline is not None and time.perf_counter() > deadline:
            self._metrics.record_timeout()
            self._fail(
                future,
                ServingError("deadline expired while queued for admission"),
            )
            return
        try:
            with active_tracer().adopt(trace_parent, trace_id):
                result = self._execute(request)
        except ReproError as exc:
            self._metrics.record_error()
            self._fail(future, exc)
            return
        except Exception as exc:
            self._metrics.record_error()
            self._fail(future, ServingError(f"query execution failed: {exc}"))
            return
        try:
            future.set_result(result)
        except Exception:  # future cancelled while we computed
            pass

    def _scope(
        self, user: User | None, snapshot: Snapshot
    ) -> tuple[frozenset[str] | None, str]:
        """Resolve (permitted leaves, scope token) for the cache key.

        Leaf sets are memoised per (user, generation); the audit log
        records the resolution once per generation rather than once per
        query.
        """
        if user is None:
            return None, scope_token(None, None)
        cache_key = (user, snapshot.generation)
        with self._scope_lock:
            leaves = self._scopes.get(cache_key)
        if leaves is None:
            leaves = snapshot.permitted_leaves(user)
            with self._scope_lock:
                self._scopes[cache_key] = leaves
        return leaves, scope_token(user, leaves)

    def _request_digest(self, request: QueryRequest) -> str:
        return request_digest(request)

    def _execute(self, request: QueryRequest) -> ServingResult:
        with obs_span("serve.query", kind=request.kind) as sp:
            result = self._execute_unspanned(request)
            sp.set(
                cache_hit=result.cache_hit,
                generation=result.generation,
                hits=len(result.hits),
                comparisons=result.comparisons,
            )
            trace_id = current_trace_id()
            if trace_id is not None:
                sp.set(trace_id=trace_id)
            return result

    def _cache_get(self, key: CacheKey) -> ServingResult | None:
        """Cache lookup through the breaker (miss when open or failing)."""
        if not self._cache_breaker.allow():
            return None
        try:
            fault_point("serve.cache")
            cached = self._cache.get(key)
        except Exception:
            self._cache_breaker.record_failure()
            return None
        self._cache_breaker.record_success()
        return cached

    def _cache_put(self, key: CacheKey, result: ServingResult) -> None:
        """Cache store through the breaker (dropped when open or failing)."""
        if not self._cache_breaker.allow():
            return
        try:
            fault_point("serve.cache")
            self._cache.put(key, result)
        except Exception:
            self._cache_breaker.record_failure()
            return
        self._cache_breaker.record_success()

    def _effective_request(self, request: QueryRequest) -> QueryRequest:
        """Fold the server's configured ANN defaults into the request.

        Resolved *before* the cache key is computed, so a configured
        default and an explicit per-request knob with the same values
        share cache entries (and an exact query never collides with an
        approximate one).
        """
        if request.kind != "shot" or request.nprobe is not None:
            return request
        if self.config.ann_nprobe is None:
            return request
        return replace(
            request,
            nprobe=self.config.ann_nprobe,
            rerank_k=(
                request.rerank_k
                if request.rerank_k is not None
                else self.config.ann_rerank_k
            ),
        )

    def _record_slow(self, result: ServingResult) -> None:
        self._slow_log.record(
            SlowQuery(
                kind=result.kind,
                elapsed_seconds=result.elapsed_seconds,
                backend="single",
                comparisons=result.comparisons,
                approx_comparisons=result.approx_comparisons,
                cache_hit=result.cache_hit,
                degraded=result.degraded,
                shards_missing=result.shards_missing,
                trace_id=current_trace_id(),
            )
        )

    def _explain_payload(
        self,
        request: QueryRequest,
        key: CacheKey,
        result: ServingResult,
        scope_seconds: float,
        search_seconds: float,
    ) -> dict:
        """Execution metadata for one explain query (never cached)."""
        return {
            "backend": "single",
            "kind": request.kind,
            "generation": result.generation,
            "phases_ms": {
                "scope": round(scope_seconds * 1e3, 3),
                "search": round(search_seconds * 1e3, 3),
                "total": round(result.elapsed_seconds * 1e3, 3),
            },
            "counts": {
                "comparisons": result.comparisons,
                "approx_comparisons": result.approx_comparisons,
                "reranked": result.reranked,
            },
            "cache": {
                "disposition": "bypassed (explain)",
                "would_hit": self._cache.peek(key) is not None,
                "entries": len(self._cache),
                "capacity": self._cache.capacity,
            },
            "breakers": {
                "result-cache": self._cache_breaker.state.value,
                "snapshot": self._manager.breaker.state.value,
            },
            "degraded": result.degraded,
            "ann": {"nprobe": request.nprobe, "rerank_k": request.rerank_k},
            "trace_id": current_trace_id(),
        }

    def _execute_unspanned(self, request: QueryRequest) -> ServingResult:
        start = time.perf_counter()
        fault_point("serve.query")
        request = self._effective_request(request)
        snapshot = self._manager.current()
        degraded = self._manager.degraded or bool(snapshot.degraded_videos)
        leaves, scope = self._scope(request.user, snapshot)
        scope_seconds = time.perf_counter() - start
        key = CacheKey(
            kind=request.kind,
            digest=self._request_digest(request),
            k=request.k,
            scope=scope,
            generation=snapshot.generation,
        )
        # Explain queries bypass the cache in both directions: the
        # reported timings must describe a real execution, and a result
        # carrying explain metadata must never be served to a caller
        # that did not ask for it.
        cached = None if request.explain else self._cache_get(key)
        if cached is not None:
            elapsed = time.perf_counter() - start
            self._metrics.record_query(request.kind, elapsed, cache_hit=True)
            result = replace(
                cached, cache_hit=True, elapsed_seconds=elapsed, degraded=degraded
            )
            self._record_slow(result)
            return result

        search_start = time.perf_counter()
        hits: tuple
        comparisons = 0
        approx_comparisons = 0
        reranked = 0
        ann_degraded = False
        if request.kind == "shot":
            result = snapshot.search(
                request.features,
                user=request.user,
                k=request.k,
                allowed_leaves=leaves,
                nprobe=request.nprobe,
                rerank_k=request.rerank_k,
            )
            hits = tuple(result.hits)
            comparisons = result.stats.comparisons
            approx_comparisons = result.stats.approx_comparisons
            reranked = result.stats.reranked
            ann_degraded = result.stats.ann_degraded
            degraded = degraded or ann_degraded
        elif request.kind == "shot_flat":
            result = snapshot.search_flat(request.features, k=request.k)
            hits = tuple(result.hits)
            comparisons = result.stats.comparisons
        elif request.kind == "scene":
            scenes = snapshot.search_scenes(
                request.features, k=request.k, event=request.event
            )
            if leaves is not None:
                # Scope resolved before the cache key: filtering here is
                # part of computing the answer, not a post-cache patch.
                scenes = [
                    hit
                    for hit in scenes
                    if event_concept(hit.entry.video_title, hit.entry.event) in leaves
                ]
            hits = tuple(scenes)
            comparisons = len(snapshot.scenes)
        else:  # event
            hits = tuple(
                snapshot.query_events(
                    request.event, user=request.user, video_title=request.video_title
                )
            )

        search_seconds = time.perf_counter() - search_start
        elapsed = time.perf_counter() - start
        result = ServingResult(
            kind=request.kind,
            hits=hits,
            generation=snapshot.generation,
            cache_hit=False,
            elapsed_seconds=elapsed,
            comparisons=comparisons,
            degraded=degraded,
            approx_comparisons=approx_comparisons,
            reranked=reranked,
        )
        if request.explain:
            result = replace(
                result,
                explain=self._explain_payload(
                    request, key, result, scope_seconds, search_seconds
                ),
            )
        elif not ann_degraded:
            # An ANN-degraded answer came from a fallback scan that may
            # heal on the very next query (the loader thunk is retried);
            # caching it would pin the weakened answer for a generation.
            self._cache_put(key, result)
        self._metrics.record_query(
            request.kind, elapsed, comparisons=comparisons, cache_hit=False
        )
        self._record_slow(result)
        return result

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """One-stop plain-text status: snapshot, cache, metrics."""
        snapshot = self._manager.current()
        stats = self._cache.stats()
        degraded_videos = snapshot.degraded_videos
        lines = [
            f"query server: {self.alive_workers}/{self.config.workers} workers, "
            f"queue depth {self.config.queue_depth}, "
            f"{'running' if self._running else 'stopped'}",
            f"  snapshot: generation {snapshot.generation}, "
            f"{len(snapshot.records)} videos, {snapshot.shot_count} shots"
            + (
                f", {len(degraded_videos)} degraded"
                if degraded_videos
                else ""
            )
            + (
                f" (stale: {self._manager.last_error})"
                if self._manager.degraded
                else ""
            ),
            f"  cache: {len(self._cache)}/{self._cache.capacity} entries, "
            f"hit rate {stats.hit_rate * 100:.1f}%, "
            f"{stats.stale_evictions} stale evicted"
            + (
                ""
                if self._cache_breaker.state is BreakerState.CLOSED
                else f" [{self._cache_breaker.describe()}]"
            ),
            f"  breakers: {self._manager.breaker.describe()}; "
            f"{self._cache_breaker.describe()}",
            self._metrics.render(),
        ]
        return "\n".join(lines)
