"""Bounded LRU result cache with access-scope-aware keys.

The cache sits *behind* admission and access resolution, never in front
of them: a key is complete only once it carries

* the query kind and top-``k``,
* a digest of the query feature vector (or the event parameters),
* the **principal scope** — clearance plus a digest of the caller's
  permitted-leaf set, resolved *before* lookup, and
* the snapshot **generation** the result was computed against.

Two principals share an entry only when the access controller grants
them the exact same leaf set, so a result cached for a high-clearance
user can never leak to a lower-clearance one.  A generation bump after
ingest changes every key, so stale hits are structurally impossible;
:meth:`ResultCache.evict_other_generations` reclaims the dead entries'
memory eagerly.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.database.access import User

#: Scope token for anonymous (unrestricted) queries.
ANONYMOUS_SCOPE = "anon"


def feature_digest(features: np.ndarray) -> str:
    """Stable content digest of a query feature vector."""
    array = np.ascontiguousarray(np.asarray(features, dtype=np.float64))
    hasher = hashlib.sha256()
    hasher.update(str(array.shape).encode())
    hasher.update(array.tobytes())
    return hasher.hexdigest()[:24]


def scope_token(user: User | None, permitted_leaves: frozenset[str] | None) -> str:
    """Principal scope: clearance + digest of the permitted-leaf set.

    Identity is deliberately *not* part of the token: two users whose
    rules and clearance resolve to the same leaf set see the same data,
    so they may share cache entries.  Anonymous callers (no access
    filtering at all) get their own distinct token.
    """
    if user is None:
        return ANONYMOUS_SCOPE
    if permitted_leaves is None:
        raise ValueError("a user scope needs its resolved permitted-leaf set")
    digest = hashlib.sha256(
        "\n".join(sorted(permitted_leaves)).encode()
    ).hexdigest()[:16]
    return f"c{user.clearance}:{digest}"


def request_digest(request) -> str:
    """Kind-specific content digest of one query request.

    Accepts any object shaped like
    :class:`repro.serving.server.QueryRequest` (duck-typed to avoid an
    import cycle).  Both the in-process :class:`QueryServer` and the
    sharded :class:`repro.net.coordinator.ShardedQueryService` build
    their cache keys through this one function, so the two paths can
    never drift into keying the same logical query differently.
    """
    if request.kind == "event":
        assert request.event is not None
        return f"event:{request.event.value}:{request.video_title or '*'}"
    assert request.features is not None
    digest = feature_digest(request.features)
    if request.kind == "scene" and request.event is not None:
        digest = f"{digest}:{request.event.value}"
    nprobe = getattr(request, "nprobe", None)
    if request.kind == "shot" and nprobe is not None:
        # The ANN knobs change the answer, so they are part of the
        # identity; exact queries (nprobe=None) keep their historic
        # digests and stay shareable across server configurations.
        rerank_k = getattr(request, "rerank_k", None)
        digest = f"{digest}:ann{int(nprobe)}:{'all' if rerank_k is None else int(rerank_k)}"
    return digest


@dataclass(frozen=True)
class CacheKey:
    """Complete identity of one cacheable query."""

    kind: str
    digest: str
    k: int
    scope: str
    generation: int


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stale_evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total get() calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Thread-safe bounded LRU over :class:`CacheKey` -> result."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._stale_evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum resident entries."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Any | None:
        """The cached value, refreshed to most-recently-used; None on miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: CacheKey) -> Any | None:
        """The cached value without touching LRU order or hit/miss stats.

        The explain surface uses this to report whether a query *would*
        have hit the cache; an observation must not perturb the state it
        reports on.
        """
        with self._lock:
            return self._entries.get(key)

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def evict_other_generations(self, generation: int) -> int:
        """Drop entries from any generation but ``generation``.

        Old-generation keys can never hit again (lookups always carry
        the current generation), so this only reclaims memory early;
        correctness never depends on it.  Returns entries removed.
        """
        with self._lock:
            stale = [key for key in self._entries if key.generation != generation]
            for key in stale:
                del self._entries[key]
            self._stale_evictions += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop everything; returns entries removed."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            return removed

    def stats(self) -> CacheStats:
        """Point-in-time counter snapshot."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                stale_evictions=self._stale_evictions,
            )

    def metrics_snapshot(self) -> dict[str, float]:
        """``{metric_name: value}`` gauges for the observability registry.

        Shaped as a registry *collector* (see
        :meth:`repro.obs.registry.MetricsRegistry.register_collector`) so
        the server can publish cache health through the shared export
        surface without the cache knowing about metric families.
        """
        with self._lock:
            return {
                "serving_cache_entries": float(len(self._entries)),
                "serving_cache_capacity": float(self._capacity),
                "serving_cache_hits_total": float(self._hits),
                "serving_cache_misses_total": float(self._misses),
                "serving_cache_evictions_total": float(self._evictions),
                "serving_cache_stale_evictions_total": float(self._stale_evictions),
            }
