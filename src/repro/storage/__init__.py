"""Durable storage: SQL catalog + memory-mapped out-of-core features.

The JSON-era persistence (one ``database.json`` holding every feature
vector) forces a cold start to parse the whole corpus before the first
query.  This subsystem splits durable state into two pieces sized for
their access patterns:

* :class:`SQLCatalog` — everything *relational* (videos, events, leaf
  metadata, entry rows, scene bookkeeping, full-text search documents)
  in one WAL-mode SQLite file with a versioned schema;
* :class:`FeatureStore` — the bulky packed feature matrices as
  content-addressed, memory-mapped ``.npy`` blocks behind a bounded
  LRU of open handles.

:class:`SQLVideoDatabase` serves the ordinary
:class:`~repro.database.catalog.VideoDatabase` API out-of-core on top
of both, bit-identical to the in-RAM query paths;
:func:`save_database` persists a database,
:func:`migrate_db_dir` converts a JSON-era directory, and
:mod:`repro.storage.smoke` (``make storage-smoke``) checks the whole
contract at corpus scale.  See ``docs/STORAGE.md``.
"""

from repro.storage.featurestore import DEFAULT_MAX_OPEN, BlockRef, FeatureStore
from repro.storage.lazy import (
    LazyLeafHashIndex,
    LazySceneIndex,
    OutOfCoreFlatIndex,
    SQLVideoDatabase,
)
from repro.storage.migrate import MigrationReport, migrate_db_dir
from repro.storage.schema import (
    CATALOG_NAME,
    FEATURES_DIR,
    SCHEMA_VERSION,
    catalog_path,
    features_path,
    fts5_available,
)
from repro.storage.sqlcatalog import (
    EntryRow,
    LeafInfo,
    SceneRow,
    SearchHit,
    SQLCatalog,
    save_database,
)
from repro.storage.synthetic import build_synthetic_database

__all__ = [
    "BlockRef",
    "CATALOG_NAME",
    "DEFAULT_MAX_OPEN",
    "EntryRow",
    "FEATURES_DIR",
    "FeatureStore",
    "LazyLeafHashIndex",
    "LazySceneIndex",
    "LeafInfo",
    "MigrationReport",
    "OutOfCoreFlatIndex",
    "SCHEMA_VERSION",
    "SQLCatalog",
    "SQLVideoDatabase",
    "SceneRow",
    "SearchHit",
    "build_synthetic_database",
    "catalog_path",
    "features_path",
    "fts5_available",
    "migrate_db_dir",
    "save_database",
]
