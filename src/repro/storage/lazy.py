"""Out-of-core views over a stored SQL catalog.

The JSON-era load path deserialises every feature vector into RAM
before the first query can run.  This module gives the same
:class:`~repro.database.catalog.VideoDatabase` API a lazy spine:

* :class:`LazyLeafHashIndex` — a :class:`~repro.database.index.LeafHashIndex`
  that materialises its hash buckets from the leaf's memory-mapped
  feature block on first probe.  Rows are replayed through the parent's
  ``insert`` in stored row order, so buckets, cached blocks and
  fallback ordering are *identical* to an eager build.
* :class:`OutOfCoreFlatIndex` — the Eq. (24) linear scan executed
  leaf-block by leaf-block: per-block batch scores scatter into one
  score vector by stored flat ordinal, and the ranking reproduces the
  eager stable sort (``np.lexsort`` with an insertion-order tiebreak)
  bit for bit.  Only the top-``k`` rows ever become Python objects.
* :class:`LazySceneIndex` — scene-centroid search fed from the stored
  centroid block on first use.
* :class:`SQLVideoDatabase` — a :class:`VideoDatabase` subclass opened
  from a database directory.  Reads stay out-of-core; any mutating call
  (``register``/``unregister``/``save``) first materialises the catalog
  into ordinary in-RAM structures and proceeds on the base class.

Every score these views return is bit-identical to the in-RAM path:
the kernels are row-independent, blocks store the same float64 bytes
the eager path would stack, and all orderings (leaf creation order,
bucket replay order, flat ordinal order, sorted scene grouping) are
persisted by :mod:`repro.storage.sqlcatalog` precisely so they can be
replayed here.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np

from repro.database.catalog import VideoDatabase
from repro.database.flat import FlatIndex
from repro.database.hierarchy import ConceptLevel, ConceptNode, ensure_subject_area
from repro.database.index import (
    IndexNode,
    LeafHashIndex,
    ShotEntry,
    build_node,
    feature_similarity_batch,
)
from repro.database.query import QueryResult, QueryStats, RankedShot
from repro.database.scene_search import SceneEntry, SceneIndex
from repro.errors import StorageError
from repro.resilience.faults import fault_point
from repro.storage.featurestore import DEFAULT_MAX_OPEN
from repro.storage.sqlcatalog import LeafInfo, SQLCatalog
from repro.types import EventKind


class LazyLeafHashIndex(LeafHashIndex):
    """A leaf hash index whose entries load from the feature store on demand.

    Until the first probe the index knows only its entry count; the
    loader then yields :class:`ShotEntry` rows in stored row order and
    each is inserted through the base class, reproducing the eager
    bucket layout exactly.

    Materialisation is guarded by a lock: serving worker threads share
    one index per leaf, so the first prober loads while later arrivals
    wait, and ``_loaded`` flips only after every row is in place —
    nobody ever probes a partially populated bucket.
    """

    def __init__(self, count: int, loader) -> None:
        super().__init__()
        self._loader = loader
        self._stored_count = count
        self._loaded = False
        self._load_lock = threading.Lock()

    def _ensure(self) -> None:
        if self._loaded:
            return
        with self._load_lock:
            if self._loaded:
                return
            for entry in self._loader():
                super().insert(entry)
            self._loaded = True

    def insert(self, entry: ShotEntry) -> None:
        """Insert after loading, so stored rows keep their bucket order."""
        self._ensure()
        super().insert(entry)

    def probe(self, features: np.ndarray) -> list[ShotEntry]:
        self._ensure()
        return super().probe(features)

    def probe_block(self, features: np.ndarray):
        self._ensure()
        return super().probe_block(features)

    def bucket_block(self, features: np.ndarray):
        self._ensure()
        return super().bucket_block(features)

    def fallback_block(self):
        self._ensure()
        return super().fallback_block()

    def warm(self) -> None:
        self._ensure()
        super().warm()

    def all_entries(self) -> list[ShotEntry]:
        self._ensure()
        return super().all_entries()

    def __len__(self) -> int:
        return self._stored_count if not self._loaded else super().__len__()

    @property
    def bucket_count(self) -> int:
        """Number of populated hash buckets (materialises)."""
        self._ensure()
        return LeafHashIndex.bucket_count.fget(self)  # type: ignore[attr-defined]

    @property
    def loaded(self) -> bool:
        """Whether the entries have been materialised yet."""
        return self._loaded


def _ann_index_for(catalog: SQLCatalog, info: LeafInfo):
    """Load one leaf's persisted ANN index out-of-core (None when absent).

    The small trained arrays come from the catalog row; the uint8 code
    matrix stays a read-only mmap from the feature store, so enabling
    the ANN tier adds ~1/8th of a leaf block's bytes to the working
    set, paged in on demand.  The ``storage.ann_block_missing`` fault
    point (and any real missing/truncated code block) surfaces as the
    store's typed errors, which the query layer degrades on.
    """
    from repro.ann.index import AnnLeafIndex

    fault_point("storage.ann_block_missing")
    row = catalog.ann_leaf_row(info.name)
    if row is None:
        return None
    codes = catalog.features.open(row.code_sha)
    return AnnLeafIndex(
        dims=info.dims,
        centroids=row.centroids,
        assign=row.assign,
        codes=codes,
        scale=row.scale,
        offset=row.offset,
        sigs=row.sigs,
        seed=row.seed,
    )


def _leaf_entries_for(catalog: SQLCatalog, info: LeafInfo) -> list[ShotEntry]:
    """Materialise one leaf's entries (features are mmap row views)."""
    block = catalog.features.open(info.block.sha)
    return [
        ShotEntry(
            video_title=row.video_title,
            shot_id=row.shot_id,
            scene_id=row.scene_id,
            features=block[row.row],
        )
        for row in catalog.leaf_rows(info.name)
    ]


class OutOfCoreFlatIndex(FlatIndex):
    """The Eq. (24) linear scan, executed block-by-block over mmaps.

    Scoring walks the stored leaf blocks — the OS pages each one in,
    the batched kernel scores it, and the per-row results scatter into
    one score vector by flat ordinal — so peak resident memory is one
    block plus the score vector, independent of corpus size.  Ranking
    then reproduces the eager stable sort exactly and only the top
    ``k`` rows are fetched back from SQL as entry objects.
    """

    def __init__(self, catalog: SQLCatalog) -> None:
        super().__init__()
        self._catalog = catalog
        self._total = catalog.entry_count()
        self._infos: dict[str, LeafInfo] | None = None
        self._plan: list[tuple[LeafInfo, np.ndarray]] | None = None

    def _leaf_infos(self) -> dict[str, LeafInfo]:
        if self._infos is None:
            self._infos = {info.name: info for info in self._catalog.leaf_infos()}
        return self._infos

    def _scan_plan(self) -> list[tuple[LeafInfo, np.ndarray]]:
        """Per-leaf (info, flat-ordinal vector) in stored row order."""
        if self._plan is None:
            plan = []
            for info in self._leaf_infos().values():
                ords = np.array(
                    [row.ord for row in self._catalog.leaf_rows(info.name)],
                    dtype=np.intp,
                )
                plan.append((info, ords))
            self._plan = plan
        return self._plan

    def insert(self, entry: ShotEntry) -> None:
        raise StorageError(
            "out-of-core flat index is read-only — materialise the "
            "database before mutating it"
        )

    def __len__(self) -> int:
        return self._total

    @property
    def entries(self) -> list[ShotEntry]:
        """Every stored shot in flat-ordinal order (materialises)."""
        flat: list[ShotEntry | None] = [None] * self._total
        for info in self._leaf_infos().values():
            block = self._catalog.features.open(info.block.sha)
            for row in self._catalog.leaf_rows(info.name):
                flat[row.ord] = ShotEntry(
                    video_title=row.video_title,
                    shot_id=row.shot_id,
                    scene_id=row.scene_id,
                    features=block[row.row],
                )
        return [entry for entry in flat if entry is not None]

    def feature_matrix(self) -> np.ndarray:
        """Full stacked matrix (materialises; prefer :meth:`search`)."""
        if self._matrix is None:
            if not self._total:
                self._matrix = np.empty((0, 0))
            else:
                plan = self._scan_plan()
                cols = plan[0][0].block.cols
                matrix = np.empty((self._total, cols), dtype=np.float64)
                for info, ords in plan:
                    matrix[ords] = self._catalog.features.open(info.block.sha)
                self._matrix = matrix
        return self._matrix

    def warm(self) -> None:
        """No-op: the out-of-core scan stays cold by design."""
        return None

    def search(self, features: np.ndarray, k: int = 10) -> QueryResult:
        """Block-wise Eq. (24) scan, bit-identical to the in-RAM result."""
        start = time.perf_counter()
        stats = QueryStats(visited_path=["flat_scan"])
        n = self._total
        if not n:
            stats.elapsed_seconds = time.perf_counter() - start
            return QueryResult(hits=[], stats=stats)
        scores = np.empty(n, dtype=np.float64)
        for info, ords in self._scan_plan():
            block = self._catalog.features.open(info.block.sha)
            scores[ords] = feature_similarity_batch(features, block)
        stats.comparisons += n
        # Stable descending sort with insertion-order tiebreak — the
        # exact ordering list.sort(key=score, reverse=True) produces.
        order = np.lexsort((np.arange(n), -scores))
        top = [int(i) for i in order[:k]]
        rows = self._catalog.entries_by_ord(top)
        hits = []
        for ordinal in top:
            row = rows[ordinal]
            block = self._catalog.features.open(
                self._leaf_infos()[row.leaf].block.sha
            )
            hits.append(
                RankedShot(
                    entry=ShotEntry(
                        video_title=row.video_title,
                        shot_id=row.shot_id,
                        scene_id=row.scene_id,
                        features=block[row.row],
                    ),
                    score=float(scores[ordinal]),
                )
            )
        stats.ranked = n
        stats.elapsed_seconds = time.perf_counter() - start
        return QueryResult(hits=hits, stats=stats)


class LazySceneIndex(SceneIndex):
    """Scene-centroid index fed from the stored centroid block on first use.

    Rows load in stored row order — the same ``sorted(groups.items())``
    order the serving layer's derived index uses — so rankings and
    tie-breaks match the in-RAM path exactly.
    """

    def __init__(self, catalog: SQLCatalog) -> None:
        super().__init__()
        self._catalog = catalog
        self._stored_count = catalog.scene_count()
        self._loaded = False
        self._load_lock = threading.Lock()

    def _ensure(self) -> None:
        # Double-checked lock: serving workers share this index, and
        # ``_loaded`` flips only once every centroid row is inserted.
        if self._loaded:
            return
        with self._load_lock:
            if self._loaded:
                return
            ref = self._catalog.scene_block_ref()
            if ref is not None:
                block = self._catalog.features.open(ref.sha)
                for row in self._catalog.scene_rows():
                    SceneIndex.insert(
                        self,
                        SceneEntry(
                            video_title=row.video_title,
                            scene_id=row.scene_id,
                            event=EventKind(row.event),
                            shot_count=row.shot_count,
                            centroid=block[row.row],
                        ),
                    )
            self._loaded = True

    def __len__(self) -> int:
        return self._stored_count if not self._loaded else super().__len__()

    @property
    def entries(self) -> list[SceneEntry]:
        """Every indexed scene in centroid-row order (materialises)."""
        self._ensure()
        return SceneIndex.entries.fget(self)  # type: ignore[attr-defined]

    def insert(self, entry: SceneEntry) -> None:
        self._ensure()
        super().insert(entry)

    def centroid_matrix(self) -> np.ndarray:
        self._ensure()
        return super().centroid_matrix()

    def warm(self) -> None:
        self._ensure()
        super().warm()

    def search(self, features, k=5, event=None):
        self._ensure()
        return super().search(features, k=k, event=event)

    def similar_scenes(self, video_title, scene_id, k=5):
        self._ensure()
        return super().similar_scenes(video_title, scene_id, k=k)


class SQLVideoDatabase(VideoDatabase):
    """A :class:`VideoDatabase` served out-of-core from a SQL catalog.

    Registration records, subject areas and per-leaf routing metadata
    (centres, discriminating dims) load eagerly — they are tiny — while
    feature payloads stay memory-mapped until a query actually routes
    into them.  The hierarchical index tree is rebuilt from the stored
    centres and is bit-identical to the eager build; so are flat, leaf
    and scene search results.

    Mutations (``register``, ``unregister``, ``save``) transparently
    materialise the whole catalog into RAM first and proceed on the
    base class; persist the result with
    :func:`repro.storage.sqlcatalog.save_database` (or the catalog's
    ``register_bulk``, which does this under one transaction).
    """

    def __init__(self, catalog: SQLCatalog, controller=None) -> None:
        super().__init__(controller)
        self._catalog = catalog
        self.out_of_core = True
        for area in catalog.subject_areas():
            ensure_subject_area(self._hierarchy, area)
        self._videos = catalog.videos()
        self._leaf_infos = {info.name: info for info in catalog.leaf_infos()}
        self._flat = OutOfCoreFlatIndex(catalog)
        self._scenes = LazySceneIndex(catalog)

    @classmethod
    def open(
        cls, db_dir: str | Path, max_open: int = DEFAULT_MAX_OPEN
    ) -> "SQLVideoDatabase":
        """Open the catalog stored in ``db_dir``."""
        return cls(SQLCatalog(db_dir, max_open=max_open))

    @property
    def catalog(self) -> SQLCatalog:
        """The backing SQL catalog."""
        return self._catalog

    @property
    def scene_index(self) -> LazySceneIndex:
        """Scene-centroid search over the stored centroid block."""
        return self._scenes

    def close(self) -> None:
        """Release the catalog connection and open mmap handles."""
        self._catalog.close()

    def describe(self) -> dict[str, int]:
        if self.out_of_core:
            return self._catalog.describe()
        return super().describe()

    def _build_subtree(self, concept: ConceptNode) -> IndexNode | None:
        if not self.out_of_core:
            return super()._build_subtree(concept)
        if concept.level is ConceptLevel.SCENE or not concept.children:
            info = self._leaf_infos.get(concept.name)
            if info is None:
                return None
            catalog = self._catalog
            node = IndexNode(
                name=concept.name,
                depth=concept.level.depth,
                leaf=LazyLeafHashIndex(
                    info.entry_count,
                    lambda info=info: _leaf_entries_for(catalog, info),
                ),
            )
            node.centers = info.centers
            node.dims = info.dims
            # Loader thunk, resolved (and cached) on the first ANN query
            # by repro.ann.index.resolve_ann; a load failure keeps the
            # thunk so a later query can recover.
            node.ann = lambda info=info: _ann_index_for(catalog, info)
            return node
        children = [
            child_node
            for child in concept.children
            if (child_node := self._build_subtree(child)) is not None
        ]
        if not children:
            return None
        return build_node(concept.name, concept.level.depth, children=children)

    # -- materialisation (the mutation path) --------------------------

    def _materialize(self) -> None:
        if not self.out_of_core:
            return
        leaf_entries: dict[str, list[ShotEntry]] = {}
        flat: list[ShotEntry | None] = [None] * self._catalog.entry_count()
        for info in self._leaf_infos.values():
            block = self._catalog.features.open(info.block.sha)
            bucket = []
            for row in self._catalog.leaf_rows(info.name):
                entry = ShotEntry(
                    video_title=row.video_title,
                    shot_id=row.shot_id,
                    scene_id=row.scene_id,
                    features=np.array(block[row.row]),
                )
                bucket.append(entry)
                flat[row.ord] = entry
            leaf_entries[info.name] = bucket
        self._leaf_entries = leaf_entries
        self._flat = FlatIndex([entry for entry in flat if entry is not None])
        self._index_root = None
        self.out_of_core = False

    def materialize(self) -> "SQLVideoDatabase":
        """Load every feature block into RAM; returns ``self``.

        After this the database behaves exactly like an eagerly loaded
        one (same objects, same orderings) and supports mutation.
        """
        self._materialize()
        return self

    def clone_subset(self, titles):
        """Materialise, then clone the subset (see base class)."""
        self._materialize()
        return super().clone_subset(titles)

    def register(self, result):
        self._materialize()
        return super().register(result)

    def unregister(self, title: str) -> int:
        self._materialize()
        return super().unregister(title)

    def save(self, path) -> None:
        self._materialize()
        super().save(path)
