"""SQLite schema and connection plumbing for the durable catalog.

One database directory gains two durable pieces::

    <db_dir>/
        catalog.sqlite   relational catalog (this module's schema)
        features/        content-addressed mmap feature blocks
                         (:mod:`repro.storage.featurestore`)

The catalog holds everything *relational* about a registered corpus —
videos, scene events, leaf metadata, per-shot entry rows, scene
centroid bookkeeping and a full-text search surface — while the bulky
``(N, 266)`` float64 feature matrices live outside SQLite as
memory-mapped ``.npy`` blocks referenced by sha256.

Schema versioning uses ``PRAGMA user_version``: :func:`connect` refuses
a catalog written by a different schema generation with a typed
:class:`~repro.errors.StorageError` instead of misreading it.  WAL mode
keeps concurrent readers from blocking the (single) writer.

FTS5 is probed once per process: when the linked SQLite lacks it, the
``search_fts`` virtual table is skipped and text search degrades to a
``LIKE`` scan over the plain ``search_docs`` table (recorded in the
``meta`` table so readers know which surface they got).
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

from repro.errors import StorageError

#: Current on-disk schema generation (``PRAGMA user_version``).
#: v2 added the additive ``ann_leaves`` table (per-leaf IVF quantizer
#: state); v1 catalogs are upgraded in place on open.
SCHEMA_VERSION = 2

#: File name of the SQL catalog inside a database directory.
CATALOG_NAME = "catalog.sqlite"

#: Directory name of the feature-block store inside a database directory.
FEATURES_DIR = "features"

#: Relational DDL, applied in order inside one transaction.
SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS videos (
        title           TEXT PRIMARY KEY,
        shot_count      INTEGER NOT NULL,
        scene_count     INTEGER NOT NULL,
        degraded_stages TEXT NOT NULL DEFAULT '[]'
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS video_events (
        title    TEXT NOT NULL,
        scene_id INTEGER NOT NULL,
        event    TEXT NOT NULL,
        PRIMARY KEY (title, scene_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS leaves (
        name         TEXT PRIMARY KEY,
        position     INTEGER NOT NULL,
        entry_count  INTEGER NOT NULL,
        block_sha    TEXT NOT NULL,
        rows         INTEGER NOT NULL,
        cols         INTEGER NOT NULL,
        centers      BLOB NOT NULL,
        centers_rows INTEGER NOT NULL,
        dims         BLOB NOT NULL,
        dims_count   INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS entries (
        ord         INTEGER PRIMARY KEY,
        leaf        TEXT NOT NULL,
        row         INTEGER NOT NULL,
        video_title TEXT NOT NULL,
        shot_id     INTEGER NOT NULL,
        scene_id    INTEGER NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_entries_leaf ON entries (leaf, row)",
    "CREATE INDEX IF NOT EXISTS idx_entries_video ON entries (video_title)",
    """
    CREATE TABLE IF NOT EXISTS scenes (
        row         INTEGER PRIMARY KEY,
        video_title TEXT NOT NULL,
        scene_id    INTEGER NOT NULL,
        event       TEXT NOT NULL,
        shot_count  INTEGER NOT NULL,
        UNIQUE (video_title, scene_id)
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_scenes_event ON scenes (event)",
    """
    CREATE TABLE IF NOT EXISTS scene_block (
        id        INTEGER PRIMARY KEY CHECK (id = 1),
        block_sha TEXT NOT NULL,
        rows      INTEGER NOT NULL,
        cols      INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS search_docs (
        doc_id INTEGER PRIMARY KEY,
        kind   TEXT NOT NULL,
        title  TEXT NOT NULL,
        body   TEXT NOT NULL
    )
    """,
    # Per-leaf ANN tier (schema v2).  The small trained arrays live
    # inline as BLOBs; the bulky uint8 code matrix is a content-addressed
    # feature-store block referenced by code_sha, GC'd like any other.
    """
    CREATE TABLE IF NOT EXISTS ann_leaves (
        leaf      TEXT PRIMARY KEY,
        cells     INTEGER NOT NULL,
        seed      INTEGER NOT NULL,
        code_sha  TEXT NOT NULL,
        rows      INTEGER NOT NULL,
        cols      INTEGER NOT NULL,
        centroids BLOB NOT NULL,
        "assign"  BLOB NOT NULL,
        scale     BLOB NOT NULL,
        "offset"  BLOB NOT NULL,
        sigs      BLOB NOT NULL
    )
    """,
)

#: DDL added by each schema generation after its predecessor, applied
#: additively when :func:`connect` opens an older catalog.
_UPGRADE_STATEMENTS: dict[int, tuple[str, ...]] = {
    2: (SCHEMA_STATEMENTS[-1],),
}

#: Every data table, in deletion order for a full catalog replace.
DATA_TABLES = (
    "videos",
    "video_events",
    "leaves",
    "entries",
    "scenes",
    "scene_block",
    "search_docs",
    "ann_leaves",
)

_FTS_PROBED: bool | None = None


def fts5_available() -> bool:
    """Whether the linked SQLite can create FTS5 virtual tables."""
    global _FTS_PROBED
    if _FTS_PROBED is None:
        probe = sqlite3.connect(":memory:")
        try:
            probe.execute("CREATE VIRTUAL TABLE probe USING fts5(body)")
            _FTS_PROBED = True
        except sqlite3.OperationalError:
            _FTS_PROBED = False
        finally:
            probe.close()
    return _FTS_PROBED


def catalog_path(db_dir: str | Path) -> Path:
    """Location of the SQL catalog inside a database directory."""
    return Path(db_dir) / CATALOG_NAME


def features_path(db_dir: str | Path) -> Path:
    """Location of the feature-block store inside a database directory."""
    return Path(db_dir) / FEATURES_DIR


def connect(path: str | Path, create: bool = False) -> sqlite3.Connection:
    """Open (optionally creating) a catalog, enforcing the schema version.

    WAL journal mode and ``synchronous=NORMAL`` give durable commits
    without an fsync per statement; ``check_same_thread=False`` lets the
    owning :class:`~repro.storage.sqlcatalog.SQLCatalog` serialise
    access on its own lock instead of sqlite3's thread check.

    Raises :class:`~repro.errors.StorageError` when the file is missing
    (without ``create``), unreadable, or carries a different
    ``user_version`` than :data:`SCHEMA_VERSION`.
    """
    path = Path(path)
    if not create and not path.exists():
        raise StorageError(f"no SQL catalog at {path}")
    try:
        conn = sqlite3.connect(path, check_same_thread=False)
    except sqlite3.Error as exc:
        raise StorageError(f"cannot open catalog {path}: {exc}") from exc
    try:
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA foreign_keys=ON")
        version = int(conn.execute("PRAGMA user_version").fetchone()[0])
        if version == 0 and create:
            with conn:
                for statement in SCHEMA_STATEMENTS:
                    conn.execute(statement)
                if fts5_available():
                    conn.execute(
                        "CREATE VIRTUAL TABLE IF NOT EXISTS search_fts "
                        "USING fts5(kind, title, body)"
                    )
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES ('fts', ?)",
                    ("1" if fts5_available() else "0",),
                )
                conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        elif 0 < version < SCHEMA_VERSION:
            # Forward upgrades are purely additive: apply each newer
            # generation's DDL in order and stamp the new version.  A
            # v1 catalog keeps serving (leaves without ann_leaves rows
            # fall back to deterministic in-process ANN builds).
            with conn:
                for target in range(version + 1, SCHEMA_VERSION + 1):
                    for statement in _UPGRADE_STATEMENTS.get(target, ()):
                        conn.execute(statement)
                conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        elif version != SCHEMA_VERSION:
            raise StorageError(
                f"catalog {path} has schema version {version}, "
                f"this build reads version {SCHEMA_VERSION} — "
                f"re-run `classminer migrate`"
            )
    except sqlite3.Error as exc:
        conn.close()
        raise StorageError(f"cannot initialise catalog {path}: {exc}") from exc
    except StorageError:
        conn.close()
        raise
    return conn
