"""Synthetic corpora for storage smoke tests and benchmarks.

The real miner takes seconds per video; exercising a thousand-video
catalog needs registrations that cost microseconds instead.
:func:`build_synthetic_database` fabricates plausible feature vectors —
non-negative 256-bin histograms normalised to unit mass plus a small
10-d texture tail, the exact shape
:func:`~repro.database.index.combine_features` produces — and registers
them through :meth:`~repro.database.catalog.VideoDatabase.register_entries`,
so every downstream structure (leaf buckets, routing centres, flat
ordinals, scene centroids) is built by the production code paths.

Deterministic per seed: the same arguments always produce the same
database, and therefore the same stored catalog bytes.
"""

from __future__ import annotations

import numpy as np

from repro.database.catalog import VideoDatabase
from repro.types import EventKind

#: Feature layout must match combine_features (256 histogram + 10 texture).
_HIST_DIMS = 256
_TEXTURE_DIMS = 10


def synthetic_features(
    rng: np.random.Generator, concentration: int
) -> np.ndarray:
    """One plausible 266-d combined feature vector.

    ``concentration`` biases which coarse histogram quadrant carries the
    mass, so leaf hash signatures spread across buckets the way real
    footage does instead of collapsing into one.
    """
    histogram = rng.random(_HIST_DIMS) * 0.2
    quarter = _HIST_DIMS // 4
    start = (concentration % 4) * quarter
    histogram[start : start + quarter] += rng.random(quarter) + 0.5
    histogram /= histogram.sum()
    texture = rng.random(_TEXTURE_DIMS) * 0.3
    return np.concatenate([histogram, texture])


def build_synthetic_database(
    videos: int = 100,
    shots_per_video: int = 12,
    scenes_per_video: int = 3,
    seed: int = 0,
) -> VideoDatabase:
    """A deterministic synthetic corpus registered the production way.

    Titles are ``synthetic_00000`` …; events cycle through the three
    mineable kinds plus ``unknown`` so every scene-concept leaf of the
    on-demand ``general`` subject area is populated.
    """
    rng = np.random.default_rng(seed)
    kinds = EventKind.known_kinds() + (EventKind.UNKNOWN,)
    database = VideoDatabase()
    for v in range(videos):
        scenes = []
        per_scene = max(1, shots_per_video // scenes_per_video)
        shots_left = shots_per_video
        for s in range(scenes_per_video):
            count = per_scene if s < scenes_per_video - 1 else shots_left
            shots_left -= count
            kind = kinds[(v + s) % len(kinds)]
            scenes.append(
                (
                    s,
                    kind,
                    [synthetic_features(rng, v + s + shot) for shot in range(count)],
                )
            )
        database.register_entries(f"synthetic_{v:05d}", scenes)
    return database
