"""The SQL catalog: durable relational state + feature-block bookkeeping.

:class:`SQLCatalog` is the storage subsystem's front door.  It owns one
WAL-mode SQLite connection (schema in :mod:`repro.storage.schema`) and
the directory-sibling :class:`~repro.storage.featurestore.FeatureStore`
holding the packed feature matrices the rows refer to.

Write model
-----------
The artifact store remains the corpus's source of truth, so the catalog
is rebuilt by *full replace*: :func:`save_database` serialises an
in-memory :class:`~repro.database.catalog.VideoDatabase` — leaf blocks,
routing centres, discriminating dims, scene centroids, FTS documents —
inside **one** ``BEGIN IMMEDIATE`` transaction.  A failure mid-write
rolls the relational state back to the previous generation and deletes
any feature blocks the aborted write introduced; readers never see a
half-replaced catalog.  A successful commit garbage-collects the
blocks only the superseded generation referenced (both cleanup paths
re-check the live catalog's references before unlinking, so a block a
concurrent writer just committed stays).  :meth:`SQLCatalog.register_bulk`
layers the incremental API on top: materialise, register, replace —
still one transaction.

Determinism contract
--------------------
Everything derived here (leaf routing centres via
:func:`~repro.database.index._kcenters`, discriminating dimensions,
scene centroids via ``np.stack(...).mean(axis=0)``) is computed with
the *identical* operations and input orderings the in-RAM
:meth:`~repro.database.catalog.VideoDatabase.build_index` and
:func:`~repro.serving.snapshot._derive_scene_index` paths use, which is
what lets :mod:`repro.storage.lazy` reproduce query results
bit-for-bit.

Resilience + observability
--------------------------
Every statement runs through a retry loop: a transiently locked
database (another process's writer, or the ``storage.db_locked`` fault
point) is retried with backoff and counted; exhausting the budget
raises a typed :class:`~repro.errors.StorageError`.  Query latency
lands in the ``storage_catalog_query_seconds`` histogram.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.ann.index import build_leaf_ann
from repro.ann.quantizer import ANN_SEED, DEFAULT_ANN_CELLS
from repro.database.catalog import RegisteredVideo, VideoDatabase
from repro.database.index import (
    DEFAULT_CENTERS,
    DEFAULT_REDUCED_DIM,
    _kcenters,
    discriminating_dimensions,
)
from repro.errors import FaultInjectedError, StorageError
from repro.obs.registry import get_registry
from repro.obs.trace import span as obs_span
from repro.resilience.faults import fault_point
from repro.storage.featurestore import (
    DEFAULT_MAX_OPEN,
    BlockRef,
    FeatureStore,
)
from repro.storage.schema import (
    DATA_TABLES,
    catalog_path,
    connect,
    features_path,
)
from repro.types import EventKind

#: Locked-database retry budget and base backoff.
LOCK_RETRIES = 5
LOCK_BACKOFF = 0.01

#: sqlite bind-variable batches stay under the historic 999 limit.
_BATCH = 500


def _pack(array: np.ndarray) -> bytes:
    """Serialise a contiguous array's cells for a BLOB column."""
    return np.ascontiguousarray(array).tobytes()


def _unpack_f64(blob: bytes, rows: int, cols: int) -> np.ndarray:
    """Rebuild a float64 matrix packed by :func:`_pack`."""
    return np.frombuffer(blob, dtype=np.float64).reshape(rows, cols).copy()


def _unpack_i64(blob: bytes, count: int) -> np.ndarray:
    """Rebuild an int64 vector packed by :func:`_pack`."""
    return np.frombuffer(blob, dtype=np.int64).reshape(count).copy()


@dataclass(frozen=True)
class LeafInfo:
    """Stored metadata of one scene-concept leaf."""

    name: str
    position: int
    entry_count: int
    block: BlockRef
    centers: np.ndarray
    dims: np.ndarray


@dataclass(frozen=True)
class AnnLeafRow:
    """Stored ANN quantizer state of one leaf (codes live in a block)."""

    leaf: str
    cells: int
    seed: int
    code_sha: str
    rows: int
    cols: int
    centroids: np.ndarray
    assign: np.ndarray
    scale: np.ndarray
    offset: np.ndarray
    sigs: np.ndarray


@dataclass(frozen=True)
class EntryRow:
    """Stored metadata of one indexed shot (features live in the block)."""

    ord: int
    leaf: str
    row: int
    video_title: str
    shot_id: int
    scene_id: int


@dataclass(frozen=True)
class SceneRow:
    """Stored metadata of one indexed scene centroid."""

    row: int
    video_title: str
    scene_id: int
    event: str
    shot_count: int


@dataclass(frozen=True)
class SearchHit:
    """One full-text search result."""

    kind: str
    title: str
    body: str
    rank: float


class SQLCatalog:
    """WAL-mode SQLite catalog plus its sibling feature store.

    Thread-safe: all statements serialise on one re-entrant lock (the
    lazy readers in :mod:`repro.storage.lazy` are called from serving
    worker threads).
    """

    def __init__(
        self,
        db_dir: str | Path,
        create: bool = False,
        max_open: int = DEFAULT_MAX_OPEN,
    ) -> None:
        self._db_dir = Path(db_dir)
        self._path = catalog_path(self._db_dir)
        if create:
            self._db_dir.mkdir(parents=True, exist_ok=True)
        self._conn = connect(self._path, create=create)
        self._conn.isolation_level = None  # explicit transactions only
        self._lock = threading.RLock()
        self._features = FeatureStore(features_path(self._db_dir), max_open=max_open)
        registry = get_registry()
        self._queries = registry.counter(
            "storage_catalog_queries_total",
            "Statements executed against the SQL catalog.",
        )
        self._latency = registry.histogram(
            "storage_catalog_query_seconds",
            "SQL catalog statement latency.",
        )
        self._locked_retries = registry.counter(
            "storage_catalog_locked_retries_total",
            "Catalog statements retried because the database was locked.",
        )

    # -- plumbing ------------------------------------------------------

    @property
    def path(self) -> Path:
        """The ``catalog.sqlite`` file."""
        return self._path

    @property
    def db_dir(self) -> Path:
        """The database directory this catalog lives in."""
        return self._db_dir

    @property
    def features(self) -> FeatureStore:
        """The sibling feature-block store."""
        return self._features

    def close(self) -> None:
        """Release the connection and every open mmap handle."""
        with self._lock:
            self._conn.close()
            self._features.close()

    def __enter__(self) -> "SQLCatalog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _run(self, fn):
        """Execute ``fn(conn)`` with locked-database retries and metrics.

        A transient lock — a concurrent writer's ``sqlite3.OperationalError``
        or the ``storage.db_locked`` fault point — is retried up to
        :data:`LOCK_RETRIES` times with linear backoff; exhaustion
        raises :class:`~repro.errors.StorageError`.  Any other SQLite
        error becomes a :class:`StorageError` immediately.
        """
        last: Exception | None = None
        for attempt in range(LOCK_RETRIES + 1):
            if attempt:
                self._locked_retries.inc()
                time.sleep(LOCK_BACKOFF * attempt)
            start = time.perf_counter()
            try:
                with self._lock:
                    fault_point("storage.db_locked")
                    result = fn(self._conn)
                self._queries.inc()
                self._latency.record(time.perf_counter() - start)
                return result
            except FaultInjectedError as exc:
                last = exc
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise StorageError(f"catalog statement failed: {exc}") from exc
                last = exc
            except sqlite3.Error as exc:
                raise StorageError(f"catalog statement failed: {exc}") from exc
        raise StorageError(
            f"catalog stayed locked after {LOCK_RETRIES} retries: {last}"
        ) from last

    # -- meta ----------------------------------------------------------

    def meta(self, key: str) -> str | None:
        """One ``meta`` table value (None when absent)."""
        def op(conn: sqlite3.Connection):
            row = conn.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
            return None if row is None else str(row[0])

        return self._run(op)

    @property
    def fts_enabled(self) -> bool:
        """Whether this catalog carries an FTS5 search surface."""
        return self.meta("fts") == "1"

    def subject_areas(self) -> list[str]:
        """Subject-area subclusters, in hierarchy creation order."""
        raw = self.meta("subject_areas")
        return list(json.loads(raw)) if raw else []

    # -- readers -------------------------------------------------------

    def videos(self) -> dict[str, RegisteredVideo]:
        """Every registration record, keyed by title."""
        def op(conn: sqlite3.Connection):
            records: dict[str, RegisteredVideo] = {}
            for title, shots, scenes, degraded in conn.execute(
                "SELECT title, shot_count, scene_count, degraded_stages "
                "FROM videos ORDER BY rowid"
            ):
                records[title] = RegisteredVideo(
                    title=title,
                    shot_count=int(shots),
                    scene_count=int(scenes),
                    degraded_stages=tuple(json.loads(degraded)),
                )
            for title, scene_id, event in conn.execute(
                "SELECT title, scene_id, event FROM video_events"
            ):
                if title in records:
                    records[title].events[int(scene_id)] = str(event)
            return records

        return self._run(op)

    def entry_count(self) -> int:
        """Total indexed shots."""
        return int(
            self._run(lambda conn: conn.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()[0])
        )

    def scene_count(self) -> int:
        """Total indexed scene centroids."""
        return int(
            self._run(lambda conn: conn.execute(
                "SELECT COUNT(*) FROM scenes"
            ).fetchone()[0])
        )

    def describe(self) -> dict[str, int]:
        """Shot counts per scene-concept leaf (catalog statistics)."""
        def op(conn: sqlite3.Connection):
            return {
                str(leaf): int(count)
                for leaf, count in conn.execute(
                    "SELECT leaf, COUNT(*) FROM entries GROUP BY leaf ORDER BY leaf"
                )
            }

        return self._run(op)

    def leaf_infos(self) -> list[LeafInfo]:
        """Every stored leaf, in hierarchy creation order."""
        def op(conn: sqlite3.Connection):
            infos = []
            for (
                name, position, entry_count, sha, rows, cols,
                centers, centers_rows, dims, dims_count,
            ) in conn.execute(
                "SELECT name, position, entry_count, block_sha, rows, cols, "
                "centers, centers_rows, dims, dims_count "
                "FROM leaves ORDER BY position"
            ):
                infos.append(
                    LeafInfo(
                        name=str(name),
                        position=int(position),
                        entry_count=int(entry_count),
                        block=BlockRef(sha=str(sha), rows=int(rows), cols=int(cols)),
                        centers=_unpack_f64(centers, int(centers_rows), int(cols)),
                        dims=_unpack_i64(dims, int(dims_count)),
                    )
                )
            return infos

        return self._run(op)

    def ann_leaf_row(self, name: str) -> AnnLeafRow | None:
        """One leaf's stored ANN quantizer state (None when absent).

        Catalogs written before schema v2 (or whose write predates the
        ANN tier) simply have no row; callers fall back to an in-process
        deterministic build.
        """
        def op(conn: sqlite3.Connection):
            return conn.execute(
                "SELECT cells, seed, code_sha, rows, cols, centroids, "
                '"assign", scale, "offset", sigs FROM ann_leaves WHERE leaf = ?',
                (name,),
            ).fetchone()

        row = self._run(op)
        if row is None:
            return None
        cells, seed, code_sha, rows, cols, centroids, assign, scale, offset, sigs = row
        rows, cols, cells = int(rows), int(cols), int(cells)
        return AnnLeafRow(
            leaf=name,
            cells=cells,
            seed=int(seed),
            code_sha=str(code_sha),
            rows=rows,
            cols=cols,
            centroids=_unpack_f64(centroids, cells, cols),
            assign=_unpack_i64(assign, rows),
            scale=np.frombuffer(scale, dtype=np.float64).copy(),
            offset=np.frombuffer(offset, dtype=np.float64).copy(),
            sigs=np.frombuffer(sigs, dtype=np.int64).reshape(rows, -1).copy(),
        )

    def leaf_rows(self, name: str) -> list[EntryRow]:
        """A leaf's entries in block-row order."""
        def op(conn: sqlite3.Connection):
            return [
                EntryRow(
                    ord=int(ordinal), leaf=name, row=int(row),
                    video_title=str(title), shot_id=int(shot), scene_id=int(scene),
                )
                for ordinal, row, title, shot, scene in conn.execute(
                    "SELECT ord, row, video_title, shot_id, scene_id "
                    "FROM entries WHERE leaf = ? ORDER BY row",
                    (name,),
                )
            ]

        return self._run(op)

    def entries_by_ord(self, ords: list[int]) -> dict[int, EntryRow]:
        """Entry metadata for specific flat ordinals (batched IN query)."""
        result: dict[int, EntryRow] = {}

        def op_for(chunk: list[int]):
            marks = ",".join("?" * len(chunk))

            def op(conn: sqlite3.Connection):
                return conn.execute(
                    "SELECT ord, leaf, row, video_title, shot_id, scene_id "
                    f"FROM entries WHERE ord IN ({marks})",
                    chunk,
                ).fetchall()

            return op

        for i in range(0, len(ords), _BATCH):
            chunk = [int(o) for o in ords[i : i + _BATCH]]
            for ordinal, leaf, row, title, shot, scene in self._run(op_for(chunk)):
                result[int(ordinal)] = EntryRow(
                    ord=int(ordinal), leaf=str(leaf), row=int(row),
                    video_title=str(title), shot_id=int(shot), scene_id=int(scene),
                )
        return result

    def scene_rows(self, event: str | None = None) -> list[SceneRow]:
        """Scene centroid rows in block-row order, optionally per event."""
        def op(conn: sqlite3.Connection):
            if event is None:
                cursor = conn.execute(
                    "SELECT row, video_title, scene_id, event, shot_count "
                    "FROM scenes ORDER BY row"
                )
            else:
                cursor = conn.execute(
                    "SELECT row, video_title, scene_id, event, shot_count "
                    "FROM scenes WHERE event = ? ORDER BY row",
                    (event,),
                )
            return [
                SceneRow(
                    row=int(row), video_title=str(title), scene_id=int(scene),
                    event=str(kind), shot_count=int(shots),
                )
                for row, title, scene, kind, shots in cursor
            ]

        return self._run(op)

    def scene_row_for(self, video_title: str, scene_id: int) -> SceneRow | None:
        """One scene's centroid row (None when not indexed)."""
        def op(conn: sqlite3.Connection):
            row = conn.execute(
                "SELECT row, video_title, scene_id, event, shot_count "
                "FROM scenes WHERE video_title = ? AND scene_id = ?",
                (video_title, int(scene_id)),
            ).fetchone()
            if row is None:
                return None
            return SceneRow(
                row=int(row[0]), video_title=str(row[1]), scene_id=int(row[2]),
                event=str(row[3]), shot_count=int(row[4]),
            )

        return self._run(op)

    def scene_block_ref(self) -> BlockRef | None:
        """Address of the scene-centroid block (None when no scenes)."""
        def op(conn: sqlite3.Connection):
            row = conn.execute(
                "SELECT block_sha, rows, cols FROM scene_block WHERE id = 1"
            ).fetchone()
            if row is None:
                return None
            return BlockRef(sha=str(row[0]), rows=int(row[1]), cols=int(row[2]))

        return self._run(op)

    def search_text(self, text: str, k: int = 10) -> list[SearchHit]:
        """Full-text search over video/scene/concept metadata.

        Uses the FTS5 surface (bm25-ranked) when the catalog has one;
        otherwise falls back to an all-tokens ``LIKE`` scan over the
        plain ``search_docs`` table.  Tokens are quoted before matching,
        so user text cannot inject FTS query syntax.
        """
        tokens = [t for t in text.split() if t.strip('"')]
        if not tokens:
            return []
        with obs_span("storage.search_text", tokens=len(tokens)):
            if self.fts_enabled:
                query = " ".join('"' + t.replace('"', "") + '"' for t in tokens)

                def op(conn: sqlite3.Connection):
                    return conn.execute(
                        "SELECT kind, title, body, bm25(search_fts) "
                        "FROM search_fts WHERE search_fts MATCH ? "
                        "ORDER BY bm25(search_fts) LIMIT ?",
                        (query, int(k)),
                    ).fetchall()

            else:
                clause = " AND ".join(
                    "(body LIKE ? ESCAPE '\\' OR title LIKE ? ESCAPE '\\')"
                    for _ in tokens
                )
                params: list[object] = []
                for token in tokens:
                    # % and _ are LIKE wildcards: escape them (and the
                    # escape char itself) so tokens match literally,
                    # mirroring the FTS surface's quoted-token matching.
                    escaped = (
                        token.replace("\\", "\\\\")
                        .replace("%", "\\%")
                        .replace("_", "\\_")
                    )
                    like = f"%{escaped}%"
                    params.extend((like, like))
                params.append(int(k))

                def op(conn: sqlite3.Connection):
                    return conn.execute(
                        "SELECT kind, title, body, 0.0 FROM search_docs "
                        f"WHERE {clause} ORDER BY doc_id LIMIT ?",
                        params,
                    ).fetchall()

            return [
                SearchHit(
                    kind=str(kind), title=str(title),
                    body=str(body), rank=float(rank),
                )
                for kind, title, body, rank in self._run(op)
            ]

    # -- writer --------------------------------------------------------

    def replace_from(
        self,
        database: VideoDatabase,
        routing_override: dict[str, tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> int:
        """Replace the whole catalog with ``database``'s state.

        Feature blocks are written (content-addressed, so re-saving an
        unchanged corpus writes nothing new) before one ``BEGIN
        IMMEDIATE`` transaction swaps every relational table.  On any
        failure the transaction rolls back and blocks this call
        introduced are deleted — the previous catalog generation stays
        intact.  After a successful commit, blocks only the superseded
        generation referenced are deleted, so the feature store does
        not grow without bound across repeated replaces.  Both cleanup
        paths re-query the *live* catalog before unlinking, so a block
        a concurrent writer just published and committed a reference to
        is never removed.  Returns the number of shot entries stored.

        ``routing_override`` maps a leaf name to the ``(centers, dims)``
        pair to store for it instead of recomputing them from the local
        population.  Shard builders pass the *full-corpus* routing
        metadata here so every shard's index tree routes — and scores
        leaves in the same discriminating sub-space — exactly like the
        unsharded catalog.
        """
        flat_entries = database.flat_index.entries
        if not flat_entries:
            raise StorageError("cannot store an empty database")
        ord_of = {entry.key: i for i, entry in enumerate(flat_entries)}

        before = self._referenced_blocks()
        new_blocks: set[str] = set()
        try:
            count = self._replace_from(
                database, flat_entries, ord_of, before, new_blocks,
                routing_override or {},
            )
        except BaseException:
            # The relational state rolled back (or was never touched);
            # drop the blocks only this aborted write introduced.
            # Best-effort: never mask the original failure.
            try:
                self._drop_unreferenced(new_blocks)
            except StorageError:
                pass
            raise
        # The commit superseded the previous generation; garbage-collect
        # the blocks only it referenced.
        self._drop_unreferenced(before)
        return count

    def _drop_unreferenced(self, candidates: set[str]) -> None:
        """Delete candidate blocks the live catalog no longer references.

        The reference set is re-read at deletion time rather than taken
        from a snapshot: with WAL mode and the locked-retry loop another
        process may have committed its own generation meanwhile, and
        content addressing means it can legitimately share our digests.
        """
        if not candidates:
            return
        for sha in candidates - self._referenced_blocks():
            self._features.delete(sha)

    def _replace_from(
        self, database, flat_entries, ord_of, before, new_blocks, routing_override
    ) -> int:
        # Leaf blocks + routing metadata, in leaf creation order.  The
        # centres and dims are computed exactly as build_node() would,
        # so the lazy index tree routes identically to the eager one.
        leaves_payload = []
        entry_payload = []
        ann_payload = []
        for position, (name, entries) in enumerate(database.leaf_entries().items()):
            population = np.stack([entry.features for entry in entries])
            ref = self._features.put(population)
            if ref.sha not in before:
                new_blocks.add(ref.sha)
            if name in routing_override:
                centers, dims = routing_override[name]
                centers = np.asarray(centers, dtype=np.float64)
                dims = np.asarray(dims, dtype=np.int64)
            else:
                centers = _kcenters(population, DEFAULT_CENTERS)
                dims = discriminating_dimensions(population, DEFAULT_REDUCED_DIM)
            leaves_payload.append(
                (
                    name, position, len(entries), ref.sha, ref.rows, ref.cols,
                    _pack(centers), int(centers.shape[0]),
                    _pack(dims.astype(np.int64)), int(dims.shape[0]),
                )
            )
            entry_payload.extend(
                (
                    ord_of[entry.key], name, row,
                    entry.video_title, entry.shot_id, entry.scene_id,
                )
                for row, entry in enumerate(entries)
            )
            # ANN tier: train this leaf's quantizer here so every saved
            # catalog (including each shard's, which trains over its own
            # rows) carries a ready index.  Deterministic in the leaf
            # population, so re-saving an unchanged corpus re-derives
            # the same codes block and content addressing dedups it.
            ann = build_leaf_ann(
                population, dims, cells=DEFAULT_ANN_CELLS, seed=ANN_SEED
            )
            code_ref = self._features.put(ann.codes, dtype=np.uint8)
            if code_ref.sha not in before:
                new_blocks.add(code_ref.sha)
            ann_payload.append(
                (
                    name, ann.n_cells, ANN_SEED, code_ref.sha,
                    code_ref.rows, code_ref.cols,
                    _pack(ann.centroids), _pack(ann.assign),
                    _pack(ann.scale), _pack(ann.offset), _pack(ann.sigs),
                )
            )

        # Scene centroids: same grouping, ordering and mean() op as the
        # serving layer's _derive_scene_index, for bit-identical scores.
        records = database.videos
        groups: dict[tuple[str, int], list[np.ndarray]] = {}
        for entry in flat_entries:
            if entry.scene_id < 0:
                continue
            groups.setdefault((entry.video_title, entry.scene_id), []).append(
                entry.features
            )
        scene_payload = []
        centroids = []
        for row, ((title, scene_id), features) in enumerate(sorted(groups.items())):
            record = records.get(title)
            value = (
                record.events.get(scene_id, EventKind.UNKNOWN.value)
                if record
                else EventKind.UNKNOWN.value
            )
            scene_payload.append((row, title, scene_id, value, len(features)))
            centroids.append(np.stack(features).mean(axis=0))
        scene_ref: BlockRef | None = None
        if centroids:
            scene_ref = self._features.put(np.stack(centroids))
            if scene_ref.sha not in before:
                new_blocks.add(scene_ref.sha)

        video_payload = [
            (
                title, record.shot_count, record.scene_count,
                json.dumps(list(record.degraded_stages)),
            )
            for title, record in records.items()
        ]
        event_payload = [
            (title, scene_id, value)
            for title, record in records.items()
            for scene_id, value in record.events.items()
        ]
        education = database.hierarchy.find("medical_education")
        areas = [child.name for child in education.children] if education else []
        docs = _search_documents(records, scene_payload, database.leaf_entries())

        def op(conn: sqlite3.Connection):
            conn.execute("BEGIN IMMEDIATE")
            try:
                for table in DATA_TABLES:
                    conn.execute(f"DELETE FROM {table}")
                if self.fts_enabled:
                    conn.execute("DELETE FROM search_fts")
                conn.executemany(
                    "INSERT INTO videos (title, shot_count, scene_count, "
                    "degraded_stages) VALUES (?, ?, ?, ?)",
                    video_payload,
                )
                conn.executemany(
                    "INSERT INTO video_events (title, scene_id, event) "
                    "VALUES (?, ?, ?)",
                    event_payload,
                )
                conn.executemany(
                    "INSERT INTO leaves (name, position, entry_count, block_sha, "
                    "rows, cols, centers, centers_rows, dims, dims_count) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    leaves_payload,
                )
                conn.executemany(
                    "INSERT INTO entries (ord, leaf, row, video_title, shot_id, "
                    "scene_id) VALUES (?, ?, ?, ?, ?, ?)",
                    entry_payload,
                )
                conn.executemany(
                    "INSERT INTO scenes (row, video_title, scene_id, event, "
                    "shot_count) VALUES (?, ?, ?, ?, ?)",
                    scene_payload,
                )
                if scene_ref is not None:
                    conn.execute(
                        "INSERT INTO scene_block (id, block_sha, rows, cols) "
                        "VALUES (1, ?, ?, ?)",
                        (scene_ref.sha, scene_ref.rows, scene_ref.cols),
                    )
                conn.executemany(
                    "INSERT INTO ann_leaves (leaf, cells, seed, code_sha, "
                    'rows, cols, centroids, "assign", scale, "offset", sigs) '
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    ann_payload,
                )
                conn.executemany(
                    "INSERT INTO search_docs (kind, title, body) VALUES (?, ?, ?)",
                    docs,
                )
                if self.fts_enabled:
                    conn.executemany(
                        "INSERT INTO search_fts (kind, title, body) "
                        "VALUES (?, ?, ?)",
                        docs,
                    )
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) "
                    "VALUES ('subject_areas', ?)",
                    (json.dumps(areas),),
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

        with obs_span(
            "storage.replace", entries=len(entry_payload), leaves=len(leaves_payload)
        ):
            self._run(op)
        return len(entry_payload)

    def register_bulk(self, results, skip_registered: bool = False) -> list[RegisteredVideo]:
        """Transactionally register mined results into the stored catalog.

        Materialises the current catalog into an in-memory
        :class:`VideoDatabase`, registers the new results, then replaces
        the stored catalog in one transaction — a failure anywhere
        leaves the previous generation untouched.  Returns the records
        added by this call (mirroring
        :meth:`VideoDatabase.register_bulk`).
        """
        from repro.storage.lazy import SQLVideoDatabase

        staging = (
            SQLVideoDatabase(self).materialize()
            if self.entry_count()
            else VideoDatabase()
        )
        added = staging.register_bulk(results, skip_registered=skip_registered)
        if added:
            self.replace_from(staging)
        return added

    def _referenced_blocks(self) -> set[str]:
        """Digests the current catalog generation refers to."""
        def op(conn: sqlite3.Connection):
            shas = {
                str(row[0])
                for row in conn.execute("SELECT block_sha FROM leaves")
            }
            shas.update(
                str(row[0])
                for row in conn.execute("SELECT block_sha FROM scene_block")
            )
            shas.update(
                str(row[0])
                for row in conn.execute("SELECT code_sha FROM ann_leaves")
            )
            return shas

        return self._run(op)


def _search_documents(
    records: dict[str, RegisteredVideo],
    scene_payload: list[tuple],
    leaf_entries: dict,
) -> list[tuple[str, str, str]]:
    """Flatten the corpus into (kind, title, body) FTS documents."""
    docs: list[tuple[str, str, str]] = []
    for title, record in records.items():
        events = sorted(set(record.events.values()))
        body = " ".join(
            [title.replace("_", " ")]
            + events
            + [f"degraded {stage}" for stage in record.degraded_stages]
        )
        docs.append(("video", title, body))
    for _row, title, scene_id, value, shot_count in scene_payload:
        docs.append(
            (
                "scene",
                f"{title}/scene-{scene_id}",
                f"{title.replace('_', ' ')} scene {scene_id} {value} "
                f"{shot_count} shots",
            )
        )
    for leaf in leaf_entries:
        docs.append(("concept", leaf, leaf.replace("/", " ").replace("_", " ")))
    return docs


def save_database(
    database: VideoDatabase,
    db_dir: str | Path,
    routing_override: dict[str, tuple[np.ndarray, np.ndarray]] | None = None,
) -> Path:
    """Persist ``database`` as ``<db_dir>/catalog.sqlite`` + feature blocks.

    The SQLite counterpart of :meth:`VideoDatabase.save`; returns the
    catalog path.  Creates the schema on first use.  ``routing_override``
    is forwarded to :meth:`SQLCatalog.replace_from` (shard builders use
    it to pin full-corpus routing metadata).
    """
    with obs_span("storage.save", videos=len(database.videos)):
        with SQLCatalog(db_dir, create=True) as catalog:
            catalog.replace_from(database, routing_override=routing_override)
    return catalog_path(db_dir)
