"""Content-addressed, memory-mapped feature-block store.

The catalog's bulky payload — packed ``(N, 266)`` float64 feature
matrices, one block per scene-concept leaf plus one block of scene
centroids — lives outside SQLite as plain ``.npy`` files addressed by
the sha256 of their bytes::

    <db_dir>/features/<sha[:2]>/<sha>.npy

The layout mirrors the ingest artifact store (two-level fan-out,
tmp-file + ``os.replace`` atomic publish) and its integrity contract:
the file *name* is the checksum, computed with the same streaming
:func:`~repro.resilience.integrity.file_digest` the PR-5 artifact
checksums use, so :meth:`FeatureStore.verify` needs no side manifest.

Blocks are opened with ``np.load(..., mmap_mode="r")`` — the OS pages
rows in on demand, so a cold-started process touches only the blocks
its queries actually route into, and resident memory stays independent
of corpus size.  A small LRU bounds the number of simultaneously open
mmaps; hit/miss counters and an open-handle gauge publish through the
process metrics registry, and the ``storage.mmap_truncated`` fault
point lets chaos runs inject read failures here.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import IntegrityError, StorageError
from repro.obs.registry import get_registry
from repro.resilience.faults import fault_point
from repro.resilience.integrity import file_digest

#: Default bound on simultaneously open mmap handles.
DEFAULT_MAX_OPEN = 32


@dataclass(frozen=True)
class BlockRef:
    """Identity and shape of one stored feature block."""

    sha: str
    rows: int
    cols: int

    @property
    def nbytes(self) -> int:
        """Payload size of the block at float64 width (the feature-matrix
        common case; quantized uint8 code blocks are 8x smaller on disk,
        which the ANN docs quote from file sizes, not this property)."""
        return self.rows * self.cols * 8


class FeatureStore:
    """Content-addressed ``.npy`` blocks with a bounded mmap cache.

    Thread-safe: serving workers share one store; the LRU and its
    counters serialise on an internal lock, while the returned memmap
    arrays themselves are read-only and safe to share.
    """

    def __init__(self, root: str | Path, max_open: int = DEFAULT_MAX_OPEN) -> None:
        if max_open < 1:
            raise StorageError("feature store needs max_open >= 1")
        self._root = Path(root)
        self._max_open = max_open
        self._lock = threading.Lock()
        self._open: OrderedDict[str, np.ndarray] = OrderedDict()
        registry = get_registry()
        self._hits = registry.counter(
            "storage_block_cache_hits_total",
            "Feature-block opens served from the mmap LRU.",
        )
        self._misses = registry.counter(
            "storage_block_cache_misses_total",
            "Feature-block opens that mapped a file.",
        )
        self._gauge = registry.gauge(
            "storage_block_open_mmaps",
            "Feature blocks currently memory-mapped.",
        )

    @property
    def root(self) -> Path:
        """Root directory of the store."""
        return self._root

    def path_for(self, sha: str) -> Path:
        """File a block with digest ``sha`` lives in (may not exist)."""
        return self._root / sha[:2] / f"{sha}.npy"

    def put(self, matrix: np.ndarray, dtype=np.float64) -> BlockRef:
        """Store one 2-D block; returns its content address.

        Idempotent: a block whose bytes are already stored is not
        rewritten (content addressing deduplicates identical leaf
        populations for free).  The write is atomic — the bytes land in
        a temp file first and are renamed into place — so a crash can
        never leave a half-written block under a valid digest name.
        ``dtype`` defaults to the float64 feature-matrix layout; the ANN
        tier stores uint8 code blocks through the same path (``np.save``
        records the dtype, so :meth:`open` needs no hint).
        """
        matrix = np.ascontiguousarray(matrix, dtype=dtype)
        if matrix.ndim != 2:
            raise StorageError(
                f"feature blocks are 2-D, got shape {matrix.shape}"
            )
        self._root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(prefix=".tmp-block-", suffix=".npy", dir=self._root)
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, matrix)
            sha = file_digest(tmp)
            final = self.path_for(sha)
            if final.exists():
                tmp.unlink()
            else:
                final.parent.mkdir(parents=True, exist_ok=True)
                os.replace(tmp, final)
        finally:
            tmp.unlink(missing_ok=True)
        return BlockRef(sha=sha, rows=int(matrix.shape[0]), cols=int(matrix.shape[1]))

    def open(self, sha: str) -> np.ndarray:
        """Memory-map the block addressed by ``sha`` (read-only).

        Served from the LRU when already mapped; otherwise the file is
        mapped and the least recently used handle beyond the bound is
        dropped.  A missing block raises
        :class:`~repro.errors.StorageError`; a truncated or unparsable
        one raises :class:`~repro.errors.IntegrityError`, matching the
        artifact store's corruption contract.
        """
        fault_point("storage.mmap_truncated")
        with self._lock:
            cached = self._open.get(sha)
            if cached is not None:
                self._open.move_to_end(sha)
                self._hits.inc()
                return cached
        path = self.path_for(sha)
        if not path.exists():
            raise StorageError(f"no feature block {sha[:12]}… in {self._root}")
        try:
            block = np.load(path, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise IntegrityError(
                f"feature block {sha[:12]}… is corrupt or truncated: {exc}"
            ) from exc
        with self._lock:
            self._misses.inc()
            self._open[sha] = block
            self._open.move_to_end(sha)
            while len(self._open) > self._max_open:
                self._open.popitem(last=False)
            self._gauge.set(len(self._open))
        return block

    def verify(self, sha: str) -> None:
        """Recompute the digest of a stored block against its address.

        Raises :class:`~repro.errors.StorageError` for a missing block
        and :class:`~repro.errors.IntegrityError` on a mismatch (bit
        rot, a truncating copy, an injected corruption).
        """
        path = self.path_for(sha)
        if not path.exists():
            raise StorageError(f"no feature block {sha[:12]}… in {self._root}")
        actual = file_digest(path)
        if actual != sha:
            raise IntegrityError(
                f"feature block {sha[:12]}… failed verification: "
                f"content digest is {actual[:12]}…"
            )

    def list_blocks(self) -> list[str]:
        """Digests of every stored block (sorted)."""
        if not self._root.exists():
            return []
        return sorted(p.stem for p in self._root.glob("*/*.npy"))

    def total_bytes(self) -> int:
        """On-disk footprint of every stored block."""
        return sum(
            self.path_for(sha).stat().st_size for sha in self.list_blocks()
        )

    def delete(self, sha: str) -> bool:
        """Drop one block (and any open handle); True when removed."""
        with self._lock:
            self._open.pop(sha, None)
            self._gauge.set(len(self._open))
        path = self.path_for(sha)
        if not path.exists():
            return False
        path.unlink()
        return True

    def close(self) -> None:
        """Release every open mmap handle."""
        with self._lock:
            self._open.clear()
            self._gauge.set(0)

    @property
    def open_count(self) -> int:
        """Number of currently mapped blocks."""
        with self._lock:
            return len(self._open)
