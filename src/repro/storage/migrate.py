"""One-shot migration of a JSON-era database directory to the SQL catalog.

``classminer migrate --db-dir db/`` converts what an older ingest run
left behind into the durable backend this package serves from::

    database.json  ──►  catalog.sqlite + features/*.npy

The JSON catalog is preferred as the source when present (it is the
exact state the old loader would have produced); without one, the
corpus is rebuilt from the artifact store — the same source-of-truth
path ``classminer ingest`` uses — so a directory holding only
artifacts migrates too.  The migration is idempotent: re-running it
replaces the SQL catalog in one transaction and content addressing
means unchanged feature blocks are not rewritten.

Query equivalence is part of the contract (and covered by the storage
test suite): a migrated catalog answers flat, hierarchical and scene
searches bit-identically to loading the original JSON.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from pathlib import Path

from repro.database.catalog import VideoDatabase
from repro.errors import IngestError, StorageError
from repro.obs.trace import span as obs_span
from repro.storage.sqlcatalog import save_database

_LOGGER = logging.getLogger(__name__)


@dataclass(frozen=True)
class MigrationReport:
    """What one :func:`migrate_db_dir` run did.

    Attributes
    ----------
    db_dir / catalog_path:
        The migrated directory and the SQL catalog written into it.
    source:
        Where the corpus came from: ``json`` (``database.json``) or
        ``artifacts`` (rebuilt from the artifact store).
    videos / entries / blocks:
        Registered videos, stored shot entries and feature blocks now
        on disk.
    skipped_artifacts:
        Artifact keys that failed to load during an artifact-sourced
        rebuild (quarantined by the store, not migrated).
    removed_json:
        True when ``--remove-json`` deleted the legacy file.
    """

    db_dir: Path
    catalog_path: Path
    source: str
    videos: int
    entries: int
    blocks: int
    skipped_artifacts: tuple[str, ...] = ()
    removed_json: bool = False

    def render(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [
            f"migrated {self.db_dir} from {self.source}:",
            f"  catalog: {self.catalog_path}",
            f"  {self.videos} videos, {self.entries} shot entries, "
            f"{self.blocks} feature blocks",
        ]
        if self.skipped_artifacts:
            lines.append(
                f"  skipped {len(self.skipped_artifacts)} unreadable artifacts"
            )
        if self.removed_json:
            lines.append("  removed legacy database.json")
        return "\n".join(lines)


def _database_from_artifacts(
    db_dir: Path, skipped: list[str]
) -> VideoDatabase:
    """Rebuild the corpus from the artifact store (ingest's own path)."""
    from repro.ingest.runner import store_for

    store = store_for(db_dir)

    def loadable():
        for info in store.list():
            try:
                yield store.load(info.key)
            except IngestError as exc:
                skipped.append(info.key)
                _LOGGER.warning(
                    "migration skipping artifact %s: %s", info.key[:12], exc
                )

    database = VideoDatabase()
    database.register_bulk(loadable(), skip_registered=True)
    return database


def migrate_db_dir(
    db_dir: str | Path, remove_json: bool = False
) -> MigrationReport:
    """Convert a database directory to the SQL catalog backend.

    Sources ``database.json`` when present, else rebuilds from the
    artifact store.  Raises :class:`~repro.errors.StorageError` when the
    directory holds neither (or the corpus comes up empty).  With
    ``remove_json`` the legacy JSON file is deleted *after* the SQL
    catalog has been durably written.
    """
    from repro.ingest.runner import ARTIFACTS_DIR, DATABASE_NAME

    db_dir = Path(db_dir)
    json_path = db_dir / DATABASE_NAME
    skipped: list[str] = []
    with obs_span("storage.migrate") as sp:
        if json_path.exists():
            source = "json"
            database = VideoDatabase.load(json_path)
        elif (db_dir / ARTIFACTS_DIR).exists():
            source = "artifacts"
            database = _database_from_artifacts(db_dir, skipped)
        else:
            raise StorageError(
                f"nothing to migrate in {db_dir}: no {DATABASE_NAME} and "
                f"no {ARTIFACTS_DIR}/ store"
            )
        if not database.videos:
            raise StorageError(f"{db_dir} migration found no registered videos")
        catalog_path = save_database(database, db_dir)
        sp.set(source=source, videos=len(database.videos))

    removed = False
    if remove_json and json_path.exists():
        json_path.unlink()
        removed = True

    from repro.storage.featurestore import FeatureStore
    from repro.storage.schema import features_path

    blocks = len(FeatureStore(features_path(db_dir)).list_blocks())
    return MigrationReport(
        db_dir=db_dir,
        catalog_path=catalog_path,
        source=source,
        videos=len(database.videos),
        entries=database.shot_count,
        blocks=blocks,
        skipped_artifacts=tuple(skipped),
        removed_json=removed,
    )
