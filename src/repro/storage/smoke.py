"""Storage smoke: build, persist, migrate and query a synthetic catalog.

``make storage-smoke`` drives the whole durable-storage subsystem at a
realistic scale (a ~1000-video synthetic corpus by default) and checks
its contracts:

1. a corpus saved to the SQL catalog + feature store round-trips its
   registration records and catalog statistics;
2. a lazily opened catalog answers flat, hierarchical and scene
   queries *bit-identically* to the eager JSON-loaded database;
3. ``migrate_db_dir`` converts a JSON-era directory and the migrated
   catalog answers identically too;
4. full-text search over the stored metadata returns ranked hits;
5. cold-start: opening the SQL catalog must be far cheaper than
   parsing the JSON catalog (the measured ratio is printed; the hard
   >= 10x acceptance gate lives in ``benchmarks/bench_storage.py``).

Setting ``CLASSMINER_SMOKE_SCALE=<videos>`` (e.g. ``100000``) switches
to the *scale* smoke instead: the corpus is built and persisted by a
subprocess, then a fresh reader child answers exact and ANN queries
out-of-core and reports its ``VmHWM`` peak — which must stay far below
the on-disk feature bytes (flat RSS).  The CI default stays small.

Everything is seeded and deterministic; any check failure exits 1.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.database.catalog import VideoDatabase
from repro.errors import ReproError
from repro.serving.snapshot import _derive_scene_index
from repro.storage.lazy import SQLVideoDatabase
from repro.storage.migrate import migrate_db_dir
from repro.storage.sqlcatalog import save_database
from repro.storage.synthetic import build_synthetic_database


def _report(name: str, ok: bool, detail: str) -> bool:
    print(f"storage-smoke: [{'ok ' if ok else 'FAIL'}] {name} — {detail}")
    return ok


def _shot_hits(result) -> list[tuple[str, int, float]]:
    return [(h.entry.video_title, h.entry.shot_id, h.score) for h in result.hits]


def _scene_hits(hits) -> list[tuple[str, int, float]]:
    return [(h.entry.video_title, h.entry.scene_id, h.score) for h in hits]


def _queries_equal(
    eager: VideoDatabase, lazy: SQLVideoDatabase, probes: list[np.ndarray]
) -> tuple[bool, str]:
    """Flat + hierarchical + scene results must match bit for bit."""
    eager_scenes = _derive_scene_index(eager)
    lazy_scenes = lazy.scene_index
    for probe in probes:
        flat_a = eager.search_flat(probe, k=10)
        flat_b = lazy.search_flat(probe, k=10)
        if _shot_hits(flat_a) != _shot_hits(flat_b):
            return False, "flat results diverged"
        if flat_a.stats.comparisons != flat_b.stats.comparisons:
            return False, "flat comparison counts diverged"
        hier_a = eager.search(probe, k=10)
        hier_b = lazy.search(probe, k=10)
        if _shot_hits(hier_a) != _shot_hits(hier_b):
            return False, "hierarchical results diverged"
        if hier_a.stats.visited_path != hier_b.stats.visited_path:
            return False, "descent paths diverged"
        if _scene_hits(eager_scenes.search(probe, k=5)) != _scene_hits(
            lazy_scenes.search(probe, k=5)
        ):
            return False, "scene results diverged"
    return True, f"{len(probes)} probes, flat+hierarchical+scene identical"


def run_smoke(videos: int = 1000, shots: int = 12, seed: int = 0) -> int:
    """Run the storage smoke; returns a process exit code."""
    root = Path(tempfile.mkdtemp(prefix="storage-smoke-"))
    failures = 0
    try:
        database = build_synthetic_database(videos, shots, seed=seed)
        db_dir = root / "db"
        db_dir.mkdir()
        json_path = db_dir / "database.json"
        database.save(json_path)
        catalog_path = save_database(database, db_dir)

        # 1. round-trip bookkeeping.
        lazy = SQLVideoDatabase.open(db_dir)
        ok = (
            sorted(lazy.videos) == sorted(database.videos)
            and lazy.shot_count == database.shot_count
            and lazy.describe() == database.describe()
        )
        failures += not _report(
            "catalog-roundtrip",
            ok,
            f"{len(lazy.videos)} videos, {lazy.shot_count} entries, "
            f"{len(lazy.describe())} leaves",
        )

        # 2. cold-start: parse-everything JSON vs open-lazily SQL.
        start = time.perf_counter()
        eager = VideoDatabase.load(json_path)
        json_seconds = time.perf_counter() - start
        start = time.perf_counter()
        cold = SQLVideoDatabase.open(db_dir)
        sql_seconds = time.perf_counter() - start
        speedup = json_seconds / max(sql_seconds, 1e-9)
        failures += not _report(
            "cold-start",
            sql_seconds < json_seconds,
            f"JSON {json_seconds * 1e3:.0f}ms vs SQL {sql_seconds * 1e3:.1f}ms "
            f"({speedup:.0f}x)",
        )
        cold.close()

        # 3. query equivalence on real and unseen probes, against the
        # in-RAM database that was saved (the legacy JSON loader regroups
        # the flat index by leaf, which permutes tie-broken orderings —
        # so the eager JSON pair is compared in the migration check).
        rng = np.random.default_rng(seed)
        entries = database.flat_index.entries
        probes = [
            entries[0].features,
            entries[len(entries) // 2].features,
            entries[-1].features,
            rng.random(entries[0].features.shape[0]),
        ]
        ok, detail = _queries_equal(database, lazy, probes)
        failures += not _report("query-equivalence", ok, detail)

        # 4. full-text search over the stored metadata.
        hits = lazy.catalog.search_text("synthetic presentation", k=5)
        ok = bool(hits) and all(
            hit.kind in ("video", "scene", "concept") for hit in hits
        )
        failures += not _report(
            "text-search",
            ok,
            f"{len(hits)} hits "
            f"(fts={'on' if lazy.catalog.fts_enabled else 'LIKE fallback'})",
        )
        lazy.close()

        # 5. migration from a JSON-only directory.
        legacy = root / "legacy"
        legacy.mkdir()
        database.save(legacy / "database.json")
        migration = migrate_db_dir(legacy, remove_json=True)
        migrated = SQLVideoDatabase.open(legacy)
        ok, detail = _queries_equal(eager, migrated, probes[:2])
        ok = (
            ok
            and migration.videos == len(database.videos)
            and migration.entries == database.shot_count
            and not (legacy / "database.json").exists()
        )
        failures += not _report(
            "migrate-json",
            ok,
            f"{migration.videos} videos via {migration.source}, "
            f"{migration.blocks} blocks, json removed; {detail}",
        )
        migrated.close()
        print(f"catalog: {catalog_path}")
    except ReproError as exc:
        print(
            f"storage-smoke: [FAIL] typed {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        failures += 1
    except Exception as exc:  # noqa: BLE001 — must never escape a public API
        print(
            f"storage-smoke: [FAIL] UNTYPED {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        failures += 1
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if failures:
        print(f"storage-smoke: FAIL ({failures} checks)", file=sys.stderr)
        return 1
    print(f"storage-smoke: OK (videos={videos}, seed={seed})")
    return 0


#: Environment knob selecting the out-of-core scale smoke.
SCALE_ENV = "CLASSMINER_SMOKE_SCALE"

_SCALE_BUILDER = """\
import sys
from repro.storage.sqlcatalog import save_database
from repro.storage.synthetic import build_synthetic_database

videos, shots, seed, db_dir = sys.argv[1:5]
database = build_synthetic_database(
    int(videos), int(shots), seed=int(seed)
)
save_database(database, db_dir)
print(database.shot_count)
"""

_SCALE_READER = """\
import json, resource, sys

from repro.database.query import search_hierarchical
from repro.storage.lazy import SQLVideoDatabase


def peak_rss_kb():
    # VmHWM is reset on exec, so it measures only this reader's peak;
    # ru_maxrss is the non-Linux fallback.
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


db_dir, out_path = sys.argv[1:3]
database = SQLVideoDatabase.open(db_dir)
info = database.catalog.leaf_infos()[0]
probe = database.catalog.features.open(info.block.sha)[0].copy()


def keys(result):
    return [
        [h.entry.video_title, h.entry.shot_id, h.score] for h in result.hits
    ]


exact = search_hierarchical(database.index_root, probe, k=10)
full = search_hierarchical(
    database.index_root, probe, k=10, nprobe=1_000_000
)
pruned = search_hierarchical(
    database.index_root, probe, k=10, nprobe=4, rerank_k=32
)
payload = {
    "rss_kb": peak_rss_kb(),
    "hits": len(exact.hits),
    "ann_identical": keys(exact) == keys(full),
    "ann_degraded": bool(full.stats.ann_degraded or pruned.stats.ann_degraded),
    "approx_comparisons": pruned.stats.approx_comparisons,
}
database.close()
with open(out_path, "w") as handle:
    json.dump(payload, handle)
"""


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def run_scale_smoke(videos: int, shots: int = 12, seed: int = 0) -> int:
    """The ``CLASSMINER_SMOKE_SCALE`` path: flat-RSS out-of-core reads.

    The corpus is built and saved by one child process (so its build
    memory never pollutes the measurement) and queried by another; the
    reader's ``VmHWM`` must stay far below the on-disk feature bytes,
    proving the ANN and exact paths both stream from the store instead
    of materialising the corpus.
    """
    root = Path(tempfile.mkdtemp(prefix="storage-smoke-scale-"))
    failures = 0
    env = _subprocess_env()
    try:
        db_dir = root / "db"
        db_dir.mkdir()
        start = time.perf_counter()
        build = subprocess.run(
            [
                sys.executable, "-c", _SCALE_BUILDER,
                str(videos), str(shots), str(seed), str(db_dir),
            ],
            env=env, check=True, capture_output=True, text=True,
            timeout=3600,
        )
        entries = int(build.stdout.strip().splitlines()[-1])
        build_seconds = time.perf_counter() - start
        feature_bytes = sum(
            path.stat().st_size for path in db_dir.rglob("*.npy")
        )
        failures += not _report(
            "scale-build",
            entries == videos * shots,
            f"{videos} videos / {entries} entries in {build_seconds:.0f}s, "
            f"{feature_bytes / 2**20:.0f} MiB of feature blocks",
        )

        out_path = root / "reader.json"
        reader = subprocess.run(
            [sys.executable, "-c", _SCALE_READER, str(db_dir), str(out_path)],
            env=env, check=True, timeout=3600,
        )
        assert reader.returncode == 0
        payload = json.loads(out_path.read_text())
        failures += not _report(
            "scale-queries",
            payload["hits"] > 0
            and payload["ann_identical"]
            and not payload["ann_degraded"]
            and payload["approx_comparisons"] > 0,
            f"{payload['hits']} hits, nprobe=all identical to exact, "
            f"{payload['approx_comparisons']} quantized evals when pruning",
        )

        # Flat RSS: the reader may keep the interpreter + catalog rows
        # resident, but never a corpus-sized fraction of the blocks.
        rss_bytes = payload["rss_kb"] * 1024
        budget = 400 * 2**20 + feature_bytes // 8
        failures += not _report(
            "scale-flat-rss",
            rss_bytes < budget,
            f"reader VmHWM {rss_bytes / 2**20:.0f} MiB vs "
            f"{feature_bytes / 2**20:.0f} MiB of blocks "
            f"(budget {budget / 2**20:.0f} MiB)",
        )
    except subprocess.CalledProcessError as exc:
        print(
            f"storage-smoke: [FAIL] child exited {exc.returncode}: "
            f"{(exc.stderr or '')[-500:]}",
            file=sys.stderr,
        )
        failures += 1
    except Exception as exc:  # noqa: BLE001 — must never escape a public API
        print(
            f"storage-smoke: [FAIL] UNTYPED {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        failures += 1
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if failures:
        print(f"storage-smoke: FAIL ({failures} scale checks)", file=sys.stderr)
        return 1
    print(f"storage-smoke: OK (scale videos={videos}, seed={seed})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.storage.smoke [--videos N]`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(description="storage subsystem smoke test")
    parser.add_argument("--videos", type=int, default=1000)
    parser.add_argument("--shots", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    scale = os.environ.get(SCALE_ENV)
    if scale:
        return run_scale_smoke(
            videos=int(scale), shots=args.shots, seed=args.seed
        )
    return run_smoke(videos=args.videos, shots=args.shots, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
