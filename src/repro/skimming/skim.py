"""The scalable skim: level switching, playback, fast access (Fig. 11).

:class:`ScalableSkim` models the behaviour of the paper's skimming tool:
the user watches only the selected skimming shots of the current level,
can switch levels with the up/down arrows, and can drag a scroll bar
whose position maps to shot positions in the full video.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.core.features import Shot
from repro.core.structure import ContentStructure
from repro.errors import SkimmingError
from repro.events.model import SceneEvent
from repro.skimming.levels import SKIM_LEVELS, build_level_shots
from repro.types import EventKind


@dataclass(frozen=True)
class SkimSegment:
    """One skim entry: a shot shown at some level."""

    shot: Shot
    event: EventKind

    @property
    def frame_span(self) -> tuple[int, int]:
        """Frames covered by the underlying shot."""
        return (self.shot.start, self.shot.stop)


@dataclass
class ScalableSkim:
    """A four-level scalable skim of one video."""

    title: str
    total_frames: int
    levels: dict[int, list[SkimSegment]]
    current_level: int = 3

    def __post_init__(self) -> None:
        for level in SKIM_LEVELS:
            if level not in self.levels or not self.levels[level]:
                raise SkimmingError(f"skim level {level} is missing or empty")
        if self.current_level not in self.levels:
            raise SkimmingError(f"invalid current level {self.current_level}")

    def switch_level(self, level: int) -> None:
        """Jump straight to a level (the level switcher buttons)."""
        if level not in self.levels:
            raise SkimmingError(f"no such skim level: {level}")
        self.current_level = level

    def coarser(self) -> int:
        """Up arrow: move toward level 4; returns the new level."""
        self.current_level = min(self.current_level + 1, max(SKIM_LEVELS))
        return self.current_level

    def finer(self) -> int:
        """Down arrow: move toward level 1; returns the new level."""
        self.current_level = max(self.current_level - 1, min(SKIM_LEVELS))
        return self.current_level

    def segments(self, level: int | None = None) -> list[SkimSegment]:
        """Skim segments of a level (default: the current one)."""
        return list(self.levels[level if level is not None else self.current_level])

    def play(self, level: int | None = None) -> Iterator[SkimSegment]:
        """Iterate the skim shots in playback order, skipping the rest."""
        yield from self.segments(level)

    def frame_count(self, level: int | None = None) -> int:
        """Frames shown at a level."""
        return sum(
            segment.shot.length for segment in self.segments(level)
        )

    def scroll_position(self, segment_index: int, level: int | None = None) -> float:
        """Scroll-bar position in [0, 1] of a skim segment.

        Mirrors the tool's scroll bar: the position of the current
        skimming shot among all shots in the video.
        """
        segments = self.segments(level)
        if not 0 <= segment_index < len(segments):
            raise SkimmingError(f"segment index {segment_index} out of range")
        return segments[segment_index].shot.start / max(self.total_frames - 1, 1)

    def seek(self, position: float, level: int | None = None) -> SkimSegment:
        """Drag the scroll bar: the skim segment nearest ``position``."""
        if not 0.0 <= position <= 1.0:
            raise SkimmingError(f"scroll position {position} outside [0, 1]")
        target_frame = position * max(self.total_frames - 1, 1)
        segments = self.segments(level)
        return min(
            segments,
            key=lambda segment: abs(
                (segment.shot.start + segment.shot.stop) / 2 - target_frame
            ),
        )


def build_skim(
    structure: ContentStructure,
    events: list[SceneEvent] | None = None,
    title: str | None = None,
) -> ScalableSkim:
    """Assemble the scalable skim from a mined structure (+ events)."""
    event_of_shot: dict[int, EventKind] = {}
    if events is not None:
        by_scene = {event.scene_index: event.kind for event in events}
        for scene in structure.scenes:
            kind = by_scene.get(scene.scene_id, EventKind.UNKNOWN)
            for shot_id in scene.shot_ids:
                event_of_shot[shot_id] = kind

    level_shots = build_level_shots(structure)
    total_frames = structure.shots[-1].stop
    levels = {
        level: [
            SkimSegment(
                shot=shot,
                event=event_of_shot.get(shot.shot_id, EventKind.UNKNOWN),
            )
            for shot in shots
        ]
        for level, shots in level_shots.items()
    }
    return ScalableSkim(
        title=title if title is not None else structure.title,
        total_frames=total_frames,
        levels=levels,
    )
