"""Hierarchical video browsing over the mined content structure.

Sec. 5 notes that "the mined video content structure and event
categories can also facilitate more applications like hierarchical
video browsing".  :class:`HierarchyBrowser` is that application: a
cursor over the four-level tree (clustered scenes > scenes > groups >
shots) with enter/up/next/previous navigation and a text rendering of
the current location — the model behind a tree-view UI.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.structure import ContentStructure
from repro.errors import SkimmingError
from repro.events.model import SceneEvent
from repro.types import EventKind


class BrowseLevel(str, Enum):
    """Levels the browser cursor can sit on."""

    CLUSTERS = "clusters"
    SCENES = "scenes"
    GROUPS = "groups"
    SHOTS = "shots"

    def finer(self) -> "BrowseLevel":
        """The next level down (clamped at shots)."""
        order = list(BrowseLevel)
        index = order.index(self)
        return order[min(index + 1, len(order) - 1)]

    def coarser(self) -> "BrowseLevel":
        """The next level up (clamped at clusters)."""
        order = list(BrowseLevel)
        index = order.index(self)
        return order[max(index - 1, 0)]


@dataclass(frozen=True)
class BrowseEntry:
    """One row in the browser listing."""

    index: int
    label: str
    detail: str


class HierarchyBrowser:
    """Navigable cursor over one video's mined hierarchy."""

    def __init__(
        self,
        structure: ContentStructure,
        events: list[SceneEvent] | None = None,
    ) -> None:
        if not structure.clustered_scenes:
            raise SkimmingError("structure has no clustered scenes to browse")
        self._structure = structure
        self._events: dict[int, EventKind] = {}
        if events:
            self._events = {event.scene_index: event.kind for event in events}
        self._level = BrowseLevel.CLUSTERS
        self._path: list[int] = []  # selected index at each coarser level
        self._cursor = 0

    # ------------------------------------------------------------------
    # State.
    # ------------------------------------------------------------------

    @property
    def level(self) -> BrowseLevel:
        """The level currently listed."""
        return self._level

    @property
    def cursor(self) -> int:
        """Index of the highlighted entry."""
        return self._cursor

    def entries(self) -> list[BrowseEntry]:
        """The rows visible at the current location."""
        if self._level is BrowseLevel.CLUSTERS:
            return [
                BrowseEntry(
                    index=i,
                    label=f"cluster {cluster.cluster_id}",
                    detail=(
                        f"{len(cluster.scenes)} scene(s), "
                        f"{cluster.shot_count} shots"
                        + (" [recurring]" if cluster.is_recurring else "")
                    ),
                )
                for i, cluster in enumerate(self._structure.clustered_scenes)
            ]
        if self._level is BrowseLevel.SCENES:
            cluster = self._structure.clustered_scenes[self._path[0]]
            return [
                BrowseEntry(
                    index=i,
                    label=f"scene {scene.scene_id}",
                    detail=(
                        f"{scene.shot_count} shots, "
                        f"event={self._events.get(scene.scene_id, EventKind.UNKNOWN).value}"
                    ),
                )
                for i, scene in enumerate(cluster.scenes)
            ]
        if self._level is BrowseLevel.GROUPS:
            scene = self._current_scene()
            return [
                BrowseEntry(
                    index=i,
                    label=f"group {group.group_id}",
                    detail=f"{group.shot_count} shots, {group.kind.value}",
                )
                for i, group in enumerate(scene.groups)
            ]
        group = self._current_scene().groups[self._path[2]]
        return [
            BrowseEntry(
                index=i,
                label=f"shot {shot.shot_id}",
                detail=f"frames {shot.start}-{shot.stop} ({shot.duration:.1f}s)",
            )
            for i, shot in enumerate(group.shots)
        ]

    def _current_scene(self):
        cluster = self._structure.clustered_scenes[self._path[0]]
        return cluster.scenes[self._path[1]]

    # ------------------------------------------------------------------
    # Navigation.
    # ------------------------------------------------------------------

    def next(self) -> int:
        """Move the cursor down; returns the new index."""
        self._cursor = min(self._cursor + 1, len(self.entries()) - 1)
        return self._cursor

    def previous(self) -> int:
        """Move the cursor up; returns the new index."""
        self._cursor = max(self._cursor - 1, 0)
        return self._cursor

    def enter(self) -> BrowseLevel:
        """Descend into the highlighted entry."""
        if self._level is BrowseLevel.SHOTS:
            raise SkimmingError("already at the shot level")
        self._path.append(self._cursor)
        self._level = self._level.finer()
        self._cursor = 0
        return self._level

    def up(self) -> BrowseLevel:
        """Return to the parent listing."""
        if self._level is BrowseLevel.CLUSTERS:
            raise SkimmingError("already at the top level")
        self._cursor = self._path.pop()
        self._level = self._level.coarser()
        return self._level

    def breadcrumb(self) -> str:
        """Human-readable location, e.g. ``clusters > cluster 1 > scene 3``."""
        parts = [self._structure.title]
        level = BrowseLevel.CLUSTERS
        node_labels = {
            BrowseLevel.CLUSTERS: "cluster",
            BrowseLevel.SCENES: "scene",
            BrowseLevel.GROUPS: "group",
        }
        cursor_path = list(self._path)
        cluster = None
        scene = None
        for depth, index in enumerate(cursor_path):
            if depth == 0:
                cluster = self._structure.clustered_scenes[index]
                parts.append(f"cluster {cluster.cluster_id}")
            elif depth == 1:
                scene = cluster.scenes[index]
                parts.append(f"scene {scene.scene_id}")
            elif depth == 2:
                group = scene.groups[index]
                parts.append(f"group {group.group_id}")
            level = level.finer()
        del node_labels
        return " > ".join(parts)

    def render(self, width: int = 64) -> str:
        """Text rendering of the current listing with the cursor mark."""
        lines = [f"[{self.breadcrumb()}] ({self._level.value})"]
        for entry in self.entries():
            marker = ">" if entry.index == self._cursor else " "
            lines.append(f" {marker} {entry.label:12s} {entry.detail}"[:width])
        return "\n".join(lines)
