"""Scalable video skimming: levels, playback, colour bar, quality panel."""

from repro.skimming.browser import BrowseEntry, BrowseLevel, HierarchyBrowser
from repro.skimming.colorbar import (
    ColorBarSpan,
    EVENT_COLORS,
    EVENT_GLYPHS,
    build_color_bar,
    event_at_frame,
    render_text_bar,
)
from repro.skimming.levels import SKIM_LEVELS, build_level_shots
from repro.skimming.poster import compose_poster, read_ppm, save_poster, write_ppm
from repro.skimming.report_html import encode_bmp, render_report, save_report
from repro.skimming.quality import (
    QualityScores,
    best_level,
    evaluate_all_levels,
    objective_scores,
    panel_scores,
)
from repro.skimming.skim import ScalableSkim, SkimSegment, build_skim
from repro.skimming.summary import (
    StoryboardCell,
    fcr_by_level,
    frame_compression_ratio,
    pictorial_summary,
    render_storyboard,
)

__all__ = [
    "BrowseEntry",
    "BrowseLevel",
    "ColorBarSpan",
    "HierarchyBrowser",
    "EVENT_COLORS",
    "EVENT_GLYPHS",
    "QualityScores",
    "SKIM_LEVELS",
    "ScalableSkim",
    "SkimSegment",
    "StoryboardCell",
    "best_level",
    "build_color_bar",
    "build_level_shots",
    "build_skim",
    "compose_poster",
    "encode_bmp",
    "evaluate_all_levels",
    "event_at_frame",
    "fcr_by_level",
    "frame_compression_ratio",
    "objective_scores",
    "panel_scores",
    "pictorial_summary",
    "read_ppm",
    "render_report",
    "render_storyboard",
    "save_poster",
    "save_report",
    "render_text_bar",
    "write_ppm",
]
