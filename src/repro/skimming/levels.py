"""Skim level construction (Sec. 5).

Four levels, granularity increasing from level 4 down to level 1:

* **Level 4** — representative shots of *clustered scenes*;
* **Level 3** — representative shots of all *scenes*;
* **Level 2** — representative shots of all *groups*;
* **Level 1** — *all shots*.
"""

from __future__ import annotations

from repro.core.features import Shot
from repro.core.groups import Group
from repro.core.structure import ContentStructure
from repro.errors import SkimmingError

#: Valid level numbers, coarsest first.
SKIM_LEVELS = (4, 3, 2, 1)


def _group_representative(group: Group) -> Shot:
    """One shot standing for a whole group (largest cluster's pick)."""
    if not group.representative_shots:
        raise SkimmingError(f"group {group.group_id} has no representatives")
    if len(group.representative_shots) == 1:
        return group.representative_shots[0]
    sizes = [len(cluster) for cluster in group.clusters]
    best = max(range(len(sizes)), key=lambda i: (sizes[i], -i))
    return group.representative_shots[best]


def build_level_shots(structure: ContentStructure) -> dict[int, list[Shot]]:
    """Skim shot lists per level, each sorted by shot id.

    Every level is guaranteed non-empty as long as the structure has
    shots: levels whose source tier is empty (e.g. no scene survived
    filtering) fall back to the next finer tier.
    """
    if not structure.shots:
        raise SkimmingError("structure has no shots to skim")

    level1 = list(structure.shots)
    level2 = sorted(
        {_group_representative(group).shot_id: _group_representative(group)
         for group in structure.groups}.values(),
        key=lambda shot: shot.shot_id,
    )
    level3 = sorted(
        {
            _group_representative(scene.representative_group).shot_id:
            _group_representative(scene.representative_group)
            for scene in structure.scenes
        }.values(),
        key=lambda shot: shot.shot_id,
    )
    level4 = sorted(
        {
            _group_representative(cluster.centroid).shot_id:
            _group_representative(cluster.centroid)
            for cluster in structure.clustered_scenes
        }.values(),
        key=lambda shot: shot.shot_id,
    )

    levels = {1: level1, 2: level2 or level1, 3: level3, 4: level4}
    if not levels[3]:
        levels[3] = levels[2]
    if not levels[4]:
        levels[4] = levels[3]
    return levels
