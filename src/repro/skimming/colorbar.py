"""The event colour bar (Fig. 11).

The tool shows a horizontal bar under the player; the colour of each
region tells the user which event category that part of the video
belongs to, so scenes can be accessed by event directly.  We model the
bar as labelled frame spans plus a terminal rendering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.structure import ContentStructure
from repro.errors import SkimmingError
from repro.events.model import SceneEvent
from repro.types import EventKind

#: Display colour per event (name + ANSI 256-colour code).
EVENT_COLORS: dict[EventKind, tuple[str, int]] = {
    EventKind.PRESENTATION: ("blue", 33),
    EventKind.DIALOG: ("green", 40),
    EventKind.CLINICAL_OPERATION: ("red", 160),
    EventKind.UNKNOWN: ("gray", 244),
}

#: One-character glyph per event for plain-text rendering.
EVENT_GLYPHS: dict[EventKind, str] = {
    EventKind.PRESENTATION: "P",
    EventKind.DIALOG: "D",
    EventKind.CLINICAL_OPERATION: "C",
    EventKind.UNKNOWN: ".",
}


@dataclass(frozen=True)
class ColorBarSpan:
    """One coloured region of the bar: frames ``[start, stop)``."""

    start: int
    stop: int
    event: EventKind

    @property
    def color_name(self) -> str:
        """Human-readable colour of the span."""
        return EVENT_COLORS[self.event][0]


def build_color_bar(
    structure: ContentStructure, events: list[SceneEvent]
) -> list[ColorBarSpan]:
    """Label every frame span of the video with its scene's event.

    Gaps (eliminated scenes, separators) appear as UNKNOWN spans so the
    bar always tiles ``[0, total_frames)``.
    """
    if not structure.shots:
        raise SkimmingError("structure has no shots")
    by_scene = {event.scene_index: event.kind for event in events}
    total = structure.shots[-1].stop

    spans: list[ColorBarSpan] = []
    cursor = 0
    for scene in structure.scenes:
        start, stop = scene.frame_span
        if start > cursor:
            spans.append(ColorBarSpan(cursor, start, EventKind.UNKNOWN))
        spans.append(
            ColorBarSpan(start, stop, by_scene.get(scene.scene_id, EventKind.UNKNOWN))
        )
        cursor = stop
    if cursor < total:
        spans.append(ColorBarSpan(cursor, total, EventKind.UNKNOWN))
    return spans


def event_at_frame(spans: list[ColorBarSpan], frame: int) -> EventKind:
    """The event colour under the playhead at ``frame``."""
    for span in spans:
        if span.start <= frame < span.stop:
            return span.event
    raise SkimmingError(f"frame {frame} outside the colour bar")


def render_text_bar(spans: list[ColorBarSpan], width: int = 72) -> str:
    """Render the bar as one line of glyphs (P/D/C/.) for terminals."""
    if not spans:
        raise SkimmingError("no spans to render")
    total = spans[-1].stop
    cells = []
    for i in range(width):
        frame = int(i / width * total)
        cells.append(EVENT_GLYPHS[event_at_frame(spans, frame)])
    return "".join(cells)
