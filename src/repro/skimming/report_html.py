"""Standalone HTML summary reports.

Bundles everything the skimming stack produces — the event colour bar,
per-level storyboards with actual thumbnails, FCR figures and the
mined-event scene list — into one self-contained HTML file.  Thumbnails
are embedded as base64 BMP data URIs (BMP is browser-renderable and,
like PPM, trivially written without an imaging library).
"""

from __future__ import annotations

import base64
import html
import struct
from pathlib import Path

import numpy as np

from repro.core.pipeline import ClassMinerResult
from repro.errors import SkimmingError
from repro.skimming.colorbar import build_color_bar
from repro.skimming.skim import ScalableSkim, build_skim
from repro.skimming.summary import fcr_by_level
from repro.types import EventKind

#: CSS colour per event, matching the colour-bar palette.
EVENT_CSS: dict[EventKind, str] = {
    EventKind.PRESENTATION: "#3c5ac8",
    EventKind.DIALOG: "#3cb45a",
    EventKind.CLINICAL_OPERATION: "#c83c3c",
    EventKind.UNKNOWN: "#787878",
}


def encode_bmp(image: np.ndarray) -> bytes:
    """Encode an RGB uint8 image as an uncompressed 24-bit BMP.

    BMP stores rows bottom-up in BGR order, each padded to 4 bytes —
    all handled here so browsers render the bytes directly.
    """
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise SkimmingError("encode_bmp expects an (H, W, 3) uint8 image")
    height, width = image.shape[:2]
    row_bytes = width * 3
    padding = (4 - row_bytes % 4) % 4
    image_size = (row_bytes + padding) * height
    file_size = 54 + image_size

    header = struct.pack(
        "<2sIHHI", b"BM", file_size, 0, 0, 54
    ) + struct.pack(
        "<IiiHHIIiiII", 40, width, height, 1, 24, 0, image_size, 2835, 2835, 0, 0
    )
    bgr = image[::-1, :, ::-1]  # bottom-up, BGR
    if padding:
        pad = np.zeros((height, padding), dtype=np.uint8)
        rows = np.concatenate([bgr.reshape(height, row_bytes), pad], axis=1)
    else:
        rows = bgr.reshape(height, row_bytes)
    return header + rows.tobytes()


def bmp_data_uri(image: np.ndarray) -> str:
    """``data:`` URI for an RGB uint8 image."""
    return "data:image/bmp;base64," + base64.b64encode(encode_bmp(image)).decode()


def _color_bar_html(result: ClassMinerResult) -> str:
    spans = build_color_bar(result.structure, result.events.events)
    total = spans[-1].stop
    cells = []
    for span in spans:
        width = 100.0 * (span.stop - span.start) / total
        cells.append(
            f'<div title="{span.event.value}: frames {span.start}-{span.stop}" '
            f'style="width:{width:.2f}%;background:{EVENT_CSS[span.event]};"></div>'
        )
    return (
        '<div style="display:flex;height:18px;border:1px solid #333;">'
        + "".join(cells)
        + "</div>"
    )


def _storyboard_html(skim: ScalableSkim, level: int, scale: int = 2) -> str:
    cells = []
    for segment in skim.segments(level):
        pixels = segment.shot.representative_frame.pixels
        enlarged = np.repeat(np.repeat(pixels, scale, axis=0), scale, axis=1)
        uri = bmp_data_uri(enlarged)
        seconds = segment.shot.start / segment.shot.fps
        caption = html.escape(
            f"shot {segment.shot.shot_id} @ {seconds:.1f}s"
        )
        cells.append(
            '<figure style="margin:4px;display:inline-block;text-align:center;">'
            f'<img src="{uri}" alt="{caption}" '
            f'style="border:3px solid {EVENT_CSS[segment.event]};"/>'
            f'<figcaption style="font-size:11px;">{caption}</figcaption></figure>'
        )
    return "<div>" + "".join(cells) + "</div>"


def render_report(
    result: ClassMinerResult,
    skim: ScalableSkim | None = None,
    storyboard_levels: tuple[int, ...] = (4, 3),
) -> str:
    """Render the full HTML report for one mined video."""
    if result.events is None:
        raise SkimmingError("report needs a run with event mining enabled")
    if skim is None:
        skim = build_skim(result.structure, result.events.events)

    title = html.escape(result.title)
    sizes = result.structure.level_sizes()
    fcr = fcr_by_level(skim)

    scene_rows = []
    for scene in result.structure.scenes:
        event = result.event_of_scene(scene.scene_id)
        start, stop = scene.frame_span
        scene_rows.append(
            "<tr>"
            f"<td>{scene.scene_id}</td>"
            f"<td>{start}-{stop}</td>"
            f"<td>{scene.shot_count}</td>"
            f'<td style="color:{EVENT_CSS[event.kind]};font-weight:bold;">'
            f"{event.kind.value}</td>"
            "</tr>"
        )

    storyboards = "".join(
        f"<h3>Level {level} storyboard "
        f"({len(skim.segments(level))} shots, FCR {fcr[level]:.2f})</h3>"
        + _storyboard_html(skim, level)
        for level in storyboard_levels
    )

    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ClassMiner — {title}</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; background: #fafafa; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #ccc; padding: 4px 10px; }}
</style></head><body>
<h1>ClassMiner report — {title}</h1>
<p>{sizes['clustered_scenes']} clustered scenes &gt; {sizes['scenes']} scenes
 &gt; {sizes['groups']} groups &gt; {sizes['shots']} shots
 (CRF {result.structure.compression_rate_factor:.3f})</p>
<h2>Event colour bar</h2>
{_color_bar_html(result)}
<h2>Scenes</h2>
<table><tr><th>scene</th><th>frames</th><th>shots</th><th>event</th></tr>
{''.join(scene_rows)}</table>
<h2>Scalable skim</h2>
{storyboards}
</body></html>
"""


def save_report(
    result: ClassMinerResult,
    path: str | Path,
    storyboard_levels: tuple[int, ...] = (4, 3),
) -> None:
    """Render and write the HTML report."""
    Path(path).write_text(
        render_report(result, storyboard_levels=storyboard_levels)
    )
