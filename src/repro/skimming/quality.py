"""Simulated viewer panel for skim quality (Fig. 14).

The paper's evaluation asked five students to score each skim level on
three questions (0-5, 5 best):

1. How well does the summary address the **main topic**?
2. How well does the summary cover the **scenarios** of the video?
3. Is the summary **concise**?

Real viewers being unavailable, we model the three questions as
measurable quantities against ground truth and average a panel of noisy
simulated viewers the same way the paper averages its students:

* Q1 — coverage of *topic-relevant* annotated scenes (with diminishing
  returns: seeing one topic shot already tells you the topic);
* Q2 — coverage of *all* annotated content scenes, linear;
* Q3 — non-redundancy: the fraction of skim shots that add a scene not
  already represented.

Each simulated viewer perturbs the objective score with personal bias
and per-question noise, then scores are clamped to [0, 5] and averaged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SkimmingError
from repro.skimming.skim import ScalableSkim
from repro.video.ground_truth import GroundTruth

#: Paper panel size.
DEFAULT_VIEWERS = 5


@dataclass(frozen=True)
class QualityScores:
    """Averaged panel scores for one skim level."""

    level: int
    topic: float
    scenario: float
    conciseness: float

    def as_tuple(self) -> tuple[float, float, float]:
        """``(Q1, Q2, Q3)``."""
        return (self.topic, self.scenario, self.conciseness)

    @property
    def overall(self) -> float:
        """Mean of the three questions (used to find the best level)."""
        return (self.topic + self.scenario + self.conciseness) / 3.0


def _covered_scenes(skim: ScalableSkim, truth: GroundTruth, level: int) -> set[int]:
    """Annotated scene ids represented by at least one skim shot."""
    covered: set[int] = set()
    for segment in skim.segments(level):
        start, stop = segment.frame_span
        midpoint = (start + stop) // 2
        for annotated in truth.shots:
            if annotated.contains(midpoint):
                covered.add(annotated.scene_id)
                break
    return covered


def objective_scores(
    skim: ScalableSkim, truth: GroundTruth, level: int
) -> tuple[float, float, float]:
    """Noise-free (Q1, Q2, Q3) in [0, 5] for one level."""
    content_scenes = {
        scene.scene_id for scene in truth.scenes if scene.shot_count >= 2
    }
    topic_scenes = {
        scene.scene_id for scene in truth.scenes if scene.topic_relevant
    }
    if not content_scenes:
        raise SkimmingError("ground truth has no content scenes")

    covered = _covered_scenes(skim, truth, level)
    topic_cover = (
        len(covered & topic_scenes) / len(topic_scenes) if topic_scenes else 1.0
    )
    scenario_cover = len(covered & content_scenes) / len(content_scenes)

    segments = skim.segments(level)
    # Non-redundancy: each skim shot should introduce a new scene.
    seen: set[int] = set()
    novel = 0
    for segment in segments:
        midpoint = (segment.frame_span[0] + segment.frame_span[1]) // 2
        scene_id = next(
            (s.scene_id for s in truth.shots if s.contains(midpoint)), None
        )
        if scene_id is not None and scene_id not in seen:
            seen.add(scene_id)
            novel += 1
    redundancy = 1.0 - novel / len(segments) if segments else 1.0

    q1 = 5.0 * np.sqrt(topic_cover)  # diminishing returns on topic
    q2 = 5.0 * scenario_cover
    q3 = 5.0 * (1.0 - 0.85 * redundancy)
    return (float(q1), float(q2), float(q3))


def panel_scores(
    skim: ScalableSkim,
    truth: GroundTruth,
    level: int,
    viewers: int = DEFAULT_VIEWERS,
    seed: int = 0,
) -> QualityScores:
    """Average a panel of noisy simulated viewers for one level."""
    if viewers < 1:
        raise SkimmingError("need at least one viewer")
    q1, q2, q3 = objective_scores(skim, truth, level)
    rng = np.random.default_rng(seed + level)
    samples = []
    for _ in range(viewers):
        bias = rng.normal(0.0, 0.15)  # per-viewer generosity
        noisy = [
            float(np.clip(q + bias + rng.normal(0.0, 0.25), 0.0, 5.0))
            for q in (q1, q2, q3)
        ]
        samples.append(noisy)
    means = np.mean(samples, axis=0)
    return QualityScores(
        level=level,
        topic=float(means[0]),
        scenario=float(means[1]),
        conciseness=float(means[2]),
    )


def evaluate_all_levels(
    skim: ScalableSkim,
    truth: GroundTruth,
    viewers: int = DEFAULT_VIEWERS,
    seed: int = 0,
) -> list[QualityScores]:
    """Fig. 14: panel scores for every skim level, coarsest last."""
    return [
        panel_scores(skim, truth, level, viewers=viewers, seed=seed)
        for level in sorted(skim.levels)
    ]


def best_level(scores: list[QualityScores]) -> int:
    """The level with the best overall score (the paper finds level 3)."""
    if not scores:
        raise SkimmingError("no scores to compare")
    return max(scores, key=lambda s: s.overall).level
