"""Pictorial summarisation: a poster image of the skim (Sec. 5).

"The mined video content structure and event categories can also
facilitate more applications like ... pictorial summarization."  This
module composes the representative frames of a skim level into a
single poster image — an actual pixel grid with event-coloured borders
— and writes it as a binary PPM (P6), a format that needs no imaging
library.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import SkimmingError
from repro.skimming.skim import ScalableSkim
from repro.types import EventKind

#: Border colour per event (RGB, uint8) — matches the colour bar.
BORDER_COLORS: dict[EventKind, tuple[int, int, int]] = {
    EventKind.PRESENTATION: (60, 90, 200),
    EventKind.DIALOG: (60, 180, 90),
    EventKind.CLINICAL_OPERATION: (200, 60, 60),
    EventKind.UNKNOWN: (120, 120, 120),
}

#: Pixels of event-coloured border around each cell.
BORDER = 2
#: Pixels of background gutter between cells.
GUTTER = 4


def compose_poster(
    skim: ScalableSkim,
    level: int | None = None,
    columns: int = 4,
    background: tuple[int, int, int] = (24, 24, 28),
) -> np.ndarray:
    """Compose the skim's representative frames into one RGB image.

    Returns a ``(H, W, 3)`` uint8 array: a ``columns``-wide grid of the
    level's representative frames, each wrapped in a border coloured by
    its scene's mined event.
    """
    if columns < 1:
        raise SkimmingError("need at least one column")
    segments = skim.segments(level)
    if not segments:
        raise SkimmingError("nothing to compose")

    frame_h, frame_w, _ = segments[0].shot.representative_frame.shape
    cell_h = frame_h + 2 * BORDER
    cell_w = frame_w + 2 * BORDER
    rows = -(-len(segments) // columns)
    height = rows * cell_h + (rows + 1) * GUTTER
    width = columns * cell_w + (columns + 1) * GUTTER

    poster = np.empty((height, width, 3), dtype=np.uint8)
    poster[:, :] = np.asarray(background, dtype=np.uint8)

    for index, segment in enumerate(segments):
        row, col = divmod(index, columns)
        top = GUTTER + row * (cell_h + GUTTER)
        left = GUTTER + col * (cell_w + GUTTER)
        border_color = np.asarray(BORDER_COLORS[segment.event], dtype=np.uint8)
        poster[top : top + cell_h, left : left + cell_w] = border_color
        poster[
            top + BORDER : top + BORDER + frame_h,
            left + BORDER : left + BORDER + frame_w,
        ] = segment.shot.representative_frame.pixels
    return poster


def write_ppm(image: np.ndarray, path: str | Path) -> None:
    """Write an RGB uint8 image as binary PPM (P6).

    PPM is self-describing and viewable by most image tools; writing it
    needs nothing beyond the standard library.
    """
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise SkimmingError("write_ppm expects an (H, W, 3) uint8 image")
    height, width = image.shape[:2]
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    Path(path).write_bytes(header + image.tobytes())


def read_ppm(path: str | Path) -> np.ndarray:
    """Read back a binary PPM written by :func:`write_ppm`."""
    raw = Path(path).read_bytes()
    if not raw.startswith(b"P6"):
        raise SkimmingError(f"{path} is not a binary PPM")
    parts = raw.split(b"\n", 3)
    if len(parts) < 4:
        raise SkimmingError(f"{path} has a truncated PPM header")
    try:
        width, height = (int(x) for x in parts[1].split())
        maxval = int(parts[2])
    except ValueError as exc:
        raise SkimmingError(f"{path} has a malformed PPM header: {exc}") from exc
    if maxval != 255:
        raise SkimmingError("only 8-bit PPM is supported")
    pixels = np.frombuffer(parts[3], dtype=np.uint8, count=height * width * 3)
    return pixels.reshape(height, width, 3).copy()


def save_poster(
    skim: ScalableSkim,
    path: str | Path,
    level: int | None = None,
    columns: int = 4,
) -> np.ndarray:
    """Compose and write the poster; returns the composed image."""
    poster = compose_poster(skim, level=level, columns=columns)
    write_ppm(poster, path)
    return poster
