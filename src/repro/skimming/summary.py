"""Summaries and compression accounting (Fig. 15).

The frame compression ratio (FCR) of a skim level is the fraction of
the video's frames shown at that level; the paper reports ~10% at the
top layer rising to 100% at layer 1.  The pictorial summary is a
storyboard of representative frames, one per skim segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SkimmingError
from repro.skimming.skim import ScalableSkim
from repro.types import EventKind


def frame_compression_ratio(skim: ScalableSkim, level: int) -> float:
    """FCR of one level: skim frames / total frames."""
    if skim.total_frames <= 0:
        raise SkimmingError("skim covers no frames")
    return skim.frame_count(level) / skim.total_frames


def fcr_by_level(skim: ScalableSkim) -> dict[int, float]:
    """FCR for every level (the Fig. 15 series)."""
    return {level: frame_compression_ratio(skim, level) for level in sorted(skim.levels)}


@dataclass(frozen=True)
class StoryboardCell:
    """One pictorial-summary cell."""

    shot_id: int
    start_seconds: float
    event: EventKind

    def caption(self) -> str:
        """Short caption used by the text storyboard."""
        minutes, seconds = divmod(int(self.start_seconds), 60)
        return f"shot {self.shot_id} @ {minutes:02d}:{seconds:02d} [{self.event.value}]"


def pictorial_summary(skim: ScalableSkim, level: int | None = None) -> list[StoryboardCell]:
    """Storyboard of the skim: one cell per segment at the level."""
    cells = []
    for segment in skim.segments(level):
        cells.append(
            StoryboardCell(
                shot_id=segment.shot.shot_id,
                start_seconds=segment.shot.start / segment.shot.fps,
                event=segment.event,
            )
        )
    return cells


def render_storyboard(skim: ScalableSkim, level: int | None = None, columns: int = 4) -> str:
    """Plain-text storyboard grid for terminals."""
    cells = pictorial_summary(skim, level)
    if not cells:
        raise SkimmingError("nothing to render")
    captions = [cell.caption() for cell in cells]
    width = max(len(caption) for caption in captions) + 2
    lines = []
    for row_start in range(0, len(captions), columns):
        row = captions[row_start : row_start + columns]
        lines.append("".join(caption.ljust(width) for caption in row).rstrip())
    return "\n".join(lines)
