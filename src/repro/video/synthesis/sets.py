"""Background sets: the rooms and locations of the synthetic clinic.

Each set function paints a full background onto a canvas.  Sets carry
distinct colour palettes so that scenes shot in different locations have
clearly different HSV histograms (the signal the scene detector keys on)
while shots inside one location stay similar.  A ``variant`` integer
nudges the palette so that repeated scenes can be rendered as near — but
not exact — copies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VideoError
from repro.video.synthesis.draw import (
    Color,
    draw_hline,
    draw_vline,
    fill_rect,
    value_noise_texture,
    vertical_gradient,
)


def _shade(color: Color, factor: float) -> Color:
    return tuple(float(np.clip(c * factor, 0.0, 1.0)) for c in color)  # type: ignore[return-value]


def _apply_texture(canvas: np.ndarray, rng: np.random.Generator, amplitude: float) -> None:
    field = value_noise_texture(canvas.shape[0], canvas.shape[1], rng, amplitude=amplitude)
    canvas += field[:, :, None]
    np.clip(canvas, 0.0, 1.0, out=canvas)


def lecture_hall(canvas: np.ndarray, rng: np.random.Generator, variant: int = 0) -> None:
    """Auditorium: warm curtain backdrop, stage line, wooden podium."""
    warm = (0.35 + 0.02 * (variant % 3), 0.18, 0.16)
    vertical_gradient(canvas, _shade(warm, 1.3), _shade(warm, 0.7))
    _apply_texture(canvas, rng, 0.05)
    # Stage floor.
    fill_rect(canvas, 0.78, 0.0, 1.0, 1.0, (0.27, 0.27, 0.30))
    # Podium on the right.
    fill_rect(canvas, 0.45, 0.68, 0.80, 0.88, (0.24, 0.27, 0.36))
    draw_hline(canvas, 0.45, 0.68, 0.88, (0.36, 0.40, 0.50), thickness=2)


def exam_room(canvas: np.ndarray, rng: np.random.Generator, variant: int = 0) -> None:
    """Examination room: pale green walls, window, examination bed."""
    wall = (0.72, 0.80 - 0.02 * (variant % 3), 0.74)
    vertical_gradient(canvas, _shade(wall, 1.05), _shade(wall, 0.85))
    _apply_texture(canvas, rng, 0.03)
    # Window with sky.
    fill_rect(canvas, 0.10, 0.06, 0.42, 0.30, (0.55, 0.70, 0.88))
    draw_vline(canvas, 0.18, 0.10, 0.42, (0.92, 0.92, 0.92), thickness=1)
    # Examination bed.
    fill_rect(canvas, 0.62, 0.55, 0.78, 0.97, (0.85, 0.86, 0.90))
    fill_rect(canvas, 0.78, 0.58, 0.92, 0.62, (0.45, 0.45, 0.48))
    fill_rect(canvas, 0.78, 0.90, 0.92, 0.94, (0.45, 0.45, 0.48))


def operating_room(canvas: np.ndarray, rng: np.random.Generator, variant: int = 0) -> None:
    """Operating room: teal drapes, instrument tray, overhead lamp."""
    teal = (0.10, 0.42 + 0.02 * (variant % 3), 0.44)
    vertical_gradient(canvas, _shade(teal, 1.1), _shade(teal, 0.8))
    _apply_texture(canvas, rng, 0.04)
    # Overhead lamp.
    fill_rect(canvas, 0.04, 0.38, 0.12, 0.62, (0.88, 0.88, 0.84))
    # Instrument tray with steel instruments.
    fill_rect(canvas, 0.70, 0.04, 0.82, 0.34, (0.70, 0.72, 0.75))
    draw_hline(canvas, 0.74, 0.07, 0.30, (0.50, 0.52, 0.56), thickness=1)
    draw_hline(canvas, 0.78, 0.07, 0.26, (0.50, 0.52, 0.56), thickness=1)


def corridor(canvas: np.ndarray, rng: np.random.Generator, variant: int = 0) -> None:
    """Hospital corridor: neutral walls and a row of doors (filler set)."""
    wall = (0.62, 0.60, 0.58 + 0.02 * (variant % 3))
    vertical_gradient(canvas, _shade(wall, 1.05), _shade(wall, 0.8))
    _apply_texture(canvas, rng, 0.03)
    for i in range(3):
        left = 0.08 + 0.30 * i
        fill_rect(canvas, 0.25, left, 0.75, left + 0.16, (0.30, 0.34, 0.42))
    fill_rect(canvas, 0.75, 0.0, 1.0, 1.0, (0.48, 0.47, 0.46))


def imaging_lab(canvas: np.ndarray, rng: np.random.Generator, variant: int = 0) -> None:
    """Nuclear-medicine lab: dark blue room with glowing monitors."""
    blue = (0.10, 0.12, 0.30 + 0.02 * (variant % 3))
    vertical_gradient(canvas, _shade(blue, 1.2), _shade(blue, 0.7))
    _apply_texture(canvas, rng, 0.04)
    # Monitor bank.
    for i in range(2):
        left = 0.12 + 0.40 * i
        fill_rect(canvas, 0.20, left, 0.50, left + 0.30, (0.05, 0.05, 0.08))
        fill_rect(canvas, 0.24, left + 0.03, 0.46, left + 0.27, (0.20, 0.70, 0.45))
    fill_rect(canvas, 0.72, 0.0, 1.0, 1.0, (0.16, 0.16, 0.22))


#: Registry used by the screenplay compiler.
SET_REGISTRY = {
    "lecture_hall": lecture_hall,
    "exam_room": exam_room,
    "operating_room": operating_room,
    "corridor": corridor,
    "imaging_lab": imaging_lab,
}


def render_set(name: str, canvas: np.ndarray, rng: np.random.Generator, variant: int = 0) -> None:
    """Paint the named background set onto ``canvas``."""
    try:
        painter = SET_REGISTRY[name]
    except KeyError:
        raise VideoError(f"unknown set {name!r}; known: {sorted(SET_REGISTRY)}") from None
    painter(canvas, rng, variant)
