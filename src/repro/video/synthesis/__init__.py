"""Synthetic medical-video generator: screenplays, compositions, corpus."""

from repro.video.synthesis.compositions import (
    COMPOSITION_REGISTRY,
    ShotParams,
    render_composition,
)
from repro.video.synthesis.corpus import (
    CORPUS_TITLES,
    build_screenplay,
    demo_screenplay,
    load_corpus,
    load_video,
)
from repro.video.synthesis.generator import GeneratedVideo, generate_video
from repro.video.synthesis.script import (
    SceneSpec,
    Screenplay,
    ShotSpec,
    clinical_scene,
    dialog_scene,
    filler_scene,
    presentation_scene,
    separator_scene,
)

__all__ = [
    "COMPOSITION_REGISTRY",
    "CORPUS_TITLES",
    "GeneratedVideo",
    "SceneSpec",
    "Screenplay",
    "ShotParams",
    "ShotSpec",
    "build_screenplay",
    "clinical_scene",
    "demo_screenplay",
    "dialog_scene",
    "filler_scene",
    "generate_video",
    "load_corpus",
    "load_video",
    "presentation_scene",
    "render_composition",
    "separator_scene",
]
