"""Shot compositions: named camera setups the screenplay references.

A composition renders the *static* look of one camera setup plus its
*animated* elements (mouths move with ``t``).  Rendering is deterministic
given ``(seed, params, t)``: the static scenery re-renders identically on
every frame of a shot, while the generator adds per-frame camera jitter
and sensor noise on top.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import VideoError
from repro.video.synthesis import actors, slides
from repro.video.synthesis.draw import fill_rect, new_canvas
from repro.video.synthesis.sets import render_set


@dataclass(frozen=True)
class ShotParams:
    """Free parameters of one composition instance.

    Attributes
    ----------
    actor / actor_b:
        Wardrobe/skin indices into the actor tables (person A and B).
    slide_id / variant:
        Content selectors for slides, clip art, sets.
    coverage:
        Skin coverage for surgical/dermatology close-ups.
    talking:
        Whether mouths animate (drives tiny intra-shot variation).
    """

    actor: int = 0
    actor_b: int = 1
    slide_id: int = 0
    variant: int = 0
    coverage: float = 0.55
    talking: bool = True


Renderer = Callable[[np.ndarray, np.random.Generator, ShotParams, float], None]


def _person_look(index: int) -> tuple[tuple[float, float, float], tuple[float, float, float]]:
    skin = actors.SKIN_TONES[index % len(actors.SKIN_TONES)]
    shirt = actors.WARDROBE[index % len(actors.WARDROBE)]
    return skin, shirt


def _podium_speaker(canvas, rng, params: ShotParams, t: float) -> None:
    """Lecture hall, presenter in face close-up at the podium."""
    render_set("lecture_hall", canvas, rng, params.variant)
    skin, shirt = _person_look(params.actor)
    phase = t * 7.0 if params.talking else 0.0
    actors.draw_person(canvas, 0.42, 0.34, 0.27, skin, shirt, talking_phase=phase)


def _podium_wide(canvas, rng, params: ShotParams, t: float) -> None:
    """Lecture hall, wide framing: presenter small on stage."""
    render_set("lecture_hall", canvas, rng, params.variant)
    skin, shirt = _person_look(params.actor)
    phase = t * 7.0 if params.talking else 0.0
    actors.draw_person(canvas, 0.30, 0.48, 0.10, skin, shirt, talking_phase=phase)


def _slide_fullscreen(canvas, rng, params: ShotParams, t: float) -> None:
    """Full-screen presentation slide."""
    slides.draw_slide(canvas, rng, params.slide_id)
    del t


def _clipart_fullscreen(canvas, rng, params: ShotParams, t: float) -> None:
    """Full-screen anatomical clip-art diagram."""
    slides.draw_clipart(canvas, rng, params.variant)
    del t


def _sketch_fullscreen(canvas, rng, params: ShotParams, t: float) -> None:
    """Full-screen whiteboard sketch."""
    slides.draw_sketch(canvas, rng, params.variant)
    del t


def _black(canvas, rng, params: ShotParams, t: float) -> None:
    """Editing black frame."""
    slides.draw_black_frame(canvas)
    del rng, params, t


def _interview_a(canvas, rng, params: ShotParams, t: float) -> None:
    """Exam room, face close-up of person A looking right."""
    render_set("exam_room", canvas, rng, params.variant)
    skin, shirt = _person_look(params.actor)
    phase = t * 6.0 if params.talking else 0.0
    actors.draw_person(canvas, 0.38, 0.40, 0.25, skin, shirt, talking_phase=phase, facing=0.2)


def _interview_b(canvas, rng, params: ShotParams, t: float) -> None:
    """Exam room, reverse shot: face close-up of person B looking left."""
    render_set("exam_room", canvas, rng, params.variant)
    skin, shirt = _person_look(params.actor_b)
    phase = t * 6.0 if params.talking else 0.0
    actors.draw_person(canvas, 0.60, 0.40, 0.25, skin, shirt, talking_phase=phase, facing=-0.2)


def _two_shot(canvas, rng, params: ShotParams, t: float) -> None:
    """Exam room, both conversation partners in a wide two-shot."""
    render_set("exam_room", canvas, rng, params.variant)
    skin_a, shirt_a = _person_look(params.actor)
    skin_b, shirt_b = _person_look(params.actor_b)
    phase = t * 6.0 if params.talking else 0.0
    actors.draw_person(canvas, 0.28, 0.46, 0.13, skin_a, shirt_a, talking_phase=phase, facing=0.25)
    actors.draw_person(canvas, 0.72, 0.46, 0.13, skin_b, shirt_b, talking_phase=0.0, facing=-0.25)


def _surgical_closeup(canvas, rng, params: ShotParams, t: float) -> None:
    """Operating room, incision close-up with skin and blood.

    The field position swings with the camera seed so different
    close-up angles of the same operation read as distinct shots.
    """
    render_set("operating_room", canvas, rng, params.variant)
    skin, _ = _person_look(params.actor)
    offset_y = float(rng.uniform(-0.12, 0.12))
    offset_x = float(rng.uniform(-0.15, 0.15))
    actors.draw_surgical_field(
        canvas, rng, skin, incision=True, coverage=params.coverage,
        center=(0.5 + offset_y, 0.5 + offset_x),
    )
    del t


def _surgical_wide(canvas, rng, params: ShotParams, t: float) -> None:
    """Operating room, wide: staff around the draped table, small field."""
    render_set("operating_room", canvas, rng, params.variant)
    skin, _ = _person_look(params.actor)
    # Draped table across the lower third.
    fill_rect(canvas, 0.55, 0.10, 0.70, 0.95, (0.16, 0.50, 0.52))
    # Surgeon and assistant in scrubs behind the table.
    actors.draw_person(canvas, 0.30, 0.40, 0.09, skin, (0.25, 0.45, 0.30))
    actors.draw_person(canvas, 0.66, 0.42, 0.08, actors.SKIN_TONES[(params.actor + 1) % len(actors.SKIN_TONES)], (0.25, 0.45, 0.30))
    # Exposed sterile window on the drape.
    actors.draw_surgical_field(
        canvas, rng, skin, incision=False, coverage=0.06, center=(0.62, 0.55)
    )
    del t


def _surgeon_face_a(canvas, rng, params: ShotParams, t: float) -> None:
    """Operating room, masked-cap surgeon face close-up (camera A)."""
    render_set("operating_room", canvas, rng, params.variant)
    skin, _ = _person_look(params.actor)
    phase = t * 6.0 if params.talking else 0.0
    actors.draw_person(canvas, 0.38, 0.40, 0.25, skin, (0.25, 0.45, 0.30), talking_phase=phase, facing=0.2)


def _surgeon_face_b(canvas, rng, params: ShotParams, t: float) -> None:
    """Operating room, reverse angle on the assisting surgeon (camera B)."""
    render_set("operating_room", canvas, rng, params.variant)
    skin, _ = _person_look(params.actor_b)
    phase = t * 6.0 if params.talking else 0.0
    actors.draw_person(canvas, 0.60, 0.40, 0.25, skin, (0.25, 0.45, 0.30), talking_phase=phase, facing=-0.2)


def _organ_still(canvas, rng, params: ShotParams, t: float) -> None:
    """Organ photograph on a dark drape."""
    actors.draw_organ(canvas, rng)
    del params, t


def _scan_display(canvas, rng, params: ShotParams, t: float) -> None:
    """Imaging lab with a nuclear-medicine scan on the monitor wall.

    The inset geometry and scan palette swing with ``variant`` so that
    successive scan reviews are distinct shots.
    """
    render_set("imaging_lab", canvas, rng, params.variant)
    inset = new_canvas(canvas.shape[0], canvas.shape[1])
    actors.draw_scan_image(
        inset,
        rng,
        hot_spots=2 + params.variant % 4,
        body_width=0.16 + 0.06 * (params.variant % 3),
        hot_color=actors.SCAN_PALETTES[params.variant % len(actors.SCAN_PALETTES)],
    )
    h, w = canvas.shape[:2]
    shift = 0.05 * (params.variant % 3) - 0.05
    y0, y1 = int((0.14 + shift) * h), int((0.80 + shift) * h)
    x0, x1 = int((0.18 - shift) * w), int((0.82 - shift) * w)
    canvas[y0:y1, x0:x1] = inset[y0:y1, x0:x1]
    del t


def _limb_exam(canvas, rng, params: ShotParams, t: float) -> None:
    """Dermatology close-up: an examined limb fills the frame."""
    render_set("exam_room", canvas, rng, params.variant)
    skin, _ = _person_look(params.actor)
    actors.draw_examined_limb(canvas, rng, skin, lesion=True)
    del t


def _surgical_zoom(canvas, rng, params: ShotParams, t: float) -> None:
    """Slow zoom into the surgical field over the shot's duration.

    Gradual motion like this is the classic false-positive source for
    naive shot detectors; the adaptive local threshold must ride the
    elevated-but-smooth differences without declaring cuts.
    """
    render_set("operating_room", canvas, rng, params.variant)
    skin, _ = _person_look(params.actor)
    coverage = params.coverage * (0.5 + 0.8 * t)  # zooming in
    actors.draw_surgical_field(
        canvas, rng, skin, incision=True, coverage=coverage, center=(0.5, 0.5)
    )


def _corridor_walk(canvas, rng, params: ShotParams, t: float) -> None:
    """Corridor establishing shot; a figure crosses the frame."""
    render_set("corridor", canvas, rng, params.variant)
    skin, shirt = _person_look(params.actor)
    cx = 0.2 + 0.6 * t
    actors.draw_person(canvas, cx, 0.50, 0.08, skin, shirt, talking_phase=0.0)


COMPOSITION_REGISTRY: dict[str, Renderer] = {
    "podium_speaker": _podium_speaker,
    "podium_wide": _podium_wide,
    "slide_fullscreen": _slide_fullscreen,
    "clipart_fullscreen": _clipart_fullscreen,
    "sketch_fullscreen": _sketch_fullscreen,
    "black": _black,
    "interview_a": _interview_a,
    "interview_b": _interview_b,
    "two_shot": _two_shot,
    "surgeon_face_a": _surgeon_face_a,
    "surgeon_face_b": _surgeon_face_b,
    "surgical_closeup": _surgical_closeup,
    "surgical_zoom": _surgical_zoom,
    "surgical_wide": _surgical_wide,
    "organ_still": _organ_still,
    "scan_display": _scan_display,
    "limb_exam": _limb_exam,
    "corridor_walk": _corridor_walk,
}


def render_composition(
    name: str,
    height: int,
    width: int,
    seed: int,
    params: ShotParams,
    t: float,
) -> np.ndarray:
    """Render one frame of the named composition at shot-time ``t``.

    The ``seed`` fixes all static scenery; only ``t``-driven animation
    changes between frames of one shot.
    """
    try:
        renderer = COMPOSITION_REGISTRY[name]
    except KeyError:
        raise VideoError(
            f"unknown composition {name!r}; known: {sorted(COMPOSITION_REGISTRY)}"
        ) from None
    canvas = new_canvas(height, width)
    rng = np.random.default_rng(seed)
    renderer(canvas, rng, params, t)
    return canvas
