"""Actors and anatomy: people, surgical fields, organs, scan imagery.

People are drawn so the vision substrate can find them: heads are skin-
tone ellipses (matching :data:`repro.vision.skin.DEFAULT_SKIN_MODEL`)
with dark eye and mouth blobs positioned where the face verifier looks
for them.  Surgical fields expose large smooth skin patches with
blood-red incisions for the clinical-operation cues.
"""

from __future__ import annotations

import numpy as np

from repro.video.synthesis.draw import Color, fill_ellipse, fill_rect

#: Skin tones drawn from the same chromaticity family as the default
#: Gaussian skin model.
SKIN_TONES: tuple[Color, ...] = (
    (0.88, 0.67, 0.41),
    (0.78, 0.53, 0.26),
    (0.95, 0.80, 0.62),
    (0.62, 0.40, 0.20),
    (0.90, 0.72, 0.55),
)

#: Shirt / scrub colours keyed by wardrobe id.
WARDROBE: tuple[Color, ...] = (
    (0.20, 0.35, 0.60),  # blue scrubs
    (0.85, 0.85, 0.88),  # white coat
    (0.45, 0.20, 0.25),  # maroon sweater
    (0.25, 0.45, 0.30),  # green scrubs
    (0.55, 0.50, 0.30),  # olive shirt
)

BLOOD_RED: Color = (0.60, 0.08, 0.10)
DARK_FEATURE: Color = (0.10, 0.08, 0.08)


def draw_person(
    canvas: np.ndarray,
    cx: float,
    head_cy: float,
    head_ry: float,
    skin_tone: Color,
    shirt: Color,
    talking_phase: float = 0.0,
    facing: float = 0.0,
) -> None:
    """Draw a head-and-shoulders person.

    Parameters
    ----------
    cx / head_cy:
        Fractional centre of the head.
    head_ry:
        Fractional vertical head radius; the close-up rule needs about
        0.22+ here for the face to exceed 10% of the frame.
    talking_phase:
        0..1; modulates mouth opening so consecutive frames differ
        slightly, as real footage does.
    facing:
        Horizontal offset of facial features (-0.3..0.3) to suggest the
        person looking left/right (used for dialog reverse shots).
    """
    head_rx = head_ry * 0.82
    # Torso.
    fill_rect(
        canvas,
        head_cy + head_ry * 0.9,
        cx - head_rx * 2.2,
        1.0,
        cx + head_rx * 2.2,
        shirt,
    )
    # Neck.
    fill_rect(
        canvas,
        head_cy + head_ry * 0.7,
        cx - head_rx * 0.35,
        head_cy + head_ry * 1.1,
        cx + head_rx * 0.35,
        skin_tone,
    )
    # Head.
    fill_ellipse(canvas, head_cy, cx, head_ry, head_rx, skin_tone)
    # Hair cap.
    fill_ellipse(
        canvas,
        head_cy - head_ry * 0.62,
        cx,
        head_ry * 0.42,
        head_rx * 0.95,
        (0.15, 0.12, 0.10),
    )
    # Eyes: dark blobs in the upper half of the face.
    eye_dy = -head_ry * 0.12
    eye_dx = head_rx * 0.40
    eye_shift = facing * head_rx
    for side in (-1.0, 1.0):
        fill_ellipse(
            canvas,
            head_cy + eye_dy,
            cx + side * eye_dx + eye_shift,
            head_ry * 0.10,
            head_rx * 0.14,
            DARK_FEATURE,
        )
    # Mouth: opens and closes with the talking phase.
    mouth_open = 0.06 + 0.10 * abs(np.sin(np.pi * talking_phase))
    fill_ellipse(
        canvas,
        head_cy + head_ry * 0.45,
        cx + eye_shift * 0.5,
        head_ry * mouth_open,
        head_rx * 0.30,
        (0.35, 0.10, 0.12),
    )


def draw_surgical_field(
    canvas: np.ndarray,
    rng: np.random.Generator,
    skin_tone: Color,
    incision: bool = True,
    coverage: float = 0.55,
    center: tuple[float, float] | None = None,
) -> None:
    """Close-up of a surgical site: a large skin patch, optionally cut.

    ``coverage`` controls the fraction of the frame taken by skin; the
    clinical-operation rule requires > 20%.  ``center`` overrides the
    default jittered field centre.
    """
    half = float(np.sqrt(coverage) / 2.0)
    if center is None:
        cy = 0.5 + float(rng.uniform(-0.05, 0.05))
        cx = 0.5 + float(rng.uniform(-0.05, 0.05))
    else:
        cy, cx = center
    fill_ellipse(canvas, cy, cx, half * 1.1, half * 1.25, skin_tone)
    if incision:
        # Blood-red incision strip across the middle of the field.
        fill_rect(
            canvas,
            cy - 0.035,
            cx - half * 0.8,
            cy + 0.035,
            cx + half * 0.8,
            BLOOD_RED,
        )
        # Retractor instruments at the edges.
        fill_rect(canvas, cy - 0.02, cx - half * 1.1, cy + 0.02, cx - half * 0.85, (0.75, 0.76, 0.78))
        fill_rect(canvas, cy - 0.02, cx + half * 0.85, cy + 0.02, cx + half * 1.1, (0.75, 0.76, 0.78))


def draw_organ(canvas: np.ndarray, rng: np.random.Generator) -> None:
    """Organ photograph: a blood-red mass on a dark surgical drape."""
    canvas[:, :] = (0.08, 0.10, 0.12)
    cy = 0.5 + float(rng.uniform(-0.04, 0.04))
    cx = 0.5 + float(rng.uniform(-0.04, 0.04))
    fill_ellipse(canvas, cy, cx, 0.30, 0.34, BLOOD_RED)
    fill_ellipse(canvas, cy - 0.08, cx - 0.10, 0.10, 0.12, (0.70, 0.14, 0.16))
    fill_ellipse(canvas, cy + 0.10, cx + 0.08, 0.07, 0.09, (0.45, 0.05, 0.08))


#: Hot-spot palettes for scan imagery (different tracer windows).
SCAN_PALETTES: tuple[Color, ...] = (
    (0.95, 0.75, 0.20),  # amber
    (0.90, 0.30, 0.15),  # hot red-orange
    (0.30, 0.90, 0.45),  # gamma green
    (0.40, 0.60, 0.95),  # cool blue
)


def draw_scan_image(
    canvas: np.ndarray,
    rng: np.random.Generator,
    hot_spots: int = 3,
    body_width: float = 0.22,
    hot_color: Color = SCAN_PALETTES[0],
) -> None:
    """Nuclear-medicine scan: grayscale body outline with tracer hot spots."""
    canvas[:, :] = (0.02, 0.02, 0.04)
    fill_ellipse(canvas, 0.5, 0.5, 0.42, body_width, (0.25, 0.25, 0.28))
    for _ in range(hot_spots):
        cy = float(rng.uniform(0.2, 0.8))
        cx = 0.5 + float(rng.uniform(-body_width, body_width)) * 0.7
        fill_ellipse(canvas, cy, cx, 0.06, 0.06, hot_color)


def draw_examined_limb(
    canvas: np.ndarray,
    rng: np.random.Generator,
    skin_tone: Color,
    lesion: bool = True,
) -> None:
    """Dermatology close-up: a limb filling much of the frame."""
    fill_rect(canvas, 0.25, 0.0, 0.75, 1.0, skin_tone)
    # Soft shading along the limb.
    fill_rect(canvas, 0.25, 0.0, 0.32, 1.0, tuple(c * 0.85 for c in skin_tone))  # type: ignore[arg-type]
    if lesion:
        cy = 0.5 + float(rng.uniform(-0.08, 0.08))
        cx = float(rng.uniform(0.3, 0.7))
        fill_ellipse(canvas, cy, cx, 0.06, 0.07, (0.50, 0.18, 0.14))
