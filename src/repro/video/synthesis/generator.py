"""Screenplay compiler: renders a :class:`Screenplay` into a video.

Produces the three artefacts the rest of the system consumes:

* a :class:`~repro.video.stream.VideoStream` with per-frame camera
  jitter, sensor noise and brightness flicker;
* a synchronised audio track (speech per the shot's speaker label,
  ambience otherwise);
* a complete :class:`~repro.video.ground_truth.GroundTruth`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.audio.synthesis import VOICE_BANK, synthesize_ambient, synthesize_speech
from repro.audio.waveform import DEFAULT_SAMPLE_RATE, Waveform
from repro.errors import VideoError
from repro.video.frame import Frame
from repro.video.ground_truth import GroundTruth, SceneSpan, ShotSpan
from repro.video.stream import VideoStream
from repro.video.synthesis.compositions import render_composition
from repro.video.synthesis.draw import add_noise, adjust_brightness, camera_jitter
from repro.video.synthesis.script import Screenplay


@dataclass
class GeneratedVideo:
    """A rendered synthetic video with its annotations."""

    stream: VideoStream
    truth: GroundTruth
    screenplay: Screenplay

    @property
    def title(self) -> str:
        """Screenplay title."""
        return self.screenplay.title


def _stable_seed(*parts: object) -> int:
    """Deterministic 32-bit seed from arbitrary string-able parts."""
    text = "/".join(str(part) for part in parts)
    return zlib.crc32(text.encode())


def _shot_audio(
    speaker: str | None,
    sample_count: int,
    seed: int,
    sample_rate: int,
) -> np.ndarray:
    """Exactly ``sample_count`` samples of this shot's soundtrack."""
    duration = sample_count / sample_rate + 0.05
    if speaker is None:
        wave = synthesize_ambient(duration, sample_rate=sample_rate, seed=seed)
    else:
        if speaker not in VOICE_BANK:
            raise VideoError(f"unknown speaker {speaker!r}; known: {sorted(VOICE_BANK)}")
        wave = synthesize_speech(
            VOICE_BANK[speaker], duration, sample_rate=sample_rate, seed=seed
        )
    samples = wave.samples
    if samples.size < sample_count:
        samples = np.pad(samples, (0, sample_count - samples.size))
    return samples[:sample_count]


def generate_video(
    screenplay: Screenplay,
    seed: int = 0,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    with_audio: bool = True,
) -> GeneratedVideo:
    """Render a screenplay into frames, audio and ground truth.

    Determinism: the result depends only on ``(screenplay, seed)``.
    Scenes that share a ``repeat_key`` re-render from identical scenery
    seeds, making them near-duplicates (ground truth for clustering).
    """
    fps = screenplay.fps
    height, width = screenplay.height, screenplay.width

    frames: list[Frame] = []
    shots: list[ShotSpan] = []
    groups: list[list[int]] = []
    scenes: list[SceneSpan] = []
    audio_parts: list[np.ndarray] = []
    repeat_members: dict[str, list[int]] = {}

    global_shot = 0
    frame_cursor = 0
    sample_cursor = 0

    for scene_index, scene in enumerate(screenplay.scenes):
        scene_first_shot = global_shot
        # Scenery identity: repeats reuse the repeat key, so their camera
        # seeds (and therefore their rendered pixels) match.
        scenery_key = scene.repeat_key if scene.repeat_key else f"scene{scene_index}"
        if scene.repeat_key:
            repeat_members.setdefault(scene.repeat_key, []).append(scene_index)

        local_spans: list[tuple[int, int]] = []
        for local_index, shot in enumerate(scene.shots):
            frame_count = max(2, int(round(shot.seconds * fps)))
            camera = shot.camera_id if shot.camera_id else f"shot{local_index}"
            static_seed = _stable_seed(screenplay.title, scenery_key, camera)
            motion_rng = np.random.default_rng(
                _stable_seed(screenplay.title, seed, scene_index, local_index)
            )

            for k in range(frame_count):
                t = k / frame_count
                canvas = render_composition(
                    shot.composition, height, width, static_seed, shot.params, t
                )
                canvas = camera_jitter(canvas, motion_rng, max_shift=1)
                adjust_brightness(canvas, 1.0 + float(motion_rng.normal(0.0, 0.005)))
                add_noise(canvas, motion_rng, sigma=0.008)
                frames.append(Frame(pixels=canvas, index=frame_cursor + k))

            start = frame_cursor
            stop = frame_cursor + frame_count
            shots.append(
                ShotSpan(
                    shot_id=global_shot,
                    start=start,
                    stop=stop,
                    speaker=shot.speaker,
                    scene_id=scene_index,
                )
            )
            local_spans.append((start, stop))

            if with_audio:
                next_sample = int(round(stop / fps * sample_rate))
                count = next_sample - sample_cursor
                audio_seed = _stable_seed(screenplay.title, seed, "audio", scene_index, local_index)
                audio_parts.append(
                    _shot_audio(shot.speaker, count, audio_seed, sample_rate)
                )
                sample_cursor = next_sample

            frame_cursor = stop
            global_shot += 1

        for local_group in scene.groups:
            groups.append([scene_first_shot + i for i in local_group])
        scenes.append(
            SceneSpan(
                scene_id=scene_index,
                first_shot=scene_first_shot,
                last_shot=global_shot - 1,
                event=scene.event,
                subject=scene.subject,
                topic_relevant=scene.topic_relevant,
            )
        )

    audio = None
    if with_audio:
        audio = Waveform(
            samples=np.clip(np.concatenate(audio_parts), -1.0, 1.0),
            sample_rate=sample_rate,
        )

    stream = VideoStream(frames=frames, fps=fps, title=screenplay.title, audio=audio)
    truth = GroundTruth(
        shots=shots,
        groups=groups,
        scenes=scenes,
        duplicate_scene_sets=[ids for ids in repeat_members.values() if len(ids) > 1],
    )
    truth.validate(len(frames))
    return GeneratedVideo(stream=stream, truth=truth, screenplay=screenplay)
