"""Low-level procedural drawing primitives on RGB pixel buffers.

All functions mutate a ``(H, W, 3)`` ``float64`` canvas with channels in
``[0, 1]`` — the generator converts to ``uint8`` once per frame.  Shapes
use fractional coordinates in ``[0, 1]`` relative to the canvas so the
same composition renders at any resolution.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VideoError

Color = tuple[float, float, float]


def new_canvas(height: int, width: int, color: Color = (0.0, 0.0, 0.0)) -> np.ndarray:
    """Allocate a float canvas pre-filled with ``color``."""
    if height < 1 or width < 1:
        raise VideoError("canvas must be at least 1x1")
    canvas = np.empty((height, width, 3), dtype=np.float64)
    canvas[:, :] = np.asarray(color, dtype=np.float64)
    return canvas


def _to_px(value: float, limit: int) -> int:
    return int(round(np.clip(value, 0.0, 1.0) * limit))


def fill_rect(
    canvas: np.ndarray,
    top: float,
    left: float,
    bottom: float,
    right: float,
    color: Color,
) -> None:
    """Fill an axis-aligned rectangle given in fractional coordinates."""
    height, width = canvas.shape[:2]
    y0, y1 = _to_px(top, height), _to_px(bottom, height)
    x0, x1 = _to_px(left, width), _to_px(right, width)
    if y1 > y0 and x1 > x0:
        canvas[y0:y1, x0:x1] = np.asarray(color, dtype=np.float64)


def fill_ellipse(
    canvas: np.ndarray,
    cy: float,
    cx: float,
    ry: float,
    rx: float,
    color: Color,
) -> None:
    """Fill an ellipse centred at ``(cy, cx)`` with fractional radii."""
    height, width = canvas.shape[:2]
    ys = (np.arange(height) + 0.5) / height
    xs = (np.arange(width) + 0.5) / width
    if ry <= 0 or rx <= 0:
        return
    mask = ((ys[:, None] - cy) / ry) ** 2 + ((xs[None, :] - cx) / rx) ** 2 <= 1.0
    canvas[mask] = np.asarray(color, dtype=np.float64)


def vertical_gradient(canvas: np.ndarray, top_color: Color, bottom_color: Color) -> None:
    """Fill the whole canvas with a vertical linear gradient."""
    height = canvas.shape[0]
    t = np.linspace(0.0, 1.0, height)[:, None, None]
    top = np.asarray(top_color, dtype=np.float64)[None, None, :]
    bottom = np.asarray(bottom_color, dtype=np.float64)[None, None, :]
    canvas[:, :, :] = top * (1.0 - t) + bottom * t


def draw_hline(
    canvas: np.ndarray, y: float, left: float, right: float, color: Color, thickness: int = 1
) -> None:
    """Horizontal line at fractional row ``y`` spanning ``[left, right]``."""
    height, width = canvas.shape[:2]
    y0 = _to_px(y, height - 1)
    x0, x1 = _to_px(left, width), _to_px(right, width)
    y1 = min(y0 + max(thickness, 1), height)
    if x1 > x0:
        canvas[y0:y1, x0:x1] = np.asarray(color, dtype=np.float64)


def draw_vline(
    canvas: np.ndarray, x: float, top: float, bottom: float, color: Color, thickness: int = 1
) -> None:
    """Vertical line at fractional column ``x`` spanning ``[top, bottom]``."""
    height, width = canvas.shape[:2]
    x0 = _to_px(x, width - 1)
    y0, y1 = _to_px(top, height), _to_px(bottom, height)
    x1 = min(x0 + max(thickness, 1), width)
    if y1 > y0:
        canvas[y0:y1, x0:x1] = np.asarray(color, dtype=np.float64)


def add_noise(canvas: np.ndarray, rng: np.random.Generator, sigma: float = 0.012) -> None:
    """Sensor noise: small Gaussian perturbation, clipped back to [0, 1]."""
    canvas += rng.normal(0.0, sigma, canvas.shape)
    np.clip(canvas, 0.0, 1.0, out=canvas)


def adjust_brightness(canvas: np.ndarray, factor: float) -> None:
    """Global brightness flicker (factor near 1.0)."""
    canvas *= factor
    np.clip(canvas, 0.0, 1.0, out=canvas)


def camera_jitter(canvas: np.ndarray, rng: np.random.Generator, max_shift: int = 1) -> np.ndarray:
    """Handheld jitter: roll the image by up to ``max_shift`` pixels."""
    dy = int(rng.integers(-max_shift, max_shift + 1))
    dx = int(rng.integers(-max_shift, max_shift + 1))
    return np.roll(canvas, shift=(dy, dx), axis=(0, 1))


def value_noise_texture(
    height: int,
    width: int,
    rng: np.random.Generator,
    cells: int = 6,
    amplitude: float = 0.08,
) -> np.ndarray:
    """Smooth value-noise field in ``[-amplitude, amplitude]``.

    Bilinear interpolation of a coarse random grid — used to give
    backgrounds organic, natural-image statistics so they are not
    mistaken for man-made frames.
    """
    grid = rng.uniform(-1.0, 1.0, (cells + 1, cells + 1))
    ys = np.linspace(0.0, cells, height)
    xs = np.linspace(0.0, cells, width)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y0 = np.minimum(y0, cells - 1)
    x0 = np.minimum(x0, cells - 1)
    ty = (ys - y0)[:, None]
    tx = (xs - x0)[None, :]
    top = grid[y0][:, x0] * (1 - tx) + grid[y0][:, x0 + 1] * tx
    bottom = grid[y0 + 1][:, x0] * (1 - tx) + grid[y0 + 1][:, x0 + 1] * tx
    field = top * (1 - ty) + bottom * ty
    return field * amplitude
