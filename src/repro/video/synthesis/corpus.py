"""The synthetic medical-video corpus.

The paper evaluates on ~6 hours of MPEG-I medical video covering five
subjects: *face repair*, *nuclear medicine*, *laparoscopy*, *skin
examination* and *laser eye surgery*.  This module scripts five synthetic
videos with the same titles and the same editing grammar (presentations,
doctor-patient dialogs, clinical operations, filler, black separators,
and re-occurring scenes), scaled down so the whole corpus renders in
seconds rather than hours.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import VideoError
from repro.video.synthesis.generator import GeneratedVideo, generate_video
from repro.video.synthesis.script import (
    SceneSpec,
    Screenplay,
    atlas_lecture_scene,
    clinical_scene,
    dialog_scene,
    filler_scene,
    or_consultation_scene,
    planning_session_scene,
    presentation_scene,
    separator_scene,
    voiceover_interview_scene,
)

#: The five paper video subjects.
CORPUS_TITLES = (
    "face_repair",
    "nuclear_medicine",
    "laparoscopy",
    "skin_examination",
    "laser_eye_surgery",
)


def _interleave(scenes: list[SceneSpec], separators: bool = True) -> tuple[SceneSpec, ...]:
    """Insert black separators between consecutive scenes."""
    if not separators:
        return tuple(scenes)
    out: list[SceneSpec] = []
    for i, scene in enumerate(scenes):
        out.append(scene)
        if i < len(scenes) - 1:
            out.append(separator_scene())
    return tuple(out)


def build_face_repair() -> Screenplay:
    """Facial reconstructive surgery: lecture, consult, two operations."""
    scenes = [
        presentation_scene(
            "facial repair overview lecture", speaker="narrator", cycles=3,
            actor=0, slide_base=0, variant=0, repeat_key="fr_lecture",
        ),
        dialog_scene(
            "pre-operative consult", speaker_a="dr_adams", speaker_b="patient_chen",
            exchanges=3, actor_a=0, actor_b=2, variant=0,
        ),
        clinical_scene(
            "graft harvesting operation", narrator="narrator", steps=3,
            actor=2, variant=0, style="surgery",
        ),
        planning_session_scene(
            "flap planning over diagrams", narrator="dr_adams", cycles=2,
            actor=0, variant=1,
        ),
        filler_scene("ward corridor", shots_count=3, actor=3, variant=0),
        presentation_scene(
            "facial repair overview lecture (reprise)", speaker="narrator", cycles=2,
            actor=0, slide_base=3, variant=0, repeat_key="fr_lecture",
        ),
        clinical_scene(
            "flap placement operation", narrator=None, steps=4,
            actor=2, variant=1, style="surgery", include_organ=False,
        ),
        dialog_scene(
            "post-operative review", speaker_a="dr_baker", speaker_b="patient_chen",
            exchanges=2, actor_a=1, actor_b=2, variant=1,
        ),
    ]
    return Screenplay(title="face_repair", scenes=_interleave(scenes))


def build_nuclear_medicine() -> Screenplay:
    """Nuclear medicine: imaging reviews framed by lectures and consults."""
    scenes = [
        presentation_scene(
            "radiotracer physics lecture", speaker="dr_baker", cycles=3,
            actor=1, slide_base=10, variant=1, repeat_key="nm_lecture",
        ),
        clinical_scene(
            "PET scan review", narrator="dr_baker", steps=3,
            variant=0, style="imaging",
        ),
        dialog_scene(
            "scan findings consult", speaker_a="dr_baker", speaker_b="patient_chen",
            exchanges=3, actor_a=1, actor_b=4, variant=2,
        ),
        filler_scene("lab corridor", shots_count=2, actor=2, variant=1),
        clinical_scene(
            "thyroid uptake study", narrator=None, steps=2,
            variant=3, style="imaging",
        ),
        presentation_scene(
            "radiotracer physics lecture (reprise)", speaker="dr_baker", cycles=2,
            actor=1, slide_base=13, variant=1, repeat_key="nm_lecture",
        ),
    ]
    return Screenplay(title="nuclear_medicine", scenes=_interleave(scenes))


def build_laparoscopy() -> Screenplay:
    """Laparoscopy: operation-heavy teaching video."""
    scenes = [
        presentation_scene(
            "laparoscopic technique briefing", speaker="narrator", cycles=2,
            actor=4, slide_base=20, variant=2, use_clipart=True,
        ),
        clinical_scene(
            "port placement", narrator="narrator", steps=3,
            actor=0, variant=0, style="surgery", include_organ=False,
            repeat_key="lap_or",
        ),
        clinical_scene(
            "gallbladder dissection", narrator="narrator", steps=4,
            actor=0, variant=1, style="surgery",
        ),
        or_consultation_scene(
            "intra-operative consultation", speaker_a="dr_adams",
            speaker_b="dr_baker", exchanges=2, actor_a=0, actor_b=1, variant=1,
        ),
        dialog_scene(
            "surgeon debrief", speaker_a="dr_adams", speaker_b="nurse_diaz",
            exchanges=2, actor_a=0, actor_b=3, variant=3,
        ),
        clinical_scene(
            "port placement (second patient)", narrator="narrator", steps=3,
            actor=0, variant=0, style="surgery", include_organ=False,
            repeat_key="lap_or",
        ),
        filler_scene("scrub room", shots_count=2, actor=1, variant=2),
    ]
    return Screenplay(title="laparoscopy", scenes=_interleave(scenes))


def build_skin_examination() -> Screenplay:
    """Dermatology: lesion examinations and patient interviews."""
    scenes = [
        dialog_scene(
            "intake interview", speaker_a="dr_baker", speaker_b="patient_chen",
            exchanges=3, actor_a=1, actor_b=2, variant=4, repeat_key="se_consult",
        ),
        clinical_scene(
            "lesion examination (arm)", narrator="dr_baker", steps=3,
            actor=2, variant=0, style="dermatology",
        ),
        presentation_scene(
            "dermatoscopy findings review", speaker="dr_baker", cycles=2,
            actor=1, slide_base=30, variant=3,
        ),
        atlas_lecture_scene(
            "lesion atlas lecture", speaker="dr_baker", cycles=2,
            actor=1, variant=2,
        ),
        clinical_scene(
            "lesion examination (back)", narrator=None, steps=2,
            actor=4, variant=2, style="dermatology",
        ),
        voiceover_interview_scene(
            "bedside history taking", on_camera="patient_chen",
            off_camera="dr_baker", exchanges=2, actor=2, variant=3,
        ),
        dialog_scene(
            "follow-up interview", speaker_a="dr_baker", speaker_b="patient_chen",
            exchanges=2, actor_a=1, actor_b=2, variant=4, repeat_key="se_consult",
        ),
        filler_scene("clinic corridor", shots_count=3, actor=0, variant=3),
    ]
    return Screenplay(title="skin_examination", scenes=_interleave(scenes))


def build_laser_eye_surgery() -> Screenplay:
    """Laser eye surgery: briefing, operation, counselling."""
    scenes = [
        presentation_scene(
            "LASIK procedure briefing", speaker="dr_adams", cycles=3,
            actor=0, slide_base=40, variant=4, repeat_key="le_brief",
        ),
        dialog_scene(
            "candidacy consult", speaker_a="dr_adams", speaker_b="nurse_diaz",
            exchanges=2, actor_a=0, actor_b=3, variant=5,
        ),
        clinical_scene(
            "corneal flap operation", narrator="dr_adams", steps=4,
            actor=2, variant=2, style="surgery", include_organ=False,
        ),
        filler_scene("recovery corridor", shots_count=2, actor=4, variant=4),
        presentation_scene(
            "LASIK procedure briefing (recap)", speaker="dr_adams", cycles=2,
            actor=0, slide_base=43, variant=4, repeat_key="le_brief",
        ),
        clinical_scene(
            "post-operative slit-lamp check", narrator=None, steps=2,
            actor=2, variant=5, style="dermatology",
        ),
        atlas_lecture_scene(
            "complication case review", speaker="dr_adams", cycles=2,
            actor=0, variant=6,
        ),
    ]
    return Screenplay(title="laser_eye_surgery", scenes=_interleave(scenes))


_BUILDERS = {
    "face_repair": build_face_repair,
    "nuclear_medicine": build_nuclear_medicine,
    "laparoscopy": build_laparoscopy,
    "skin_examination": build_skin_examination,
    "laser_eye_surgery": build_laser_eye_surgery,
}


def build_screenplay(title: str) -> Screenplay:
    """Build one corpus screenplay by title."""
    try:
        return _BUILDERS[title]()
    except KeyError:
        raise VideoError(f"unknown corpus title {title!r}; known: {CORPUS_TITLES}") from None


@lru_cache(maxsize=8)
def load_video(title: str, seed: int = 0, with_audio: bool = True) -> GeneratedVideo:
    """Render (and cache) one corpus video."""
    return generate_video(build_screenplay(title), seed=seed, with_audio=with_audio)


def load_corpus(seed: int = 0, with_audio: bool = True) -> list[GeneratedVideo]:
    """Render the full five-video corpus."""
    return [load_video(title, seed=seed, with_audio=with_audio) for title in CORPUS_TITLES]


def demo_screenplay() -> Screenplay:
    """A compact three-scene screenplay for tests and the quickstart."""
    scenes = [
        presentation_scene("demo lecture", cycles=2, actor=0, slide_base=0),
        dialog_scene("demo consult", exchanges=2),
        clinical_scene("demo operation", narrator="narrator", steps=2),
    ]
    return Screenplay(title="demo", scenes=_interleave(scenes))
